"""The service's sqlite I/O boundary: faults, crash points, health.

Every byte the durable service writes flows through one of two sqlite
databases — the job journal (``jobs.sqlite``) and the bug repository
(``bugs.sqlite``).  PR 7 gave them WAL mode and per-statement commits
but left all failure handling implicit: a locked database surfaced raw
``sqlite3.OperationalError`` to HTTP handlers, ENOSPC killed worker
threads, and nothing noticed a corrupt file until a query happened to
touch a bad page.  This module is the explicit boundary:

* :class:`SqliteStorage` wraps one named database.  All writes go
  through :meth:`SqliteStorage.write`, a transaction context that

  1. draws an injected fault from the chaos injector (when armed),
  2. runs the caller's statements,
  3. passes the ``<db>.<op>.pre_commit`` **crash point**,
  4. commits (retrying ``database is locked`` with bounded jittered
     backoff),
  5. passes the ``<db>.<op>.post_commit`` crash point.

  Any failure — injected or real — rolls the transaction back before
  propagating, so a crash at ``pre_commit`` is exactly sqlite's
  torn-last-transaction semantics: everything since the previous commit
  vanishes atomically, the file stays healthy.

* Errors are **classified**, never leaked raw: persistent lock
  contention and ENOSPC become :class:`StorageUnavailable` (the
  subsystem degrades to read-only until a :meth:`probe` write clears
  it); a malformed database becomes :class:`CorruptionDetected` and
  latches ``needs_rebuild`` (only a quarantine-and-rebuild clears
  *that* — a probe must not un-degrade a corrupt file).

* :class:`StorageHealth` is the per-subsystem state the server's
  ``/health`` endpoint and degraded-mode gate read: ``ok`` vs
  ``degraded``, the reason, and how many writes were dropped while
  degraded (the data-loss bound the README's failure-mode matrix
  documents).

:func:`crash_points` enumerates every named crash point so the CI
harness can kill-and-restart the service at each one — the storage
equivalent of the paper's boundary-value sweep.
"""

from __future__ import annotations

import errno
import os
import random
import sqlite3
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from ..robustness.chaos import StorageFaultInjector

#: steady-state write operations with named crash points, per database
WRITE_OPS = {
    "journal": ("insert", "update"),
    "bugrepo": ("ingest", "replay", "triage"),
}

#: bounded jittered backoff for "database is locked"
DEFAULT_LOCKED_ATTEMPTS = 6
DEFAULT_LOCKED_BACKOFF = 0.01  # seconds, doubled per attempt

#: jitter source for lock backoff (scheduling noise only — never part of
#: any campaign's deterministic state)
_jitter = random.Random()

_CORRUPT_MARKERS = (
    "malformed", "not a database", "database disk image",
)
_FULL_MARKERS = ("disk is full", "disk i/o error", "no space left")


def crash_points() -> Tuple[str, ...]:
    """Every named crash point, ``<db>.<op>.<pre_commit|post_commit>``."""
    return tuple(
        f"{db}.{op}.{edge}"
        for db in sorted(WRITE_OPS)
        for op in WRITE_OPS[db]
        for edge in ("pre_commit", "post_commit")
    )


class StorageError(Exception):
    """Base class for classified storage-boundary failures."""

    def __init__(self, subsystem: str, message: str) -> None:
        super().__init__(message)
        self.subsystem = subsystem


class StorageUnavailable(StorageError):
    """The database cannot be written right now (contention, ENOSPC)."""


class CorruptionDetected(StorageError):
    """The database file is damaged; it needs quarantine and rebuild."""


def _is_locked(exc: BaseException) -> bool:
    return isinstance(exc, sqlite3.OperationalError) and "locked" in str(exc).lower()


def _is_corrupt(exc: BaseException) -> bool:
    if not isinstance(exc, sqlite3.DatabaseError):
        return False
    message = str(exc).lower()
    return any(marker in message for marker in _CORRUPT_MARKERS)


def _is_full(exc: BaseException) -> bool:
    if isinstance(exc, OSError) and exc.errno is not None:
        return exc.errno == errno.ENOSPC
    if isinstance(exc, sqlite3.Error):
        message = str(exc).lower()
        return any(marker in message for marker in _FULL_MARKERS)
    return False


class StorageHealth:
    """One subsystem's writability state, shared across threads."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.state = "ok"
        self.reason = ""
        self.needs_rebuild = False
        self.degraded_since = 0.0
        self.lost_writes = 0
        self.recoveries = 0

    @property
    def ok(self) -> bool:
        with self._lock:
            return self.state == "ok"

    def degrade(self, reason: str, needs_rebuild: bool = False) -> None:
        with self._lock:
            if self.state != "degraded":
                self.state = "degraded"
                self.degraded_since = time.time()
            self.reason = reason
            # corruption latches: a later transient fault must not let a
            # probe un-degrade a file that still needs rebuilding
            self.needs_rebuild = self.needs_rebuild or needs_rebuild

    def recover(self) -> None:
        with self._lock:
            self.state = "ok"
            self.reason = ""
            self.needs_rebuild = False
            self.degraded_since = 0.0
            self.recoveries += 1

    def note_lost_write(self) -> None:
        with self._lock:
            self.lost_writes += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self.state,
                "reason": self.reason,
                "needs_rebuild": self.needs_rebuild,
                "degraded_since": self.degraded_since or None,
                "lost_writes": self.lost_writes,
                "recoveries": self.recoveries,
            }


def open_database(
    path: str,
    timeout: float = 30.0,
    check_same_thread: bool = True,
    locked_attempts: int = DEFAULT_LOCKED_ATTEMPTS,
    locked_backoff: float = DEFAULT_LOCKED_BACKOFF,
) -> sqlite3.Connection:
    """Open a service sqlite database with the shared pragma set.

    File-backed databases get WAL journaling (concurrent readers, crash
    safety) and ``NORMAL`` synchronous mode (fsync at WAL checkpoints —
    a power loss can drop the last transactions but never corrupt).
    ``:memory:`` databases skip the pragmas (WAL is meaningless there).

    ``database is locked`` during open (another process holds the WAL
    write lock through our ``busy_timeout``) is retried with bounded
    jittered exponential backoff before surfacing — the contention fix
    this PR's regression test pins down.
    """
    if path != ":memory:":
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
    last_error: Optional[BaseException] = None
    for attempt in range(max(1, locked_attempts)):
        db = None
        try:
            db = sqlite3.connect(
                path, timeout=timeout, check_same_thread=check_same_thread
            )
            db.row_factory = sqlite3.Row
            if path != ":memory:":
                db.execute("PRAGMA journal_mode=WAL")
                db.execute("PRAGMA synchronous=NORMAL")
            return db
        except sqlite3.OperationalError as exc:
            if db is not None:
                try:
                    db.close()
                except sqlite3.Error:
                    pass
            if not _is_locked(exc):
                raise
            last_error = exc
            time.sleep(_backoff_delay(locked_backoff, attempt))
    assert last_error is not None
    raise last_error


def _backoff_delay(base: float, attempt: int) -> float:
    """Exponential backoff with ±50% jitter (decorrelates contenders)."""
    return base * (2 ** attempt) * (0.5 + _jitter.random())


class SqliteStorage:
    """One named sqlite database behind the fault/health boundary.

    *name* keys the chaos injector's fault sites and crash points
    (``journal`` / ``bugrepo``); *chaos* is an optional shared
    :class:`~repro.robustness.chaos.StorageFaultInjector`.  With
    ``chaos=None`` every hook is a no-op — the boundary's steady-state
    cost is one method call and one ``try`` per transaction, which
    ``benchmarks/bench_chaos_overhead.py`` holds under 3%.
    """

    def __init__(
        self,
        name: str,
        path: str,
        chaos: Optional[StorageFaultInjector] = None,
        locked_attempts: int = DEFAULT_LOCKED_ATTEMPTS,
        locked_backoff: float = DEFAULT_LOCKED_BACKOFF,
    ) -> None:
        self.name = name
        self.path = path
        self.chaos = chaos
        self.locked_attempts = max(1, locked_attempts)
        self.locked_backoff = locked_backoff
        self.health = StorageHealth(name)

    # -- connections ----------------------------------------------------
    def open(
        self, timeout: float = 30.0, check_same_thread: bool = True
    ) -> sqlite3.Connection:
        try:
            return open_database(
                self.path,
                timeout=timeout,
                check_same_thread=check_same_thread,
                locked_attempts=self.locked_attempts,
                locked_backoff=self.locked_backoff,
            )
        except sqlite3.Error as exc:
            raise self._classify(exc, "open") from exc

    # -- the write boundary ---------------------------------------------
    @contextmanager
    def write(
        self, op: str, db: Optional[sqlite3.Connection] = None
    ) -> Iterator[sqlite3.Connection]:
        """One write transaction with fault sites and crash points.

        Yields a connection (the caller's *db*, or a fresh per-operation
        one that is closed afterwards).  On **any** exception — injected
        fault, real sqlite error, or an armed :class:`SimulatedCrash` —
        the open transaction is rolled back before the exception
        propagates, which makes an in-process simulated crash
        byte-equivalent to a real kill: the torn transaction vanishes,
        the file stays consistent.
        """
        owns = db is None
        if owns:
            db = self.open()
        assert db is not None
        try:
            self._fault_site(op)
            try:
                yield db
            except sqlite3.Error as exc:
                raise self._classify(exc, op) from exc
            self._crash_point(f"{op}.pre_commit")
            self._commit(db, op)
            self._crash_point(f"{op}.post_commit")
        except BaseException:
            _rollback_quietly(db)
            raise
        finally:
            if owns:
                _close_quietly(db)

    @contextmanager
    def read(
        self, op: str, db: Optional[sqlite3.Connection] = None
    ) -> Iterator[sqlite3.Connection]:
        """One read operation (no transaction, no crash points)."""
        owns = db is None
        if owns:
            db = self.open()
        assert db is not None
        try:
            self._fault_site(op, write=False)
            try:
                yield db
            except sqlite3.Error as exc:
                raise self._classify(exc, op) from exc
        finally:
            if owns:
                _close_quietly(db)

    # -- fault plumbing -------------------------------------------------
    def _fault_site(self, op: str, write: bool = True) -> None:
        """Draw injected faults for ``<name>.<op>``, absorbing ``locked``
        with the same bounded retry real contention gets."""
        if self.chaos is None:
            return
        site = f"{self.name}.{op}"
        for attempt in range(self.locked_attempts):
            try:
                self.chaos.on_op(site, write=write)
                return
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc) or attempt == self.locked_attempts - 1:
                    raise self._classify(exc, op) from exc
                time.sleep(_backoff_delay(self.locked_backoff, attempt))
            except (OSError, sqlite3.Error) as exc:
                raise self._classify(exc, op) from exc

    def _crash_point(self, point: str) -> None:
        if self.chaos is not None:
            self.chaos.on_crash_point(f"{self.name}.{point}")

    def _commit(self, db: sqlite3.Connection, op: str) -> None:
        for attempt in range(self.locked_attempts):
            try:
                db.commit()
                return
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc) or attempt == self.locked_attempts - 1:
                    raise self._classify(exc, op) from exc
                time.sleep(_backoff_delay(self.locked_backoff, attempt))
            except sqlite3.Error as exc:
                raise self._classify(exc, op) from exc

    def _classify(self, exc: BaseException, op: str) -> StorageError:
        """Map a raw failure onto the boundary's error taxonomy,
        degrading the subsystem's health on the way."""
        if _is_corrupt(exc):
            self.health.degrade(
                f"{self.name} database is corrupt: {exc}", needs_rebuild=True
            )
            return CorruptionDetected(self.name, f"{self.name}.{op}: {exc}")
        if _is_full(exc):
            self.health.degrade(f"{self.name} write failed: {exc}")
            return StorageUnavailable(self.name, f"{self.name}.{op}: {exc}")
        if _is_locked(exc):
            self.health.degrade(
                f"{self.name} lock contention persisted past "
                f"{self.locked_attempts} attempts"
            )
            return StorageUnavailable(self.name, f"{self.name}.{op}: {exc}")
        if isinstance(exc, StorageError):
            return exc
        # anything else is a programming error — let it surface raw
        raise exc

    # -- health probes / corruption handling ----------------------------
    def probe(self, db: Optional[sqlite3.Connection] = None) -> bool:
        """A cheap real write proving the subsystem is writable again.

        Returns ``True`` (and clears degraded health) on success.  A
        subsystem latched ``needs_rebuild`` never probes healthy — only
        :meth:`quarantine` plus a rebuild may clear corruption.
        """
        if self.health.snapshot()["needs_rebuild"]:
            return False
        try:
            with self.write("probe", db=db) as conn:
                (version,) = conn.execute("PRAGMA user_version").fetchone()
                conn.execute(f"PRAGMA user_version = {int(version)}")
        except StorageError:
            return False
        self.health.recover()
        return True

    def integrity_failure(
        self, db: Optional[sqlite3.Connection] = None
    ) -> Optional[str]:
        """``PRAGMA integrity_check``; ``None`` when healthy, else detail."""
        if self.chaos is not None and self.chaos.is_corrupted(self.name):
            return "injected corruption latch"
        if self.path == ":memory:" and db is None:
            return None
        owns = db is None
        try:
            if owns:
                db = sqlite3.connect(self.path)
            assert db is not None
            row = db.execute("PRAGMA integrity_check").fetchone()
            verdict = str(row[0])
            return None if verdict == "ok" else verdict
        except sqlite3.Error as exc:
            return str(exc)
        finally:
            if owns and db is not None:
                _close_quietly(db)

    def quarantine(self) -> str:
        """Move the damaged database aside as ``<path>.corrupt-<n>``.

        The WAL/SHM sidecars move with it (replaying a stale WAL against
        a fresh database would be its own corruption).  Clears any
        injected corruption latch — the bad file is gone — and returns
        the quarantine path.  The caller rebuilds a fresh database and
        then marks health recovered.
        """
        n = 1
        while os.path.exists(f"{self.path}.corrupt-{n}"):
            n += 1
        dest = f"{self.path}.corrupt-{n}"
        if os.path.exists(self.path):
            os.replace(self.path, dest)
        for suffix in ("-wal", "-shm"):
            if os.path.exists(self.path + suffix):
                os.replace(self.path + suffix, dest + suffix)
        if self.chaos is not None:
            self.chaos.clear_corruption(self.name)
        return dest


def _rollback_quietly(db: sqlite3.Connection) -> None:
    try:
        db.rollback()
    except sqlite3.Error:
        pass


def _close_quietly(db: sqlite3.Connection) -> None:
    try:
        db.close()
    except sqlite3.Error:
        pass


__all__ = [
    "CorruptionDetected",
    "DEFAULT_LOCKED_ATTEMPTS",
    "DEFAULT_LOCKED_BACKOFF",
    "SqliteStorage",
    "StorageError",
    "StorageHealth",
    "StorageUnavailable",
    "WRITE_OPS",
    "crash_points",
    "open_database",
]
