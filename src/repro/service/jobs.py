"""The asynchronous job model: durable jobs, leases, quotas, admission.

A :class:`Job` is one unit of scheduled work — either a fuzzing
**campaign** (runs a :class:`~repro.core.config.CampaignConfig` through
the scheduler, streaming findings as they surface) or a regression
**replay** (re-executes stored bug-repository triggers and reports
status flips).  Jobs move through ``queued → running → done/failed``
(``cancelled`` while queued or cooperatively while running;
``rejected`` when a per-submitter quota refuses admission).

The :class:`JobStore` is the thread-safe registry plus priority work
queue shared between HTTP handler threads (producers) and N scheduler
workers (consumers).  Three properties distinguish it from the PR 6
in-memory version:

* **Durability.**  Every state transition writes through to a
  :class:`~repro.service.journal.JobJournal`; on startup the store
  rebuilds its registry from the journal and
  :meth:`JobStore.recover` re-enqueues jobs a dead process left in
  ``running`` (resuming campaigns from their checkpoint sidecars).
* **Leases.**  Workers *claim* jobs (:meth:`JobStore.claim` — a
  compare-and-swap on the ``queued`` state, so a job can never run
  twice concurrently) and must heartbeat to keep the lease; an expired
  lease makes the job reclaimable by any worker.
* **Admission control.**  The queue has a depth watermark
  (:class:`QueueFull` → HTTP 429 upstream) and optional per-submitter
  quotas (over-quota jobs land in the terminal ``rejected`` state
  rather than crashing a worker).

Findings stream through a cursor API — :meth:`Job.findings_since`
returns everything past a client-held offset.  The in-job buffer is
bounded (:data:`DEFAULT_MAX_FINDINGS`): a divergence-storm campaign
drops its overflow (counted as ``findings_truncated``) instead of
OOMing the service, and cursors stay monotone across truncation.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import CampaignConfig
from ..robustness.checkpoint import CampaignCheckpoint
from ..robustness.governor import ResourceBudgets
from .journal import JobJournal

#: the job lifecycle
JOB_STATES = (
    "queued", "running", "done", "failed", "cancelled", "rejected",
)

#: states a job never leaves
TERMINAL_STATES = ("done", "failed", "cancelled", "rejected")

#: cap on the in-job streaming buffer (entries, not bytes); overflow is
#: counted, not stored
DEFAULT_MAX_FINDINGS = 2000

#: attempts after the first before a failing job turns terminal
DEFAULT_MAX_RETRIES = 2

#: how long a claim lives without a heartbeat
DEFAULT_LEASE_SECONDS = 30.0

#: retry backoff: ``base * 2**(retries-1)`` capped at ``cap`` seconds
DEFAULT_BACKOFF_BASE = 1.0
DEFAULT_BACKOFF_CAP = 60.0


class QueueFull(Exception):
    """Admission refused: the queue is at its depth watermark."""

    def __init__(self, depth: int, watermark: int, retry_after: int = 5) -> None:
        super().__init__(
            f"job queue is full ({depth} queued, watermark {watermark})"
        )
        self.depth = depth
        self.watermark = watermark
        self.retry_after = retry_after


class TenantBudgetExceeded(Exception):
    """A job would overrun its submitter's resource budget.

    Terminal: the scheduler marks the job ``failed`` with a
    ``resource_exhausted`` error and burns no retries — rerunning the
    same job against the same exhausted budget can only fail again.
    """


@dataclass(frozen=True)
class TenantBudget:
    """Per-submitter resource limits (ROADMAP item 3, riding PR 5).

    Two enforcement layers:

    * ``statements`` — a cumulative statement allowance per submitter
      for the service's lifetime: a campaign whose ``config.budget``
      exceeds what the submitter has left is refused up front
      (:class:`TenantBudgetExceeded` → terminal ``resource_exhausted``).
    * ``budgets`` — a per-statement
      :class:`~repro.robustness.governor.ResourceBudgets` ceiling
      applied to **every** tenant campaign (overriding any submitted
      spec: tenants must not be able to loosen their own cage).
    """

    statements: Optional[int] = None
    budgets: Optional[ResourceBudgets] = None

    def __post_init__(self) -> None:
        if self.statements is not None and (
            isinstance(self.statements, bool)
            or not isinstance(self.statements, int)
            or self.statements <= 0
        ):
            raise ValueError(
                f"tenant budget 'statements' must be a positive integer, "
                f"got {self.statements!r}"
            )

    @property
    def enabled(self) -> bool:
        return self.statements is not None or (
            self.budgets is not None and self.budgets.enabled
        )

    @classmethod
    def parse(cls, spec: str) -> "TenantBudget":
        """Parse a CLI tenant-budget spec.

        ``statements=N`` is the cumulative per-submitter allowance; any
        other keys are a :meth:`ResourceBudgets.parse` per-statement
        spec, e.g. ``"statements=10000,rows=5000,wall_ms=100"``.
        """
        spec = spec.strip().lower()
        if spec in ("", "off", "none", "0", "false"):
            return cls()
        statements: Optional[int] = None
        rest: List[str] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, raw = part.partition("=")
            if name.strip() == "statements":
                if statements is not None:
                    raise ValueError("duplicate tenant budget 'statements'")
                try:
                    value = float(raw)
                except ValueError:
                    raise ValueError(
                        f"bad tenant budget value {raw!r} for statements"
                    ) from None
                if value != int(value) or int(value) <= 0:
                    raise ValueError(
                        f"tenant budget 'statements' must be a positive "
                        f"integer, got {raw.strip()}"
                    )
                statements = int(value)
            else:
                rest.append(part)
        budgets = ResourceBudgets.parse(",".join(rest)) if rest else None
        if budgets is not None and not budgets.enabled:
            budgets = None
        return cls(statements=statements, budgets=budgets)


def finding_to_dict(finding: Any) -> Dict[str, Any]:
    """Serialize any oracle finding for the wire (stable JSON shape)."""
    return {
        "kind": getattr(finding, "kind", "crash"),
        "label": finding.bug_type_label,
        "dialect": getattr(finding, "dbms", ""),
        "function": getattr(finding, "function", ""),
        "pattern": getattr(finding, "pattern", ""),
        "sql": getattr(finding, "sql", ""),
        "peer": getattr(finding, "peer", "") or "",
        "message": getattr(finding, "message", "") or "",
        "query_index": getattr(finding, "query_index", -1),
    }


def signature_digest(result: Any) -> str:
    """A stable hex digest of ``CampaignResult.signature()``.

    The tuple itself is not JSON-able; its ``repr`` is deterministic
    (primitives and tuples only), so the digest lets two runs —
    e.g. a SIGKILLed-and-recovered campaign and its uninterrupted
    control — be compared for byte-identical outcomes over the wire.
    """
    return hashlib.sha256(repr(result.signature()).encode("utf-8")).hexdigest()


def result_to_summary(result: Any) -> Dict[str, Any]:
    """Serialize a :class:`CampaignResult` into the job's summary dict."""
    summary = {
        "dialect": result.dialect,
        "queries_executed": result.queries_executed,
        "bug_count": result.bug_count,
        "finding_count": len(result.findings),
        "triggered_functions": sorted(result.triggered_functions),
        "branch_coverage": result.branch_coverage,
        "outcomes": dict(result.outcomes),
        "quarantined": result.quarantined,
        "elapsed_seconds": result.elapsed_seconds,
        "wall_seconds": result.wall_seconds,
        "signature_digest": signature_digest(result),
    }
    if result.fault_counters:
        summary["fault_counters"] = dict(result.fault_counters)
    if result.sandbox_active:
        # PR 5's supervisor health, surfaced to service pollers
        summary["sandbox"] = {
            "kills": result.sandbox_kills,
            "worker_deaths": result.sandbox_worker_deaths,
            "respawns": result.sandbox_respawns,
            "open_breakers": list(result.open_breakers),
            "quarantined_statements": result.quarantined_statements,
            "skipped_statements": result.skipped_statements,
        }
    return summary


class Job:
    """One scheduled unit of work, with leased CAS state transitions.

    Every transition method is a compare-and-swap: it checks the current
    state (and, where relevant, the caller's lease) under the job lock
    and returns ``False`` without side effects when the precondition no
    longer holds — a job cancelled between being claimed and being
    marked running stays cancelled instead of being silently revived.
    Successful transitions write through to the journal.
    """

    def __init__(
        self,
        job_id: str,
        kind: str,
        config: Optional[CampaignConfig] = None,
        params: Optional[Dict[str, Any]] = None,
        submitter: str = "",
        priority: int = 0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        max_findings: int = DEFAULT_MAX_FINDINGS,
        seq: int = 0,
    ) -> None:
        if kind not in ("campaign", "replay"):
            raise ValueError(f"unknown job kind {kind!r}")
        self.job_id = job_id
        self.kind = kind
        self.config = config
        self.params = dict(params or {})
        self.submitter = submitter
        self.priority = int(priority)
        self.seq = seq
        self.state = "queued"
        self.error = ""
        self.retries = 0
        self.max_retries = max(0, int(max_retries))
        self.next_attempt_at = 0.0
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.summary: Dict[str, Any] = {}
        self.progress: Dict[str, Any] = {}
        self.ingest: Dict[str, Any] = {}
        # lease bookkeeping (meaningful while running)
        self.lease_owner = ""
        self.lease_seq = 0
        self.lease_expires = 0.0
        # cooperative stop flags, checked from the campaign progress hook
        self.cancel_event = threading.Event()
        self.drain_event = threading.Event()
        self.max_findings = max(1, int(max_findings))
        self._findings: List[Dict[str, Any]] = []
        self._findings_total = 0
        self._lock = threading.Lock()
        self._journal: Optional[JobJournal] = None
        #: the store's checkpoint directory; sidecars under it are GC'd
        #: when this job turns terminal (store-owned paths only)
        self._sidecar_dir: Optional[str] = None

    # -- durability -----------------------------------------------------
    @property
    def checkpoint_path(self) -> str:
        if self.config is not None and self.config.checkpoint_path:
            return self.config.checkpoint_path
        return ""

    def to_row(self) -> Dict[str, Any]:
        """The journal's current-state row (caller holds ``_lock``)."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "kind": self.kind,
            "config": self.config.to_dict() if self.config is not None else None,
            "params": dict(self.params),
            "submitter": self.submitter,
            "priority": self.priority,
            "state": self.state,
            "error": self.error,
            "retries": self.retries,
            "max_retries": self.max_retries,
            "next_attempt_at": self.next_attempt_at,
            "checkpoint_path": self.checkpoint_path,
            "lease_owner": self.lease_owner,
            "lease_seq": self.lease_seq,
            "lease_expires": self.lease_expires,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "summary": dict(self.summary),
            "ingest": dict(self.ingest),
            "findings_total": self._findings_total,
        }

    @classmethod
    def from_row(cls, row: Dict[str, Any]) -> "Job":
        """Rebuild a journaled job (inverse of :meth:`to_row`)."""
        config = row.get("config")
        if isinstance(config, str):
            config = json.loads(config)
        job = cls(
            row["job_id"],
            row["kind"],
            config=CampaignConfig.from_dict(config) if config else None,
            params=_loads(row.get("params")),
            submitter=row.get("submitter", ""),
            priority=row.get("priority", 0),
            max_retries=row.get("max_retries", DEFAULT_MAX_RETRIES),
            seq=row.get("seq", 0),
        )
        job.state = row["state"]
        job.error = row.get("error", "")
        job.retries = row.get("retries", 0)
        job.next_attempt_at = row.get("next_attempt_at", 0.0)
        job.created_at = row.get("created_at", 0.0)
        job.started_at = row.get("started_at")
        job.finished_at = row.get("finished_at")
        job.summary = _loads(row.get("summary"))
        job.ingest = _loads(row.get("ingest"))
        job.lease_owner = row.get("lease_owner", "")
        job.lease_seq = row.get("lease_seq", 0)
        job.lease_expires = row.get("lease_expires", 0.0)
        job._findings_total = row.get("findings_total", 0)
        return job

    def _persist(self, transition: Optional[str] = None) -> None:
        """Write the current row through (caller holds ``_lock``)."""
        if self._journal is not None:
            self._journal.update(self.to_row(), transition, at=time.time())

    def row_snapshot(self) -> Dict[str, Any]:
        """A journal row of the current state (takes the job lock)."""
        with self._lock:
            return self.to_row()

    def _gc_sidecars(self) -> None:
        """Delete checkpoint sidecars once the job is terminal.

        Only store-owned paths (directly under the store's checkpoint
        directory) are touched — a user-specified ``checkpoint_path``
        outside it is the user's file to keep.  Removes the sidecar, its
        ``.shardN`` companions (sharded campaigns), and any leftover
        atomic-write temp file.  Caller holds ``_lock``.
        """
        path = self.checkpoint_path
        if not path or not self._sidecar_dir:
            return
        owned = os.path.abspath(self._sidecar_dir)
        if os.path.dirname(os.path.abspath(path)) != owned:
            return
        victims = [path, path + ".tmp"]
        victims.extend(glob.glob(glob.escape(path) + ".shard*"))
        for victim in victims:
            try:
                os.remove(victim)
            except OSError:
                pass

    # -- state transitions (all CAS) ------------------------------------
    def mark_running(
        self,
        owner: str = "",
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> bool:
        """``queued → running`` under a fresh lease.

        Returns ``False`` from any other state — in particular a job
        cancelled after being popped from the queue stays cancelled
        (the PR 6 race this CAS closes).
        """
        with self._lock:
            if self.state != "queued":
                return False
            self.state = "running"
            self.started_at = time.time()
            self.lease_owner = owner
            self.lease_seq += 1
            self.lease_expires = time.time() + lease_seconds
            self._persist(f"claimed by {owner or 'worker'}")
            return True

    def heartbeat(
        self, lease_seq: int, lease_seconds: float = DEFAULT_LEASE_SECONDS
    ) -> bool:
        """Extend the lease; ``False`` if it was lost (stale worker)."""
        with self._lock:
            if self.state != "running" or self.lease_seq != lease_seq:
                return False
            self.lease_expires = time.time() + lease_seconds
            return True

    def lease_valid(self, lease_seq: int) -> bool:
        with self._lock:
            return self.state == "running" and self.lease_seq == lease_seq

    def mark_done(
        self, summary: Optional[Dict[str, Any]] = None, lease_seq: Optional[int] = None
    ) -> bool:
        """``running → done`` (lease holder only when *lease_seq* given)."""
        with self._lock:
            if self.state != "running":
                return False
            if lease_seq is not None and self.lease_seq != lease_seq:
                return False
            self.state = "done"
            self.finished_at = time.time()
            if summary is not None:
                self.summary = summary
            if self._findings_total > len(self._findings):
                self.summary = dict(
                    self.summary,
                    findings_truncated=self._findings_total - len(self._findings),
                )
            self._clear_lease()
            self._gc_sidecars()
            self._persist("completed")
            return True

    def mark_failed(
        self, error: str, lease_seq: Optional[int] = None
    ) -> bool:
        """``running → failed`` terminally, preserving the traceback."""
        with self._lock:
            if self.state != "running":
                return False
            if lease_seq is not None and self.lease_seq != lease_seq:
                return False
            self.state = "failed"
            self.finished_at = time.time()
            self.error = error
            self._clear_lease()
            self._gc_sidecars()
            self._persist("failed")
            return True

    def mark_retrying(
        self,
        error: str,
        lease_seq: Optional[int] = None,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        resume: Optional[str] = None,
        expired_only: bool = False,
    ) -> str:
        """Record a failed attempt: requeue with capped exponential
        backoff, or turn terminal once retries are exhausted.

        *expired_only* makes the transition conditional on the lease
        having lapsed — the reclaimer's guard against racing a worker
        whose heartbeat arrived after the expiry scan read the lease.

        Returns the resulting state (``"queued"``/``"failed"``), or
        ``""`` when the CAS lost (not running / stale lease / renewed).
        """
        with self._lock:
            if self.state != "running":
                return ""
            if lease_seq is not None and self.lease_seq != lease_seq:
                return ""
            if expired_only and self.lease_expires >= time.time():
                return ""
            if self.retries >= self.max_retries:
                self.state = "failed"
                self.finished_at = time.time()
                self.error = error
                self._clear_lease()
                self._gc_sidecars()
                self._persist("retries exhausted")
                return self.state
            self.retries += 1
            delay = min(backoff_cap, backoff_base * (2 ** (self.retries - 1)))
            self.next_attempt_at = time.time() + delay
            self.error = error
            self.state = "queued"
            if resume:
                self.params["resume"] = resume
            self._clear_lease()
            self._persist(
                f"retry {self.retries}/{self.max_retries} in {delay:.1f}s"
            )
            return self.state

    def requeue(
        self, lease_seq: Optional[int] = None, resume: Optional[str] = None,
        detail: str = "requeued",
    ) -> bool:
        """``running → queued`` without burning a retry (graceful drain)."""
        with self._lock:
            if self.state != "running":
                return False
            if lease_seq is not None and self.lease_seq != lease_seq:
                return False
            self.state = "queued"
            if resume:
                self.params["resume"] = resume
            self._clear_lease()
            self._persist(detail)
            return True

    def mark_cancelled(self) -> str:
        """Request cancellation.

        A queued job turns ``cancelled`` immediately; a running job gets
        its stop flag set (the campaign aborts at the next progress
        beat) and ``"pending"`` is returned.  Terminal jobs return
        ``""``.
        """
        with self._lock:
            if self.state == "queued":
                self.state = "cancelled"
                self.finished_at = time.time()
                self._gc_sidecars()
                self._persist("cancelled while queued")
                return "cancelled"
            if self.state == "running":
                self.cancel_event.set()
                return "pending"
            return ""

    def finish_cancelled(self, lease_seq: Optional[int] = None) -> bool:
        """``running → cancelled`` after a cooperative stop."""
        with self._lock:
            if self.state != "running":
                return False
            if lease_seq is not None and self.lease_seq != lease_seq:
                return False
            self.state = "cancelled"
            self.finished_at = time.time()
            self._clear_lease()
            self._gc_sidecars()
            self._persist("cancelled while running")
            return True

    def mark_rejected(self, reason: str) -> None:
        """Admission refused (quota): terminal from birth."""
        with self._lock:
            self.state = "rejected"
            self.error = reason
            self.finished_at = time.time()

    def _clear_lease(self) -> None:
        self.lease_owner = ""
        self.lease_expires = 0.0

    # -- streaming ------------------------------------------------------
    def add_finding(self, finding: Any, position: int = -1) -> None:
        """Buffer one finding for pollers (bounded; overflow is counted).

        The buffer keeps the stream *prefix*: cursors held by clients
        stay valid, and the drop count surfaces as ``findings_truncated``
        in the progress/summary dicts.
        """
        entry = finding_to_dict(finding)
        entry["position"] = position
        with self._lock:
            self._findings_total += 1
            if len(self._findings) < self.max_findings:
                self._findings.append(entry)

    def set_progress(self, progress: Dict[str, Any]) -> None:
        with self._lock:
            self.progress = dict(progress)
            dropped = self._findings_total - len(self._findings)
            if dropped:
                self.progress["findings_truncated"] = dropped

    def set_ingest(self, ingest: Dict[str, Any]) -> None:
        with self._lock:
            self.ingest = dict(ingest)
            self._persist()

    def findings_since(self, cursor: int = 0) -> Tuple[int, List[Dict[str, Any]]]:
        """Return ``(next_cursor, stored findings past cursor)``.

        The cursor indexes the *total* finding stream.  Once the buffer
        cap truncates the tail, positions past the cap yield no entries
        but the cursor still advances to the total — pollers observe the
        gap through ``findings_truncated`` rather than a stuck cursor.
        """
        with self._lock:
            cursor = max(0, int(cursor))
            return self._findings_total, list(self._findings[cursor:])

    @property
    def finding_count(self) -> int:
        with self._lock:
            return self._findings_total

    @property
    def findings_truncated(self) -> int:
        with self._lock:
            return self._findings_total - len(self._findings)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            data: Dict[str, Any] = {
                "id": self.job_id,
                "kind": self.kind,
                "state": self.state,
                "submitter": self.submitter,
                "priority": self.priority,
                "retries": self.retries,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "finding_count": self._findings_total,
                "progress": dict(self.progress),
            }
            if self.config is not None:
                data["config"] = self.config.to_dict()
            if self.params:
                data["params"] = dict(self.params)
            if self.error:
                data["error"] = self.error
            if self.summary:
                data["summary"] = dict(self.summary)
            if self.ingest:
                data["ingest"] = dict(self.ingest)
            dropped = self._findings_total - len(self._findings)
            if dropped:
                data["findings_truncated"] = dropped
            return data


def _loads(value: Any) -> Dict[str, Any]:
    if isinstance(value, str):
        return json.loads(value) if value else {}
    return dict(value or {})


class JobStore:
    """Thread-safe job registry + leased priority queue, journal-backed.

    With ``journal=None`` the store runs purely in memory (unit tests,
    embedded use); the service always passes a
    :class:`~repro.service.journal.JobJournal` so every job survives the
    process.
    """

    def __init__(
        self,
        journal: Optional[JobJournal] = None,
        checkpoint_dir: Optional[str] = None,
        max_depth: Optional[int] = None,
        submitter_quota: Optional[int] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        max_findings: int = DEFAULT_MAX_FINDINGS,
        preemption: bool = True,
        tenant_budget: Optional[TenantBudget] = None,
    ) -> None:
        self.journal = journal
        self.checkpoint_dir = checkpoint_dir
        self.max_depth = max_depth
        self.submitter_quota = submitter_quota
        self.max_retries = max_retries
        self.lease_seconds = lease_seconds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_findings = max_findings
        self.preemption = preemption
        self.tenant_budget = tenant_budget
        #: how many workers consume this store (set by the pool); 0 means
        #: unknown, which disables the idle-capacity preemption guard
        self.worker_count = 0
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._wake: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._counter = 0
        self._shed = 0
        self._preemptions = 0
        #: cumulative statements executed per submitter (tenant budgets)
        self._tenant_statements: Dict[str, int] = {}
        if journal is not None:
            self._load_journal(journal)

    # -- startup: rebuild + recover -------------------------------------
    def _load_journal(self, journal: JobJournal) -> None:
        for row in journal.load_rows():
            job = Job.from_row(row)
            job.max_findings = self.max_findings
            job._journal = journal
            job._sidecar_dir = self.checkpoint_dir
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        self._counter = journal.max_seq()

    def recover(self) -> Dict[str, List[str]]:
        """Re-enqueue work a dead process left behind.

        Jobs journaled as ``running`` are orphans (no worker of *this*
        process holds their lease): they go back to ``queued`` with
        ``resume=<checkpoint>`` when a loadable checkpoint sidecar
        exists, burning one retry; jobs whose retries are exhausted turn
        terminal ``failed``.  Already-``queued`` jobs just re-enter the
        wake queue.  Returns ``{"requeued": [...], "failed": [...]}``.
        """
        report: Dict[str, List[str]] = {"requeued": [], "failed": []}
        for job in self.list():
            if job.state == "running":
                # the owning process is gone: its lease is void by fiat
                state = self._reclaim(job, detail="orphaned by restart")
                if state == "queued":
                    report["requeued"].append(job.job_id)
                elif state == "failed":
                    report["failed"].append(job.job_id)
            elif job.state == "queued":
                report["requeued"].append(job.job_id)
        for job_id in report["requeued"]:
            self._wake.put(job_id)
        return report

    # -- submission (HTTP side) -----------------------------------------
    def submit(
        self,
        kind: str,
        config: Optional[CampaignConfig] = None,
        params: Optional[Dict[str, Any]] = None,
        submitter: str = "",
        priority: int = 0,
    ) -> Job:
        """Admit one job (or refuse: :class:`QueueFull` / ``rejected``)."""
        with self._lock:
            if self.max_depth is not None:
                depth = sum(
                    1 for j in self._jobs.values() if j.state == "queued"
                )
                if depth >= self.max_depth:
                    self._shed += 1
                    raise QueueFull(depth, self.max_depth)
            self._counter += 1
            job_id = f"job-{self._counter:04d}"
            if (
                kind == "campaign"
                and config is not None
                and not config.checkpoint_path
                and self.checkpoint_dir
            ):
                # durable sidecar: every service campaign is resumable
                config = config.replace(
                    checkpoint_path=os.path.join(
                        self.checkpoint_dir, f"{job_id}.ckpt"
                    )
                )
            job = Job(
                job_id,
                kind,
                config,
                params,
                submitter=submitter,
                priority=priority,
                max_retries=self.max_retries,
                max_findings=self.max_findings,
                seq=self._counter,
            )
            job._journal = self.journal
            job._sidecar_dir = self.checkpoint_dir
            over_quota = (
                self.submitter_quota is not None
                and sum(
                    1
                    for j in self._jobs.values()
                    if j.submitter == submitter
                    and j.state in ("queued", "running")
                )
                >= self.submitter_quota
            )
            if over_quota:
                job.mark_rejected(
                    f"submitter {submitter or '(anonymous)'} is at its "
                    f"quota of {self.submitter_quota} active jobs"
                )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        if self.journal is not None:
            self.journal.insert(job.to_row())
        if job.state == "queued":
            self._wake.put(job.job_id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Optional[Job]:
        job = self.get(job_id)
        if job is not None:
            job.mark_cancelled()
        return job

    # -- metrics --------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == "queued")

    @property
    def shed_count(self) -> int:
        with self._lock:
            return self._shed

    def state_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.list():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- worker side ----------------------------------------------------
    def wait(self, timeout: float = 0.2) -> bool:
        """Block up to *timeout* for work (or a poison pill → ``False``)."""
        try:
            token = self._wake.get(timeout=timeout)
        except queue.Empty:
            return True
        return token is not None

    def claim(
        self, owner: str = "", lease_seconds: Optional[float] = None
    ) -> Optional[Tuple[Job, int]]:
        """CAS-claim the best eligible queued job under a fresh lease.

        Eligibility: ``queued`` state and past its retry backoff.
        Ordering: highest priority first, then submission order.
        Returns ``(job, lease_seq)`` or ``None``; the lease_seq is the
        worker's completion token — every finishing transition checks
        it, so a reclaimed job's original worker cannot double-finish.
        """
        lease = self.lease_seconds if lease_seconds is None else lease_seconds
        now = time.time()
        with self._lock:
            eligible = [
                j
                for j in self._jobs.values()
                if j.state == "queued" and j.next_attempt_at <= now
            ]
            eligible.sort(key=lambda j: (-j.priority, j.seq))
            for job in eligible:
                if job.mark_running(owner, lease):
                    return job, job.lease_seq
        return None

    def reclaim_expired(self) -> List[str]:
        """Requeue (or fail) running jobs whose lease expired."""
        reclaimed = []
        now = time.time()
        for job in self.list():
            if job.state == "running" and 0 < job.lease_expires < now:
                state = self._reclaim(
                    job, detail="lease expired", expired_only=True
                )
                if state:
                    reclaimed.append(job.job_id)
                    if state == "queued":
                        self._wake.put(job.job_id)
        return reclaimed

    def notify(self, job_id: str) -> None:
        """Wake a worker for *job_id* (requeued outside :meth:`submit`)."""
        self._wake.put(job_id)

    # -- priority preemption --------------------------------------------
    def should_preempt(self, job: Job) -> bool:
        """Should running *job* yield its worker to a higher-priority
        queued job?

        Checked from the job's own progress hook (the same seam as
        cancel/drain), so preemption rides the existing
        ``JobInterrupted`` checkpoint-and-requeue path: no retry burned,
        resume is signature-identical.  True only when **all** hold:

        * preemption is enabled and the job's config allows it;
        * a strictly higher-priority job is queued and past its backoff
          (equal priority never preempts — FIFO within a priority band);
        * no idle worker could absorb the queued job instead;
        * *job* is the designated victim — the lowest-priority running
          job, most recently started among ties (least work lost).
        """
        if not self.preemption:
            return False
        if job.config is not None and not job.config.preemptible:
            return False
        now = time.time()
        with self._lock:
            best_queued: Optional[int] = None
            running: List[Job] = []
            for candidate in self._jobs.values():
                if candidate.state == "queued" and candidate.next_attempt_at <= now:
                    if best_queued is None or candidate.priority > best_queued:
                        best_queued = candidate.priority
                elif candidate.state == "running":
                    running.append(candidate)
            if best_queued is None or best_queued <= job.priority:
                return False
            if self.worker_count and len(running) < self.worker_count:
                return False  # an idle worker will claim the queued job
            victim = min(
                running,
                key=lambda j: (j.priority, -(j.started_at or 0.0)),
                default=None,
            )
            if victim is not job:
                return False
            self._preemptions += 1
            return True

    @property
    def preemption_count(self) -> int:
        with self._lock:
            return self._preemptions

    # -- tenant budgets --------------------------------------------------
    def tenant_denial(self, job: Job) -> Optional[str]:
        """Why *job* must not run under its submitter's statement
        allowance (``None`` when it may run)."""
        budget = self.tenant_budget
        if budget is None or budget.statements is None or job.config is None:
            return None
        with self._lock:
            used = self._tenant_statements.get(job.submitter, 0)
        remaining = budget.statements - used
        if job.config.budget > remaining:
            return (
                f"resource_exhausted: submitter "
                f"{job.submitter or '(anonymous)'} has {max(0, remaining)} of "
                f"{budget.statements} budgeted statements left; this "
                f"campaign needs {job.config.budget}"
            )
        return None

    def apply_tenant_budgets(self, config: CampaignConfig) -> CampaignConfig:
        """Overlay the tenant's per-statement ceilings onto *config*.

        The tenant spec **overrides** any submitted ``budgets`` — a
        tenant must not be able to loosen its own cage by submitting a
        more generous spec.
        """
        budget = self.tenant_budget
        if budget is None or budget.budgets is None:
            return config
        return config.replace(budgets=budget.budgets)

    def charge_tenant(self, submitter: str, statements: int) -> None:
        """Record executed statements against *submitter*'s allowance."""
        if self.tenant_budget is None or self.tenant_budget.statements is None:
            return
        with self._lock:
            self._tenant_statements[submitter] = (
                self._tenant_statements.get(submitter, 0) + max(0, statements)
            )

    def tenant_usage(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._tenant_statements)

    def _reclaim(self, job: Job, detail: str, expired_only: bool = False) -> str:
        """Shared requeue-with-resume path for recovery and expiry."""
        resume = None
        path = job.checkpoint_path
        if path and CampaignCheckpoint.try_load(path) is not None:
            resume = path
        return job.mark_retrying(
            f"{detail}; attempt abandoned",
            lease_seq=None,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            resume=resume,
            expired_only=expired_only,
        )

    def poison(self, count: int = 1) -> None:
        """Wake *count* blocked workers so they observe shutdown."""
        for _ in range(count):
            self._wake.put(None)
