"""The asynchronous job model: campaign and replay jobs, store, queue.

A :class:`Job` is one unit of scheduled work — either a fuzzing
**campaign** (runs a :class:`~repro.core.config.CampaignConfig` through
the scheduler, streaming findings as they surface) or a regression
**replay** (re-executes stored bug-repository triggers and reports
status flips).  Jobs move through ``queued → running → done/failed``
(or ``cancelled`` while still queued).

The :class:`JobStore` is the thread-safe registry plus FIFO work queue
shared between HTTP handler threads (producers) and the scheduler worker
(consumer).  Findings stream through a cursor API —
:meth:`Job.findings_since` returns everything past a client-held offset,
so pollers never re-download the prefix.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import CampaignConfig

#: the job lifecycle
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


def finding_to_dict(finding: Any) -> Dict[str, Any]:
    """Serialize any oracle finding for the wire (stable JSON shape)."""
    return {
        "kind": getattr(finding, "kind", "crash"),
        "label": finding.bug_type_label,
        "dialect": getattr(finding, "dbms", ""),
        "function": getattr(finding, "function", ""),
        "pattern": getattr(finding, "pattern", ""),
        "sql": getattr(finding, "sql", ""),
        "peer": getattr(finding, "peer", "") or "",
        "message": getattr(finding, "message", "") or "",
        "query_index": getattr(finding, "query_index", -1),
    }


def result_to_summary(result: Any) -> Dict[str, Any]:
    """Serialize a :class:`CampaignResult` into the job's summary dict."""
    summary = {
        "dialect": result.dialect,
        "queries_executed": result.queries_executed,
        "bug_count": result.bug_count,
        "finding_count": len(result.findings),
        "triggered_functions": sorted(result.triggered_functions),
        "branch_coverage": result.branch_coverage,
        "outcomes": dict(result.outcomes),
        "quarantined": result.quarantined,
        "elapsed_seconds": result.elapsed_seconds,
        "wall_seconds": result.wall_seconds,
    }
    if result.fault_counters:
        summary["fault_counters"] = dict(result.fault_counters)
    if result.sandbox_active:
        # PR 5's supervisor health, surfaced to service pollers
        summary["sandbox"] = {
            "kills": result.sandbox_kills,
            "worker_deaths": result.sandbox_worker_deaths,
            "respawns": result.sandbox_respawns,
            "open_breakers": list(result.open_breakers),
            "quarantined_statements": result.quarantined_statements,
            "skipped_statements": result.skipped_statements,
        }
    return summary


class Job:
    """One scheduled unit of work, with streaming finding storage."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        config: Optional[CampaignConfig] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        if kind not in ("campaign", "replay"):
            raise ValueError(f"unknown job kind {kind!r}")
        self.job_id = job_id
        self.kind = kind
        self.config = config
        self.params = dict(params or {})
        self.state = "queued"
        self.error = ""
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.summary: Dict[str, Any] = {}
        self.progress: Dict[str, Any] = {}
        self.ingest: Dict[str, Any] = {}
        self._findings: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    # -- state transitions (scheduler side) -----------------------------
    def mark_running(self) -> None:
        with self._lock:
            self.state = "running"
            self.started_at = time.time()

    def mark_done(self, summary: Optional[Dict[str, Any]] = None) -> None:
        with self._lock:
            self.state = "done"
            self.finished_at = time.time()
            if summary is not None:
                self.summary = summary

    def mark_failed(self, error: str) -> None:
        with self._lock:
            self.state = "failed"
            self.finished_at = time.time()
            self.error = error

    def mark_cancelled(self) -> None:
        with self._lock:
            if self.state == "queued":
                self.state = "cancelled"
                self.finished_at = time.time()

    # -- streaming ------------------------------------------------------
    def add_finding(self, finding: Any, position: int = -1) -> None:
        entry = finding_to_dict(finding)
        entry["position"] = position
        with self._lock:
            self._findings.append(entry)

    def set_progress(self, progress: Dict[str, Any]) -> None:
        with self._lock:
            self.progress = dict(progress)

    def findings_since(self, cursor: int = 0) -> Tuple[int, List[Dict[str, Any]]]:
        """Return ``(next_cursor, findings[cursor:])``."""
        with self._lock:
            cursor = max(0, int(cursor))
            return len(self._findings), list(self._findings[cursor:])

    @property
    def finding_count(self) -> int:
        with self._lock:
            return len(self._findings)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            data: Dict[str, Any] = {
                "id": self.job_id,
                "kind": self.kind,
                "state": self.state,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "finding_count": len(self._findings),
                "progress": dict(self.progress),
            }
            if self.config is not None:
                data["config"] = self.config.to_dict()
            if self.params:
                data["params"] = dict(self.params)
            if self.error:
                data["error"] = self.error
            if self.summary:
                data["summary"] = dict(self.summary)
            if self.ingest:
                data["ingest"] = dict(self.ingest)
            return data


class JobStore:
    """Thread-safe job registry plus the scheduler's FIFO work queue."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._counter = 0

    def submit(
        self,
        kind: str,
        config: Optional[CampaignConfig] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Job:
        with self._lock:
            self._counter += 1
            job = Job(f"job-{self._counter:04d}", kind, config, params)
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        self._queue.put(job.job_id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Optional[Job]:
        job = self.get(job_id)
        if job is not None:
            job.mark_cancelled()
        return job

    # -- worker side ----------------------------------------------------
    def next_job(self, timeout: float = 0.2) -> Optional[Job]:
        """Block up to *timeout* for the next runnable job (skips
        cancelled entries); ``None`` on timeout or poison pill."""
        try:
            job_id = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if job_id is None:
            return None
        job = self.get(job_id)
        if job is None or job.state != "queued":
            return None
        return job

    def poison(self) -> None:
        """Wake a blocked worker so it can observe shutdown."""
        self._queue.put(None)
