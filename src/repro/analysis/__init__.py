"""Cross-cutting result aggregation used by the benchmarks."""

from .comparison import (
    TABLE5_DIALECTS,
    TOOL_SUPPORT,
    ComparisonCell,
    ComparisonTable,
    run_comparison,
)

__all__ = [
    "TABLE5_DIALECTS",
    "TOOL_SUPPORT",
    "ComparisonCell",
    "ComparisonTable",
    "run_comparison",
]
