"""Tool-comparison harness behind Tables 5 and 6 and §7.5.

Runs SOFT and the three baselines against the commonly supported dialects
under the same query budget, with identical measurement (triggered
functions via the engine's instrumentation; branches via the arc-coverage
tracker), and assembles the tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import SQLancerPQS, SQLsmith, Squirrel, run_tool
from ..core.campaign import Campaign
from ..core.config import CampaignConfig
from ..dialects import dialect_by_name

#: dialect columns of Tables 5/6, in paper order
TABLE5_DIALECTS = ("postgresql", "mysql", "mariadb", "clickhouse", "monetdb")

#: which tools support which dialects (§7.5)
TOOL_SUPPORT = {
    "squirrel": ("postgresql", "mysql", "mariadb"),
    "sqlancer": ("postgresql", "mysql", "mariadb", "clickhouse"),
    "sqlsmith": ("postgresql", "monetdb"),
    "soft": TABLE5_DIALECTS,
}

_TOOL_CLASSES = {
    "squirrel": Squirrel,
    "sqlancer": SQLancerPQS,
    "sqlsmith": SQLsmith,
}


@dataclass
class ComparisonCell:
    """One tool × dialect measurement."""

    tool: str
    dialect: str
    supported: bool
    triggered_functions: int = 0
    branch_coverage: int = 0
    bugs_found: int = 0
    queries: int = 0


@dataclass
class ComparisonTable:
    cells: List[ComparisonCell] = field(default_factory=list)

    def cell(self, tool: str, dialect: str) -> Optional[ComparisonCell]:
        for cell in self.cells:
            if cell.tool == tool and cell.dialect == dialect:
                return cell
        return None

    def total(self, tool: str, metric: str) -> int:
        return sum(
            getattr(cell, metric)
            for cell in self.cells
            if cell.tool == tool and cell.supported
        )

    def increment_over(self, baseline: str, metric: str) -> int:
        """SOFT's absolute gain over *baseline* on commonly-supported
        dialects (the Tables 5/6 "Increment" row)."""
        common = TOOL_SUPPORT[baseline]
        soft_total = sum(
            getattr(cell, metric)
            for cell in self.cells
            if cell.tool == "soft" and cell.dialect in common
        )
        base_total = sum(
            getattr(cell, metric)
            for cell in self.cells
            if cell.tool == baseline and cell.dialect in common and cell.supported
        )
        return soft_total - base_total

    def format(self, metric: str, title: str) -> str:
        tools = ("squirrel", "sqlancer", "sqlsmith", "soft")
        lines = [title, f"{'DBMS':<12} " + " ".join(f"{t:>10}" for t in tools)]
        for dialect in TABLE5_DIALECTS:
            row = [f"{dialect:<12}"]
            for tool in tools:
                cell = self.cell(tool, dialect)
                if cell is None or not cell.supported:
                    row.append(f"{'-':>10}")
                else:
                    row.append(f"{getattr(cell, metric):>10}")
            lines.append(" ".join(row))
        totals = ["Total       "] + [
            f"{self.total(t, metric):>10}" for t in tools
        ]
        lines.append(" ".join(totals))
        return "\n".join(lines)


def run_comparison(
    budget: int = 8_000,
    enable_coverage: bool = True,
    dialects: Sequence[str] = TABLE5_DIALECTS,
    seed: int = 0,
) -> ComparisonTable:
    """Run the four tools across *dialects* under a shared budget."""
    table = ComparisonTable()
    for dialect_name in dialects:
        for tool_name, dialect_list in TOOL_SUPPORT.items():
            supported = dialect_name in dialect_list
            cell = ComparisonCell(tool_name, dialect_name, supported)
            if supported:
                if tool_name == "soft":
                    result = Campaign(
                        dialect_by_name(dialect_name),
                        config=CampaignConfig(
                            dialect=dialect_name,
                            budget=budget,
                            enable_coverage=enable_coverage,
                            seed=seed,
                        ),
                    ).run()
                    cell.triggered_functions = len(result.triggered_functions)
                    cell.branch_coverage = result.branch_coverage
                    cell.bugs_found = sum(
                        1 for b in result.bugs if b.injected is not None
                    )
                    cell.queries = result.queries_executed
                else:
                    tool = _TOOL_CLASSES[tool_name]()
                    result = run_tool(
                        tool,
                        dialect_name,
                        budget=budget,
                        enable_coverage=enable_coverage,
                        seed=seed,
                    )
                    cell.triggered_functions = len(result.triggered_functions)
                    cell.branch_coverage = result.branch_coverage
                    cell.bugs_found = sum(
                        1 for b in result.bugs if b.injected is not None
                    )
                    cell.queries = result.queries_executed
            table.cells.append(cell)
    return table
