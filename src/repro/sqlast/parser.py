"""Recursive-descent SQL parser.

Parses the dialect-superset grammar SOFT needs: full scalar-expression
syntax (function calls, casts in three spellings, CASE, IN/BETWEEN/LIKE,
row/array/map constructors, subqueries) plus the statement forms that appear
in DBMS regression suites and bug PoCs (SELECT with set operations,
CREATE TABLE, INSERT, DROP TABLE, SET).

The parser is deliberately permissive about keywords: anything not consumed
as a keyword in context is an identifier, matching how SOFT must digest
seven dialects' test suites.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .lexer import tokenize
from .nodes import (
    ArrayExpr,
    BetweenExpr,
    BinaryOp,
    BooleanLit,
    CaseExpr,
    Cast,
    ColumnDef,
    ColumnRef,
    CreateTable,
    DecimalLit,
    Delete,
    DropTable,
    ExistsExpr,
    Expr,
    FuncCall,
    InExpr,
    IndexExpr,
    Insert,
    IntegerLit,
    IntervalExpr,
    IsNullExpr,
    JoinRef,
    LikeExpr,
    MapExpr,
    Node,
    NullLit,
    OrderItem,
    ParamRef,
    RowExpr,
    Select,
    SelectItem,
    SelectLike,
    SetOp,
    SetStmt,
    Star,
    Statement,
    StringLit,
    SubqueryExpr,
    SubqueryRef,
    TableRef,
    TypeName,
    UnaryOp,
    Update,
)
from .tokens import Token, TokenKind


class ParseError(ValueError):
    """Raised when the source text cannot be parsed."""

    def __init__(self, message: str, token: Optional[Token] = None) -> None:
        loc = f" near {token.text!r} (offset {token.pos})" if token else ""
        super().__init__(message + loc)
        self.token = token


#: Binary operator precedence (higher binds tighter).  NOT/unary handled
#: separately; comparison suffixes (IN/BETWEEN/LIKE/IS) sit at COMPARE level.
_PRECEDENCE = {
    "OR": 1,
    "XOR": 1,
    "AND": 2,
    "=": 4, "<": 4, ">": 4, "<=": 4, ">=": 4, "<>": 4, "!=": 4, "<=>": 4,
    "||": 5,
    "|": 6, "&": 6, "<<": 6, ">>": 6, "#": 6,
    "+": 7, "-": 7,
    "*": 8, "/": 8, "%": 8, "DIV": 8, "MOD": 8,
    "^": 9, "**": 9,
    "->": 10, "->>": 10, "#>": 10, "#>>": 10, "@>": 10, "<@": 10,
}

_INTERVAL_UNITS = {
    "YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND", "WEEK", "QUARTER",
    "MICROSECOND", "MILLISECOND",
}

#: Keywords that terminate an expression when met at top level.
_EXPR_TERMINATORS = {
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "UNION",
    "EXCEPT", "INTERSECT", "AS", "ASC", "DESC", "ON", "JOIN", "INNER",
    "LEFT", "RIGHT", "FULL", "CROSS", "WHEN", "THEN", "ELSE", "END",
}


class Parser:
    """Token-stream parser producing :mod:`repro.sqlast.nodes` trees."""

    def __init__(self, source: str, tokens: Optional[List[Token]] = None) -> None:
        self.source = source
        self._tokens = tokenize(source) if tokens is None else tokens
        self._index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokenKind.EOF:
            self._index += 1
        return tok

    def _accept_kw(self, *words: str) -> Optional[Token]:
        if any(self._cur.is_keyword(w) for w in words):
            return self._advance()
        return None

    def _expect_kw(self, word: str) -> Token:
        tok = self._accept_kw(word)
        if tok is None:
            raise ParseError(f"expected keyword {word}", self._cur)
        return tok

    def _accept_op(self, *symbols: str) -> Optional[Token]:
        if any(self._cur.is_op(s) for s in symbols):
            return self._advance()
        return None

    def _expect_op(self, symbol: str) -> Token:
        tok = self._accept_op(symbol)
        if tok is None:
            raise ParseError(f"expected {symbol!r}", self._cur)
        return tok

    def _at_eof(self) -> bool:
        return self._cur.kind is TokenKind.EOF

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_statements(self) -> List[Statement]:
        """Parse a ``;``-separated script into a list of statements."""
        statements: List[Statement] = []
        while not self._at_eof():
            if self._accept_op(";"):
                continue
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        tok = self._cur
        if tok.is_keyword("SELECT") or tok.is_op("("):
            stmt = self._parse_select_like()
            self._accept_op(";")
            return stmt
        if tok.is_keyword("CREATE"):
            return self._finish(self._parse_create())
        if tok.is_keyword("INSERT"):
            return self._finish(self._parse_insert())
        if tok.is_keyword("DROP"):
            return self._finish(self._parse_drop())
        if tok.is_keyword("SET"):
            return self._finish(self._parse_set())
        if tok.is_keyword("UPDATE"):
            return self._finish(self._parse_update())
        if tok.is_keyword("DELETE"):
            return self._finish(self._parse_delete())
        if tok.is_keyword("VALUES"):
            return self._finish(self._parse_values_select())
        if tok.is_keyword("EXPLAIN"):
            self._advance()
            from .nodes import Explain

            return self._finish(Explain(self.parse_statement()))
        raise ParseError("unsupported statement", tok)

    def _finish(self, stmt: Statement) -> Statement:
        self._accept_op(";")
        return stmt

    def parse_expression(self) -> Expr:
        return self._parse_expr(0)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _parse_select_like(self) -> SelectLike:
        left = self._parse_select_atom()
        while True:
            op_tok = self._accept_kw("UNION", "EXCEPT", "INTERSECT")
            if op_tok is None:
                return left
            all_flag = self._accept_kw("ALL") is not None
            self._accept_kw("DISTINCT")
            right = self._parse_select_atom()
            left = SetOp(op_tok.text.upper(), left, right, all=all_flag)

    def _parse_select_atom(self) -> SelectLike:
        if self._accept_op("("):
            inner = self._parse_select_like()
            self._expect_op(")")
            return inner
        if self._cur.is_keyword("VALUES"):
            return self._parse_values_select()
        self._expect_kw("SELECT")
        select = Select()
        if self._accept_kw("DISTINCT"):
            select.distinct = True
        else:
            self._accept_kw("ALL")
        select.items.append(self._parse_select_item())
        while self._accept_op(","):
            select.items.append(self._parse_select_item())
        if self._accept_kw("FROM"):
            select.from_.append(self._parse_table_expr())
            while self._accept_op(","):
                select.from_.append(self._parse_table_expr())
        if self._accept_kw("WHERE"):
            select.where = self.parse_expression()
        if self._accept_kw("GROUP"):
            self._expect_kw("BY")
            select.group_by.append(self.parse_expression())
            while self._accept_op(","):
                select.group_by.append(self.parse_expression())
        if self._accept_kw("HAVING"):
            select.having = self.parse_expression()
        if self._accept_kw("ORDER"):
            self._expect_kw("BY")
            select.order_by.append(self._parse_order_item())
            while self._accept_op(","):
                select.order_by.append(self._parse_order_item())
        if self._accept_kw("LIMIT"):
            select.limit = self.parse_expression()
            if self._accept_op(","):  # MySQL LIMIT off, count
                select.offset = select.limit
                select.limit = self.parse_expression()
        if self._accept_kw("OFFSET"):
            select.offset = self.parse_expression()
        return select

    def _parse_values_select(self) -> Select:
        """Model ``VALUES (1, 2), (3, 4)`` as a SELECT of row literals."""
        self._expect_kw("VALUES")
        select = Select()
        rows: List[Expr] = []
        while True:
            self._expect_op("(")
            items = [self.parse_expression()]
            while self._accept_op(","):
                items.append(self.parse_expression())
            self._expect_op(")")
            rows.append(RowExpr(items, explicit=False))
            if not self._accept_op(","):
                break
        select.items = [SelectItem(row) for row in rows]
        return select

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expression()
        alias = None
        if self._accept_kw("AS"):
            alias = self._advance().text
        elif (
            self._cur.kind is TokenKind.IDENT
            and self._cur.text.upper() not in _EXPR_TERMINATORS
        ):
            alias = self._advance().text
        return SelectItem(expr, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        descending = False
        if self._accept_kw("DESC"):
            descending = True
        else:
            self._accept_kw("ASC")
        self._accept_kw("NULLS") and (self._accept_kw("FIRST") or self._accept_kw("LAST"))
        return OrderItem(expr, descending)

    def _parse_table_expr(self) -> Node:
        left = self._parse_table_primary()
        while True:
            kind = None
            if self._accept_kw("CROSS"):
                kind = "CROSS"
            elif self._accept_kw("INNER"):
                kind = "INNER"
            elif self._accept_kw("LEFT"):
                self._accept_kw("OUTER")
                kind = "LEFT"
            elif self._accept_kw("RIGHT"):
                self._accept_kw("OUTER")
                kind = "RIGHT"
            elif self._accept_kw("FULL"):
                self._accept_kw("OUTER")
                kind = "FULL"
            elif self._cur.is_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return left
            self._expect_kw("JOIN")
            right = self._parse_table_primary()
            on = None
            if self._accept_kw("ON"):
                on = self.parse_expression()
            left = JoinRef(left, right, kind, on)

    def _parse_table_primary(self) -> Node:
        if self._cur.is_op("("):
            self._advance()
            query = self._parse_select_like()
            self._expect_op(")")
            alias = self._parse_opt_alias()
            return SubqueryRef(query, alias)
        name_tok = self._advance()
        if name_tok.kind is not TokenKind.IDENT:
            raise ParseError("expected table name", name_tok)
        name = name_tok.text
        while self._accept_op("."):
            name = f"{name}.{self._advance().text}"
        return TableRef(name, self._parse_opt_alias())

    def _parse_opt_alias(self) -> Optional[str]:
        if self._accept_kw("AS"):
            return self._advance().text
        if (
            self._cur.kind is TokenKind.IDENT
            and self._cur.text.upper() not in _EXPR_TERMINATORS
            and not self._cur.is_keyword("SET")
        ):
            return self._advance().text
        return None

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def _parse_create(self) -> CreateTable:
        self._expect_kw("CREATE")
        self._accept_kw("TEMPORARY") or self._accept_kw("TEMP")
        self._expect_kw("TABLE")
        if_not_exists = False
        if self._accept_kw("IF"):
            self._expect_kw("NOT")
            self._expect_kw("EXISTS")
            if_not_exists = True
        name = self._advance().text
        table = CreateTable(name, if_not_exists=if_not_exists)
        self._expect_op("(")
        while True:
            table.columns.append(self._parse_column_def())
            if not self._accept_op(","):
                break
        self._expect_op(")")
        # Swallow trailing engine/charset options (MySQL-ism).
        while not self._at_eof() and not self._cur.is_op(";"):
            self._advance()
        return table

    def _parse_column_def(self) -> ColumnDef:
        name = self._advance().text
        type_name = self._parse_type_name()
        constraints: List[str] = []
        while True:
            if self._accept_kw("NOT"):
                self._expect_kw("NULL")
                constraints.append("NOT NULL")
            elif self._accept_kw("NULL"):
                constraints.append("NULL")
            elif self._accept_kw("PRIMARY"):
                self._expect_kw("KEY")
                constraints.append("PRIMARY KEY")
            elif self._accept_kw("UNIQUE"):
                constraints.append("UNIQUE")
            elif self._accept_kw("DEFAULT"):
                self._parse_expr(3)  # value discarded; catalog ignores defaults
                constraints.append("DEFAULT")
            else:
                return ColumnDef(name, type_name, constraints)

    def _parse_type_name(self) -> TypeName:
        tok = self._advance()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError("expected type name", tok)
        name = tok.text
        # Multi-word types: DOUBLE PRECISION, CHARACTER VARYING, etc.
        if tok.text.upper() == "DOUBLE" and self._cur.is_keyword("PRECISION"):
            self._advance()
            name = "DOUBLE PRECISION"
        elif tok.text.upper() == "CHARACTER" and self._cur.is_keyword("VARYING"):
            self._advance()
            name = "VARCHAR"
        params: List[int] = []
        if self._accept_op("("):
            while not self._cur.is_op(")"):
                ptok = self._advance()
                if ptok.kind in (TokenKind.INTEGER, TokenKind.DECIMAL):
                    params.append(int(float(ptok.text)))
                self._accept_op(",")
            self._expect_op(")")
        type_name = TypeName(name, params)
        while self._accept_op("["):  # array suffix  int[]
            self._expect_op("]")
            type_name = TypeName("ARRAY", [])
        return type_name

    def _parse_insert(self) -> Insert:
        self._expect_kw("INSERT")
        self._accept_kw("IGNORE")
        self._expect_kw("INTO")
        table = self._advance().text
        columns: List[str] = []
        if self._cur.is_op("(") and not self._peek().is_keyword("SELECT"):
            self._advance()
            while not self._cur.is_op(")"):
                columns.append(self._advance().text)
                self._accept_op(",")
            self._expect_op(")")
        self._expect_kw("VALUES")
        rows: List[List[Expr]] = []
        while True:
            self._expect_op("(")
            row: List[Expr] = []
            if not self._cur.is_op(")"):
                row.append(self.parse_expression())
                while self._accept_op(","):
                    row.append(self.parse_expression())
            self._expect_op(")")
            rows.append(row)
            if not self._accept_op(","):
                break
        return Insert(table, columns, rows)

    def _parse_drop(self) -> DropTable:
        self._expect_kw("DROP")
        self._expect_kw("TABLE")
        if_exists = False
        if self._accept_kw("IF"):
            self._expect_kw("EXISTS")
            if_exists = True
        return DropTable(self._advance().text, if_exists)

    def _parse_update(self) -> Update:
        self._expect_kw("UPDATE")
        table = self._advance().text
        self._expect_kw("SET")
        assignments = []
        while True:
            column = self._advance().text
            if not self._accept_op("="):
                raise ParseError("expected '=' in UPDATE assignment", self._cur)
            assignments.append((column, self.parse_expression()))
            if not self._accept_op(","):
                break
        where = None
        if self._accept_kw("WHERE"):
            where = self.parse_expression()
        return Update(table, assignments, where)

    def _parse_delete(self) -> Delete:
        self._expect_kw("DELETE")
        self._expect_kw("FROM")
        table = self._advance().text
        where = None
        if self._accept_kw("WHERE"):
            where = self.parse_expression()
        return Delete(table, where)

    def _parse_set(self) -> SetStmt:
        self._expect_kw("SET")
        self._accept_kw("SESSION") or self._accept_kw("GLOBAL")
        name = self._advance().text
        while self._accept_op("."):
            name = f"{name}.{self._advance().text}"
        if not self._accept_op("=") and not self._accept_op(":="):
            raise ParseError("expected '=' in SET", self._cur)
        return SetStmt(name, self.parse_expression())

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while True:
            op = self._current_binary_op()
            if op is None:
                suffix = self._try_parse_suffix(left, min_prec)
                if suffix is not None:
                    left = suffix
                    continue
                return left
            prec = _PRECEDENCE[op]
            if prec < min_prec:
                return left
            self._advance()
            if op in ("DIV", "MOD", "AND", "OR", "XOR"):
                op = op.upper()
            right = self._parse_expr(prec + 1)
            left = BinaryOp(op, left, right)

    def _current_binary_op(self) -> Optional[str]:
        tok = self._cur
        if tok.kind is TokenKind.OPERATOR and tok.text in _PRECEDENCE:
            return tok.text
        if tok.kind is TokenKind.IDENT and not tok.quoted:
            word = tok.text.upper()
            if word in ("AND", "OR", "XOR", "DIV", "MOD"):
                return word
        return None

    def _try_parse_suffix(self, left: Expr, min_prec: int) -> Optional[Expr]:
        """Parse comparison-level suffixes: IN, BETWEEN, LIKE, IS NULL."""
        if min_prec > 3:
            return None
        negated = False
        save = self._index
        if self._accept_kw("NOT"):
            negated = True
        if self._accept_kw("IN"):
            self._expect_op("(")
            if self._cur.is_keyword("SELECT") or self._cur.is_keyword("VALUES"):
                sub = self._parse_select_like()
                self._expect_op(")")
                return InExpr(left, [SubqueryExpr(sub)], negated)
            items = [self.parse_expression()]
            while self._accept_op(","):
                items.append(self.parse_expression())
            self._expect_op(")")
            return InExpr(left, items, negated)
        if self._accept_kw("BETWEEN"):
            low = self._parse_expr(5)
            self._expect_kw("AND")
            high = self._parse_expr(5)
            return BetweenExpr(left, low, high, negated)
        like_tok = self._accept_kw("LIKE", "ILIKE", "REGEXP", "RLIKE", "SIMILAR")
        if like_tok is not None:
            op = like_tok.text.upper()
            if op == "SIMILAR":
                self._expect_kw("TO")
                op = "SIMILAR TO"
            pattern = self._parse_expr(5)
            if self._accept_kw("ESCAPE"):
                self._parse_expr(5)
            return LikeExpr(left, pattern, negated, op)
        if negated:
            self._index = save  # NOT belonged to something else
            return None
        if self._accept_kw("IS"):
            neg = self._accept_kw("NOT") is not None
            if self._accept_kw("NULL"):
                return IsNullExpr(left, neg)
            if self._accept_kw("TRUE"):
                return BinaryOp("=", left, BooleanLit(not neg))
            if self._accept_kw("FALSE"):
                return BinaryOp("=", left, BooleanLit(neg))
            if self._accept_kw("DISTINCT"):
                self._expect_kw("FROM")
                other = self._parse_expr(5)
                return BinaryOp("IS DISTINCT FROM" if not neg else "IS NOT DISTINCT FROM", left, other)
            raise ParseError("unsupported IS expression", self._cur)
        return None

    def _parse_unary(self) -> Expr:
        if self._accept_kw("NOT"):
            return UnaryOp("NOT", self._parse_expr(3))
        tok = self._cur
        if tok.is_op("-") or tok.is_op("+") or tok.is_op("~") or tok.is_op("!"):
            self._advance()
            return UnaryOp(tok.text, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self._accept_op("::"):
                expr = Cast(expr, self._parse_type_name(), style="colons")
            elif self._cur.is_op("["):
                self._advance()
                index = self.parse_expression()
                self._expect_op("]")
                expr = IndexExpr(expr, index)
            else:
                return expr

    # -- primary --------------------------------------------------------
    def _parse_primary(self) -> Expr:
        tok = self._cur
        if tok.kind is TokenKind.INTEGER:
            self._advance()
            return IntegerLit(tok.text)
        if tok.kind is TokenKind.DECIMAL:
            self._advance()
            return DecimalLit(tok.text)
        if tok.kind is TokenKind.STRING:
            self._advance()
            return StringLit(tok.text)
        if tok.is_op("*"):
            self._advance()
            return Star()
        if tok.is_op("?"):
            self._advance()
            return ParamRef(0)
        if tok.is_op("$") and self._peek().kind is TokenKind.INTEGER:
            self._advance()
            return ParamRef(int(self._advance().text))
        if tok.is_op("("):
            return self._parse_parenthesised()
        if tok.is_op("["):
            return self._parse_bracket_array()
        if tok.is_op("{"):
            return self._parse_brace_map()
        if tok.kind is TokenKind.IDENT:
            return self._parse_ident_expr()
        raise ParseError("unexpected token in expression", tok)

    def _parse_parenthesised(self) -> Expr:
        self._expect_op("(")
        if self._cur.is_keyword("SELECT") or self._cur.is_keyword("VALUES"):
            sub = self._parse_select_like()
            self._expect_op(")")
            return SubqueryExpr(sub)
        items = [self.parse_expression()]
        while self._accept_op(","):
            items.append(self.parse_expression())
        self._expect_op(")")
        if len(items) == 1:
            return items[0]
        return RowExpr(items, explicit=False)

    def _parse_bracket_array(self) -> Expr:
        self._expect_op("[")
        items: List[Expr] = []
        if not self._cur.is_op("]"):
            items.append(self.parse_expression())
            while self._accept_op(","):
                items.append(self.parse_expression())
        self._expect_op("]")
        return ArrayExpr(items)

    def _parse_brace_map(self) -> Expr:
        self._expect_op("{")
        keys: List[Expr] = []
        values: List[Expr] = []
        if not self._cur.is_op("}"):
            while True:
                keys.append(self.parse_expression())
                self._expect_op(":")
                values.append(self.parse_expression())
                if not self._accept_op(","):
                    break
        self._expect_op("}")
        return MapExpr(keys, values)

    def _parse_ident_expr(self) -> Expr:
        tok = self._advance()
        word = tok.text.upper() if not tok.quoted else None
        if word == "NULL":
            return NullLit()
        if word == "TRUE":
            return BooleanLit(True)
        if word == "FALSE":
            return BooleanLit(False)
        if word == "CASE":
            return self._parse_case()
        if word == "CAST" and self._cur.is_op("("):
            return self._parse_cast_call()
        if word == "CONVERT" and self._cur.is_op("("):
            return self._parse_convert_call(tok.text)
        if word == "EXISTS" and self._cur.is_op("("):
            self._advance()
            sub = self._parse_select_like()
            self._expect_op(")")
            return ExistsExpr(sub)
        if word == "INTERVAL" and not self._cur.is_op("("):
            value = self._parse_primary()
            unit = "DAY"
            if self._cur.kind is TokenKind.IDENT and self._cur.text.upper() in _INTERVAL_UNITS:
                unit = self._advance().text.upper()
            return IntervalExpr(value, unit)
        if word == "ROW" and self._cur.is_op("("):
            self._advance()
            items: List[Expr] = []
            if not self._cur.is_op(")"):
                items.append(self.parse_expression())
                while self._accept_op(","):
                    items.append(self.parse_expression())
            self._expect_op(")")
            return RowExpr(items, explicit=True)
        if word == "ARRAY" and self._cur.is_op("["):
            return self._parse_bracket_array()
        if word == "MAP" and self._cur.is_op("{"):
            return self._parse_brace_map()
        if word == "DATE" and self._cur.kind is TokenKind.STRING:
            return FuncCall("DATE", [StringLit(self._advance().text)])
        if word == "TIMESTAMP" and self._cur.kind is TokenKind.STRING:
            return FuncCall("TIMESTAMP", [StringLit(self._advance().text)])
        if self._cur.is_op("("):
            return self._parse_func_call(tok.text)
        # qualified reference a.b.c or a.*
        parts = [tok.text]
        while self._accept_op("."):
            if self._accept_op("*"):
                return Star(qualifier=".".join(parts))
            nxt = self._advance()
            if nxt.kind is TokenKind.IDENT:
                parts.append(nxt.text)
            elif nxt.kind is TokenKind.INTEGER:
                parts.append(nxt.text)
            else:
                raise ParseError("expected identifier after '.'", nxt)
            if self._cur.is_op("("):
                return self._parse_func_call(".".join(parts))
        return ColumnRef(parts)

    def _parse_func_call(self, name: str) -> Expr:
        self._expect_op("(")
        call = FuncCall(name)
        if self._accept_kw("DISTINCT"):
            call.distinct = True
        if not self._cur.is_op(")"):
            call.args.append(self._parse_func_arg())
            while self._accept_op(","):
                call.args.append(self._parse_func_arg())
        self._expect_op(")")
        # Swallow aggregate suffixes: FILTER (WHERE ...), OVER (...)
        if self._cur.is_keyword("FILTER") and self._peek().is_op("("):
            self._advance()
            self._skip_balanced_parens()
        if self._cur.is_keyword("OVER") and self._peek().is_op("("):
            self._advance()
            self._skip_balanced_parens()
        return call

    def _parse_func_arg(self) -> Expr:
        if self._cur.is_op("*") :
            # lone star argument, or star followed by ')' / ','
            nxt = self._peek()
            if nxt.is_op(")") or nxt.is_op(","):
                self._advance()
                return Star()
        if self._cur.is_keyword("SELECT"):
            return SubqueryExpr(self._parse_select_like())
        expr = self.parse_expression()
        # "expr AS type" inside CAST-like calls handled by caller;
        # some funcs use "x FROM y" (EXTRACT / SUBSTRING / TRIM): normalise.
        if self._accept_kw("FROM"):
            rest = self.parse_expression()
            extra: List[Expr] = [expr, rest]
            if self._accept_kw("FOR"):
                extra.append(self.parse_expression())
            return RowExpr(extra, explicit=False)
        return expr

    def _skip_balanced_parens(self) -> None:
        self._expect_op("(")
        depth = 1
        while depth and not self._at_eof():
            if self._cur.is_op("("):
                depth += 1
            elif self._cur.is_op(")"):
                depth -= 1
            self._advance()

    def _parse_cast_call(self) -> Cast:
        self._expect_op("(")
        operand = self.parse_expression()
        self._expect_kw("AS")
        type_name = self._parse_type_name()
        self._expect_op(")")
        return Cast(operand, type_name, style="cast")

    def _parse_convert_call(self, name: str) -> Expr:
        self._expect_op("(")
        operand = self.parse_expression()
        if self._accept_op(","):
            tn = self._parse_type_name()
            self._expect_op(")")
            return Cast(operand, tn, style="convert")
        if self._accept_kw("USING"):
            self._advance()  # charset name
            self._expect_op(")")
            return Cast(operand, TypeName("VARCHAR"), style="convert")
        self._expect_op(")")
        return FuncCall(name, [operand])

    def _parse_case(self) -> CaseExpr:
        operand: Optional[Expr] = None
        if not self._cur.is_keyword("WHEN"):
            operand = self.parse_expression()
        whens: List[Tuple[Expr, Expr]] = []
        while self._accept_kw("WHEN"):
            cond = self.parse_expression()
            self._expect_kw("THEN")
            whens.append((cond, self.parse_expression()))
        else_: Optional[Expr] = None
        if self._accept_kw("ELSE"):
            else_ = self.parse_expression()
        self._expect_kw("END")
        return CaseExpr(operand, whens, else_)


# ---------------------------------------------------------------------------
# convenience wrappers
# ---------------------------------------------------------------------------
def parse_statements(
    source: str, tokens: Optional[List[Token]] = None
) -> List[Statement]:
    """Parse *source* as a ``;``-separated script.

    *tokens* lets a caller that already lexed *source* (the statement
    cache's fingerprint probe) skip the second tokenize pass.
    """
    return Parser(source, tokens=tokens).parse_statements()


def parse_statement(source: str) -> Statement:
    """Parse a single statement, rejecting trailing content."""
    parser = Parser(source)
    stmt = parser.parse_statement()
    parser._accept_op(";")
    if not parser._at_eof():
        raise ParseError("trailing input after statement", parser._cur)
    return stmt


def parse_expression(source: str) -> Expr:
    """Parse a standalone scalar expression."""
    parser = Parser(source)
    expr = parser.parse_expression()
    if not parser._at_eof():
        raise ParseError("trailing input after expression", parser._cur)
    return expr
