"""SQL lexing, parsing, printing, and AST utilities.

This package is the shared language layer: the simulated DBMS engines parse
queries with it, SOFT's pattern transformations rewrite its trees, and the
baseline fuzzers generate queries as trees and print them.
"""

from .lexer import LexError, Lexer, tokenize
from .nodes import (
    ArrayExpr,
    BetweenExpr,
    BinaryOp,
    BooleanLit,
    CaseExpr,
    Cast,
    ColumnDef,
    ColumnRef,
    CreateTable,
    DecimalLit,
    Delete,
    DropTable,
    ExistsExpr,
    Explain,
    Expr,
    FuncCall,
    InExpr,
    IndexExpr,
    Insert,
    IntegerLit,
    IntervalExpr,
    IsNullExpr,
    JoinRef,
    LikeExpr,
    MapExpr,
    Node,
    NullLit,
    OrderItem,
    ParamRef,
    RawStatement,
    RowExpr,
    Select,
    SelectItem,
    SelectLike,
    SetOp,
    SetStmt,
    Star,
    Statement,
    StringLit,
    SubqueryExpr,
    SubqueryRef,
    TableRef,
    TypeName,
    UnaryOp,
    Update,
)
from .parser import ParseError, Parser, parse_expression, parse_statement, parse_statements
from .printer import to_sql
from .visitor import (
    clone,
    count_function_calls,
    find_function_calls,
    find_literals,
    max_function_nesting,
    replace_node,
    transform,
    walk,
)

__all__ = [
    "ArrayExpr", "BetweenExpr", "BinaryOp", "BooleanLit", "CaseExpr", "Cast",
    "ColumnDef", "ColumnRef", "CreateTable", "DecimalLit", "DropTable",
    "ExistsExpr", "Explain", "Expr", "FuncCall", "InExpr", "IndexExpr", "Insert",
    "IntegerLit", "IntervalExpr", "IsNullExpr", "JoinRef", "LexError",
    "Lexer", "LikeExpr", "MapExpr", "Node", "NullLit", "OrderItem",
    "ParamRef", "ParseError", "Parser", "RawStatement", "RowExpr", "Select",
    "SelectItem", "SelectLike", "SetOp", "SetStmt", "Star", "Statement",
    "StringLit", "SubqueryExpr", "SubqueryRef", "TableRef", "TypeName",
    "UnaryOp", "Update", "Delete", "clone", "count_function_calls", "find_function_calls",
    "find_literals", "max_function_nesting", "parse_expression",
    "parse_statement", "parse_statements", "replace_node", "to_sql",
    "tokenize", "transform", "walk",
]
