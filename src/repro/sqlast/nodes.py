"""AST node definitions shared by the engine, SOFT, and the baselines.

Every node derives from :class:`Node` and implements ``children()`` so that
generic traversal (:mod:`repro.sqlast.visitor`) works without per-node code.
Nodes are plain mutable dataclasses: SOFT's pattern transformations clone the
tree (:func:`repro.sqlast.visitor.clone`) and then splice replacements in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union


class Node:
    """Base class for all AST nodes."""

    def children(self) -> Iterable["Node"]:
        """Yield direct child nodes (no Nones)."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import to_sql

        try:
            return f"<{type(self).__name__} {to_sql(self)!r}>"
        except Exception:
            return f"<{type(self).__name__}>"


class Expr(Node):
    """Base class for expression nodes."""


class Statement(Node):
    """Base class for statement nodes."""


# ---------------------------------------------------------------------------
# literals
# ---------------------------------------------------------------------------
@dataclass(repr=False)
class IntegerLit(Expr):
    """Integer literal.  ``text`` preserves the exact source digits so SOFT
    can generate integers wider than any machine type."""

    text: str

    @property
    def value(self) -> int:
        return int(self.text, 16) if self.text.lower().startswith("0x") else int(self.text)


@dataclass(repr=False)
class DecimalLit(Expr):
    """Decimal / floating literal; ``text`` preserves the source digits."""

    text: str


@dataclass(repr=False)
class StringLit(Expr):
    """Single-quoted string literal (value already unescaped)."""

    value: str


@dataclass(repr=False)
class NullLit(Expr):
    """The ``NULL`` keyword."""


@dataclass(repr=False)
class BooleanLit(Expr):
    """``TRUE`` / ``FALSE``."""

    value: bool


@dataclass(repr=False)
class Star(Expr):
    """A bare ``*`` — in select lists, ``COUNT(*)``, or (as the paper's
    Pattern 1.1 exploits) smuggled into arbitrary argument positions."""

    qualifier: Optional[str] = None


@dataclass(repr=False)
class ParamRef(Expr):
    """Positional parameter (``?`` or ``$1``)."""

    index: int


# ---------------------------------------------------------------------------
# names and calls
# ---------------------------------------------------------------------------
@dataclass(repr=False)
class ColumnRef(Expr):
    """Possibly-qualified column or bare identifier reference."""

    parts: List[str]

    @property
    def name(self) -> str:
        return self.parts[-1]


@dataclass(repr=False)
class FuncCall(Expr):
    """A function-call expression ``name(arg, ...)``.

    This is the node SOFT's patterns operate on.  ``distinct`` covers
    ``COUNT(DISTINCT x)`` style aggregate modifiers.
    """

    name: str
    args: List[Expr] = field(default_factory=list)
    distinct: bool = False

    def children(self) -> Iterable[Node]:
        return list(self.args)


@dataclass(repr=False)
class UnaryOp(Expr):
    op: str
    operand: Expr

    def children(self) -> Iterable[Node]:
        return (self.operand,)


@dataclass(repr=False)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Iterable[Node]:
        return (self.left, self.right)


# ---------------------------------------------------------------------------
# type names and casts
# ---------------------------------------------------------------------------
@dataclass(repr=False)
class TypeName(Node):
    """A type name with optional parenthesised parameters, e.g.
    ``DECIMAL(65, 30)`` or ``Decimal256(45)`` or ``VARCHAR(10)``."""

    name: str
    params: List[int] = field(default_factory=list)

    def key(self) -> str:
        """Canonical lower-case name without parameters."""
        return self.name.lower()


@dataclass(repr=False)
class Cast(Expr):
    """Explicit cast, any of ``CAST(x AS t)``, ``x::t``, ``CONVERT(x, t)``."""

    operand: Expr
    type_name: TypeName
    style: str = "cast"  # "cast" | "colons" | "convert"

    def children(self) -> Iterable[Node]:
        return (self.operand,)


# ---------------------------------------------------------------------------
# compound expressions
# ---------------------------------------------------------------------------
@dataclass(repr=False)
class CaseExpr(Expr):
    operand: Optional[Expr]
    whens: List[Tuple[Expr, Expr]]
    else_: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        out: List[Node] = []
        if self.operand is not None:
            out.append(self.operand)
        for cond, result in self.whens:
            out.extend((cond, result))
        if self.else_ is not None:
            out.append(self.else_)
        return out


@dataclass(repr=False)
class InExpr(Expr):
    expr: Expr
    items: List[Expr]
    negated: bool = False

    def children(self) -> Iterable[Node]:
        return [self.expr, *self.items]


@dataclass(repr=False)
class BetweenExpr(Expr):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> Iterable[Node]:
        return (self.expr, self.low, self.high)


@dataclass(repr=False)
class LikeExpr(Expr):
    expr: Expr
    pattern: Expr
    negated: bool = False
    op: str = "LIKE"  # LIKE | ILIKE | REGEXP | RLIKE

    def children(self) -> Iterable[Node]:
        return (self.expr, self.pattern)


@dataclass(repr=False)
class IsNullExpr(Expr):
    expr: Expr
    negated: bool = False

    def children(self) -> Iterable[Node]:
        return (self.expr,)


@dataclass(repr=False)
class ExistsExpr(Expr):
    subquery: "Select"
    negated: bool = False

    def children(self) -> Iterable[Node]:
        return (self.subquery,)


@dataclass(repr=False)
class SubqueryExpr(Expr):
    """A parenthesised scalar subquery used as an expression."""

    query: "SelectLike"

    def children(self) -> Iterable[Node]:
        return (self.query,)


@dataclass(repr=False)
class RowExpr(Expr):
    """``ROW(a, b)`` or bare ``(a, b)`` tuple constructor."""

    items: List[Expr]
    explicit: bool = True  # written with the ROW keyword

    def children(self) -> Iterable[Node]:
        return list(self.items)


@dataclass(repr=False)
class ArrayExpr(Expr):
    """``ARRAY[a, b]`` or DuckDB-style ``[a, b]`` array constructor."""

    items: List[Expr]

    def children(self) -> Iterable[Node]:
        return list(self.items)


@dataclass(repr=False)
class MapExpr(Expr):
    """``MAP {k: v, ...}`` constructor (DuckDB / ClickHouse style)."""

    keys: List[Expr]
    values: List[Expr]

    def children(self) -> Iterable[Node]:
        return [*self.keys, *self.values]


@dataclass(repr=False)
class IntervalExpr(Expr):
    """``INTERVAL <value> <unit>``."""

    value: Expr
    unit: str

    def children(self) -> Iterable[Node]:
        return (self.value,)


@dataclass(repr=False)
class IndexExpr(Expr):
    """Subscript access ``base[index]``."""

    base: Expr
    index: Expr

    def children(self) -> Iterable[Node]:
        return (self.base, self.index)


# ---------------------------------------------------------------------------
# SELECT and friends
# ---------------------------------------------------------------------------
@dataclass(repr=False)
class SelectItem(Node):
    expr: Expr
    alias: Optional[str] = None

    def children(self) -> Iterable[Node]:
        return (self.expr,)


@dataclass(repr=False)
class TableRef(Node):
    name: str
    alias: Optional[str] = None


@dataclass(repr=False)
class SubqueryRef(Node):
    query: "SelectLike"
    alias: Optional[str] = None

    def children(self) -> Iterable[Node]:
        return (self.query,)


@dataclass(repr=False)
class JoinRef(Node):
    left: Node
    right: Node
    kind: str = "INNER"  # INNER | LEFT | RIGHT | FULL | CROSS
    on: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        out: List[Node] = [self.left, self.right]
        if self.on is not None:
            out.append(self.on)
        return out


@dataclass(repr=False)
class OrderItem(Node):
    expr: Expr
    descending: bool = False

    def children(self) -> Iterable[Node]:
        return (self.expr,)


@dataclass(repr=False)
class Select(Statement):
    items: List[SelectItem] = field(default_factory=list)
    from_: List[Node] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False

    def children(self) -> Iterable[Node]:
        out: List[Node] = list(self.items)
        out.extend(self.from_)
        for part in (self.where, self.having, self.limit, self.offset):
            if part is not None:
                out.append(part)
        out.extend(self.group_by)
        out.extend(self.order_by)
        return out


@dataclass(repr=False)
class SetOp(Statement):
    """``UNION`` / ``EXCEPT`` / ``INTERSECT`` between two select-like trees."""

    op: str
    left: "SelectLike"
    right: "SelectLike"
    all: bool = False

    def children(self) -> Iterable[Node]:
        return (self.left, self.right)


SelectLike = Union[Select, SetOp]


# ---------------------------------------------------------------------------
# DDL / DML
# ---------------------------------------------------------------------------
@dataclass(repr=False)
class ColumnDef(Node):
    name: str
    type_name: TypeName
    constraints: List[str] = field(default_factory=list)


@dataclass(repr=False)
class CreateTable(Statement):
    name: str
    columns: List[ColumnDef] = field(default_factory=list)
    if_not_exists: bool = False

    def children(self) -> Iterable[Node]:
        return list(self.columns)


@dataclass(repr=False)
class Insert(Statement):
    table: str
    columns: List[str] = field(default_factory=list)
    rows: List[List[Expr]] = field(default_factory=list)

    def children(self) -> Iterable[Node]:
        return [expr for row in self.rows for expr in row]


@dataclass(repr=False)
class Update(Statement):
    table: str
    assignments: List[Tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        out: List[Node] = [expr for _, expr in self.assignments]
        if self.where is not None:
            out.append(self.where)
        return out


@dataclass(repr=False)
class Delete(Statement):
    table: str
    where: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.where,) if self.where is not None else ()


@dataclass(repr=False)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(repr=False)
class SetStmt(Statement):
    """``SET name = value`` session configuration."""

    name: str
    value: Expr

    def children(self) -> Iterable[Node]:
        return (self.value,)


@dataclass(repr=False)
class Explain(Statement):
    """``EXPLAIN <statement>`` — renders the engine's three-stage plan."""

    target: Statement

    def children(self) -> Iterable[Node]:
        return (self.target,)


@dataclass(repr=False)
class RawStatement(Statement):
    """A statement the parser recognised but does not model structurally."""

    text: str
