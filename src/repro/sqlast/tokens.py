"""Token definitions for the SQL lexer.

The lexer produces a flat stream of :class:`Token` objects which the
recursive-descent parser (:mod:`repro.sqlast.parser`) consumes.  Token kinds
are deliberately coarse — keyword recognition happens in the parser so that
dialects may treat most keywords as ordinary identifiers (real DBMSs differ
wildly in their reserved-word lists, and SOFT must parse queries from seven
dialects' regression suites).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"            # bare or quoted identifier / keyword
    INTEGER = "integer"        # integer literal (digits only)
    DECIMAL = "decimal"        # decimal literal with '.' or exponent
    STRING = "string"          # single-quoted string literal
    OPERATOR = "operator"      # punctuation / operator symbol
    PARAM = "param"            # positional parameter like $1 or ?
    EOF = "eof"                # end of input sentinel


@dataclass(frozen=True)
class Token:
    """A single lexed token.

    Attributes:
        kind: lexical category.
        text: the token text.  For ``STRING`` tokens this is the *decoded*
            value (quotes stripped, escapes resolved); for quoted identifiers
            the quotes are stripped as well.
        pos: byte offset of the first character in the source text.
        quoted: True when the token was written with quoting (string
            literals are always quoted; identifiers may be).
    """

    kind: TokenKind
    text: str
    pos: int
    quoted: bool = False

    def is_keyword(self, word: str) -> bool:
        """Return True when this token is the (unquoted) keyword *word*."""
        return (
            self.kind is TokenKind.IDENT
            and not self.quoted
            and self.text.upper() == word.upper()
        )

    def is_op(self, symbol: str) -> bool:
        """Return True when this token is the operator *symbol*."""
        return self.kind is TokenKind.OPERATOR and self.text == symbol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}@{self.pos})"


#: Multi-character operator symbols, longest first so the lexer can
#: greedily match (e.g. ``::`` before ``:``, ``<=`` before ``<``).
MULTI_CHAR_OPERATORS = (
    "::",
    "<=>",
    "<=",
    ">=",
    "<>",
    "!=",
    "||",
    "->>",
    "->",
    "#>>",
    "#>",
    "@>",
    "<@",
    "**",
    "<<",
    ">>",
    ":=",
)

#: Single-character operator symbols.
SINGLE_CHAR_OPERATORS = set("+-*/%^=<>(),.;[]{}:&|~#@!?")
