"""Generic AST traversal, cloning, and in-place transformation helpers.

SOFT's patterns need three operations:

* :func:`walk` — preorder iteration over a tree;
* :func:`clone` — deep copy so generated variants never alias the seed;
* :func:`replace` / :func:`transform` — splice a replacement subtree into a
  cloned tree at a given position.

Positions are identified by *node identity* after cloning: callers clone the
seed once, walk the clone to pick targets, and mutate in place.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Optional, Tuple

from . import nodes as n


def walk(node: n.Node) -> Iterator[n.Node]:
    """Yield *node* and every descendant in preorder."""
    stack: List[n.Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        children = list(current.children())
        stack.extend(reversed(children))


def clone(node: n.Node) -> n.Node:
    """Return a deep copy of *node*."""
    return copy.deepcopy(node)


def find_function_calls(node: n.Node) -> List[n.FuncCall]:
    """All :class:`FuncCall` nodes in preorder."""
    return [x for x in walk(node) if isinstance(x, n.FuncCall)]


def count_function_calls(node: n.Node) -> int:
    return len(find_function_calls(node))


def find_literals(node: n.Node) -> List[n.Expr]:
    """All literal leaves (integers, decimals, strings, NULL, booleans)."""
    kinds = (n.IntegerLit, n.DecimalLit, n.StringLit, n.NullLit, n.BooleanLit)
    return [x for x in walk(node) if isinstance(x, kinds)]


def max_function_nesting(node: n.Node) -> int:
    """Depth of the deepest chain of nested function calls."""

    def depth(current: n.Node) -> int:
        best = 0
        for child in current.children():
            best = max(best, depth(child))
        return best + (1 if isinstance(current, n.FuncCall) else 0)

    return depth(node)


def transform(
    node: n.Node, fn: Callable[[n.Node], Optional[n.Node]]
) -> n.Node:
    """Bottom-up rewrite: *fn* returns a replacement node or None to keep.

    The input tree is not modified; a rewritten clone is returned.
    """

    def rewrite(current: n.Node) -> n.Node:
        current = copy.copy(current)
        _replace_children(current, rewrite)
        replacement = fn(current)
        return replacement if replacement is not None else current

    return rewrite(node)


def _replace_children(node: n.Node, rewrite: Callable[[n.Node], n.Node]) -> None:
    """Rewrite child links in-place on a shallow-copied node."""
    if isinstance(node, n.FuncCall):
        node.args = [rewrite(a) for a in node.args]
    elif isinstance(node, n.UnaryOp):
        node.operand = rewrite(node.operand)
    elif isinstance(node, n.BinaryOp):
        node.left = rewrite(node.left)
        node.right = rewrite(node.right)
    elif isinstance(node, n.Cast):
        node.operand = rewrite(node.operand)
    elif isinstance(node, n.CaseExpr):
        if node.operand is not None:
            node.operand = rewrite(node.operand)
        node.whens = [(rewrite(c), rewrite(r)) for c, r in node.whens]
        if node.else_ is not None:
            node.else_ = rewrite(node.else_)
    elif isinstance(node, n.InExpr):
        node.expr = rewrite(node.expr)
        node.items = [rewrite(i) for i in node.items]
    elif isinstance(node, n.BetweenExpr):
        node.expr = rewrite(node.expr)
        node.low = rewrite(node.low)
        node.high = rewrite(node.high)
    elif isinstance(node, n.LikeExpr):
        node.expr = rewrite(node.expr)
        node.pattern = rewrite(node.pattern)
    elif isinstance(node, n.IsNullExpr):
        node.expr = rewrite(node.expr)
    elif isinstance(node, (n.RowExpr, n.ArrayExpr)):
        node.items = [rewrite(i) for i in node.items]
    elif isinstance(node, n.MapExpr):
        node.keys = [rewrite(k) for k in node.keys]
        node.values = [rewrite(v) for v in node.values]
    elif isinstance(node, n.IntervalExpr):
        node.value = rewrite(node.value)
    elif isinstance(node, n.IndexExpr):
        node.base = rewrite(node.base)
        node.index = rewrite(node.index)
    elif isinstance(node, n.SelectItem):
        node.expr = rewrite(node.expr)
    elif isinstance(node, n.OrderItem):
        node.expr = rewrite(node.expr)
    elif isinstance(node, n.Select):
        node.items = [rewrite(i) for i in node.items]
        node.from_ = [rewrite(f) for f in node.from_]
        if node.where is not None:
            node.where = rewrite(node.where)
        node.group_by = [rewrite(g) for g in node.group_by]
        if node.having is not None:
            node.having = rewrite(node.having)
        node.order_by = [rewrite(o) for o in node.order_by]
        if node.limit is not None:
            node.limit = rewrite(node.limit)
        if node.offset is not None:
            node.offset = rewrite(node.offset)
    elif isinstance(node, n.SetOp):
        node.left = rewrite(node.left)
        node.right = rewrite(node.right)
    elif isinstance(node, n.SubqueryExpr):
        node.query = rewrite(node.query)
    elif isinstance(node, n.SubqueryRef):
        node.query = rewrite(node.query)
    elif isinstance(node, n.JoinRef):
        node.left = rewrite(node.left)
        node.right = rewrite(node.right)
        if node.on is not None:
            node.on = rewrite(node.on)
    elif isinstance(node, n.ExistsExpr):
        node.subquery = rewrite(node.subquery)
    elif isinstance(node, n.Insert):
        node.rows = [[rewrite(v) for v in row] for row in node.rows]
    elif isinstance(node, n.Update):
        node.assignments = [(c, rewrite(e)) for c, e in node.assignments]
        if node.where is not None:
            node.where = rewrite(node.where)
    elif isinstance(node, n.Delete):
        if node.where is not None:
            node.where = rewrite(node.where)
    elif isinstance(node, n.SetStmt):
        node.value = rewrite(node.value)
    # Leaf nodes (literals, refs, TableRef, ColumnDef, ...) need no rewiring.


def replace_node(root: n.Node, target: n.Node, replacement: n.Node) -> n.Node:
    """Splice *replacement* in place of *target* within *root*, in place.

    *target* must be a node obtained by walking *root* itself (identity
    comparison).  Returns the (possibly new) root: when *target* is the root
    the replacement is returned, otherwise *root* is mutated and returned.

    Typical pattern-application flow::

        tree = clone(seed)
        call = find_function_calls(tree)[k]
        replace_node(tree, call.args[0], boundary_literal)
    """
    if root is target:
        return replacement
    found = False

    def swap(node: n.Node) -> n.Node:
        nonlocal found
        if node is target:
            found = True
            return replacement
        return node

    for current in walk(root):
        if found:
            break
        for child in current.children():
            if child is target:
                _replace_children(current, swap)
                break
    if not found:
        raise ValueError("target node not found in tree")
    return root
