"""A permissive SQL lexer.

Built to tokenize queries from seven different dialects' regression suites,
so it accepts a superset of common SQL lexical syntax:

* single-quoted strings with ``''`` and backslash escapes,
* dollar-quoted strings (PostgreSQL ``$tag$ ... $tag$``),
* double-quoted and backtick-quoted identifiers,
* ``--`` line comments and ``/* ... */`` block comments (nested),
* integer / decimal / exponent numeric literals of arbitrary length
  (SOFT deliberately produces numbers far wider than any machine type),
* hex literals ``0x1F`` and PostgreSQL-style ``x'1F'``.
"""

from __future__ import annotations

from typing import Iterator, List

from .tokens import (
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


#: multi-char operators indexed by first character so the operator lexer
#: only tries candidates that can match (source order — longest-first
#: within a bucket — is preserved for greedy matching); the common
#: punctuation tokens ``( ) , ;`` have no bucket and skip the scan entirely
_MULTI_BY_FIRST = {}
for _sym in MULTI_CHAR_OPERATORS:
    _MULTI_BY_FIRST.setdefault(_sym[0], []).append(_sym)
_MULTI_BY_FIRST = {k: tuple(v) for k, v in _MULTI_BY_FIRST.items()}
del _sym


class LexError(ValueError):
    """Raised when the input cannot be tokenized."""

    def __init__(self, message: str, pos: int) -> None:
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


class Lexer:
    """Streaming tokenizer over a SQL source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.length = len(source)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        """Yield tokens until EOF (the EOF token itself is yielded last)."""
        while True:
            token = self.next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return

    def next_token(self) -> Token:
        """Return the next token, skipping whitespace and comments."""
        self._skip_trivia()
        if self.pos >= self.length:
            return Token(TokenKind.EOF, "", self.pos)

        ch = self.source[self.pos]
        if ch == "'":
            return self._lex_string()
        if ch == "$" and self._looks_like_dollar_quote():
            return self._lex_dollar_string()
        if ch in '"`':
            return self._lex_quoted_ident(ch)
        if ch.isdigit() or (ch == "." and self._peek_is_digit(1)):
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_ident()
        return self._lex_operator()

    # ------------------------------------------------------------------
    # trivia
    # ------------------------------------------------------------------
    def _skip_trivia(self) -> None:
        src, n = self.source, self.length
        while self.pos < n:
            ch = src[self.pos]
            if ch in " \t\r\n\f\v":
                self.pos += 1
            elif ch == "-" and src.startswith("--", self.pos):
                end = src.find("\n", self.pos)
                self.pos = n if end == -1 else end + 1
            elif ch == "/" and src.startswith("/*", self.pos):
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self.pos
        depth = 0
        src, n = self.source, self.length
        while self.pos < n:
            if src.startswith("/*", self.pos):
                depth += 1
                self.pos += 2
            elif src.startswith("*/", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise LexError("unterminated block comment", start)

    # ------------------------------------------------------------------
    # literals and identifiers
    # ------------------------------------------------------------------
    def _peek_is_digit(self, offset: int) -> bool:
        idx = self.pos + offset
        return idx < self.length and self.source[idx].isdigit()

    def _lex_string(self) -> Token:
        start = self.pos
        self.pos += 1  # opening quote
        out: List[str] = []
        src, n = self.source, self.length
        while self.pos < n:
            ch = src[self.pos]
            if ch == "'":
                if self.pos + 1 < n and src[self.pos + 1] == "'":
                    out.append("'")
                    self.pos += 2
                    continue
                self.pos += 1
                return Token(TokenKind.STRING, "".join(out), start, quoted=True)
            if ch == "\\" and self.pos + 1 < n:
                nxt = src[self.pos + 1]
                mapped = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
                          "\\": "\\", "'": "'", '"': '"'}.get(nxt)
                if mapped is not None:
                    out.append(mapped)
                    self.pos += 2
                    continue
            out.append(ch)
            self.pos += 1
        raise LexError("unterminated string literal", start)

    def _looks_like_dollar_quote(self) -> bool:
        # $tag$ where tag is alphanumeric-or-empty, e.g. $$ or $body$
        idx = self.pos + 1
        while idx < self.length and (self.source[idx].isalnum() or self.source[idx] == "_"):
            idx += 1
        return idx < self.length and self.source[idx] == "$"

    def _lex_dollar_string(self) -> Token:
        start = self.pos
        end_tag = self.source.index("$", self.pos + 1)
        tag = self.source[self.pos : end_tag + 1]  # includes both $ chars
        body_start = end_tag + 1
        close = self.source.find(tag, body_start)
        if close == -1:
            raise LexError("unterminated dollar-quoted string", start)
        self.pos = close + len(tag)
        return Token(TokenKind.STRING, self.source[body_start:close], start, quoted=True)

    def _lex_quoted_ident(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        out: List[str] = []
        src, n = self.source, self.length
        while self.pos < n:
            ch = src[self.pos]
            if ch == quote:
                if self.pos + 1 < n and src[self.pos + 1] == quote:
                    out.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                return Token(TokenKind.IDENT, "".join(out), start, quoted=True)
            out.append(ch)
            self.pos += 1
        raise LexError("unterminated quoted identifier", start)

    def _lex_number(self) -> Token:
        start = self.pos
        src, n = self.source, self.length
        if src.startswith(("0x", "0X"), self.pos):
            self.pos += 2
            while self.pos < n and src[self.pos] in "0123456789abcdefABCDEF":
                self.pos += 1
            return Token(TokenKind.INTEGER, src[start : self.pos], start)
        is_decimal = False
        while self.pos < n and src[self.pos].isdigit():
            self.pos += 1
        if self.pos < n and src[self.pos] == ".":
            # Do not consume '..' (range operator in some dialects).
            if not src.startswith("..", self.pos):
                is_decimal = True
                self.pos += 1
                while self.pos < n and src[self.pos].isdigit():
                    self.pos += 1
        if self.pos < n and src[self.pos] in "eE":
            save = self.pos
            self.pos += 1
            if self.pos < n and src[self.pos] in "+-":
                self.pos += 1
            if self.pos < n and src[self.pos].isdigit():
                is_decimal = True
                while self.pos < n and src[self.pos].isdigit():
                    self.pos += 1
            else:
                self.pos = save  # 'e' starts an identifier, not an exponent
        kind = TokenKind.DECIMAL if is_decimal else TokenKind.INTEGER
        return Token(kind, src[start : self.pos], start)

    def _lex_ident(self) -> Token:
        start = self.pos
        src, n = self.source, self.length
        while self.pos < n and (src[self.pos].isalnum() or src[self.pos] in "_$"):
            self.pos += 1
        text = src[start : self.pos]
        # MySQL-ish x'ab' / b'101' literals: treat as strings.
        if text.lower() in ("x", "b") and self.pos < n and src[self.pos] == "'":
            inner = self._lex_string()
            return Token(TokenKind.STRING, inner.text, start, quoted=True)
        return Token(TokenKind.IDENT, text, start)

    def _lex_operator(self) -> Token:
        start = self.pos
        src = self.source
        ch = src[start]
        bucket = _MULTI_BY_FIRST.get(ch)
        if bucket is not None:
            for sym in bucket:
                if src.startswith(sym, start):
                    self.pos += len(sym)
                    return Token(TokenKind.OPERATOR, sym, start)
        if ch in SINGLE_CHAR_OPERATORS:
            self.pos += 1
            return Token(TokenKind.OPERATOR, ch, start)
        raise LexError(f"unexpected character {ch!r}", start)


def tokenize(source: str) -> List[Token]:
    """Tokenize *source* into a list (EOF token included)."""
    return list(Lexer(source).tokens())
