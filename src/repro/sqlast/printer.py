"""Render AST nodes back to SQL text.

SOFT mutates trees and then serialises them for execution, so the printer
must round-trip everything the parser accepts.  Output uses conservative,
widely-accepted spellings (``CAST(x AS t)`` for ``convert``-style casts is
*not* normalised — the original style is preserved, because cast spelling is
itself part of the paper's Pattern 2.1 surface).
"""

from __future__ import annotations

from typing import List

from . import nodes as n


def _quote_string(value: str) -> str:
    return "'" + value.replace("\\", "\\\\").replace("'", "''") + "'"


def _type_to_sql(tn: n.TypeName) -> str:
    if tn.params:
        return f"{tn.name}({', '.join(str(p) for p in tn.params)})"
    return tn.name


def to_sql(node: n.Node) -> str:
    """Serialise *node* (expression or statement) to SQL text."""
    method = _DISPATCH.get(type(node))
    if method is None:
        raise TypeError(f"cannot print node of type {type(node).__name__}")
    return method(node)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
def _integer(node: n.IntegerLit) -> str:
    return node.text


def _decimal(node: n.DecimalLit) -> str:
    return node.text


def _string(node: n.StringLit) -> str:
    return _quote_string(node.value)


def _null(_: n.NullLit) -> str:
    return "NULL"


def _boolean(node: n.BooleanLit) -> str:
    return "TRUE" if node.value else "FALSE"


def _star(node: n.Star) -> str:
    return f"{node.qualifier}.*" if node.qualifier else "*"


def _param(node: n.ParamRef) -> str:
    return f"${node.index}" if node.index else "?"


def _column(node: n.ColumnRef) -> str:
    return ".".join(node.parts)


def _func(node: n.FuncCall) -> str:
    prefix = "DISTINCT " if node.distinct else ""
    args = ", ".join(to_sql(a) for a in node.args)
    return f"{node.name}({prefix}{args})"


def _unary(node: n.UnaryOp) -> str:
    if node.op.upper() == "NOT":
        return f"NOT ({to_sql(node.operand)})"
    return f"{node.op}({to_sql(node.operand)})"


def _binary(node: n.BinaryOp) -> str:
    return f"({to_sql(node.left)} {node.op} {to_sql(node.right)})"


def _cast(node: n.Cast) -> str:
    if node.style == "colons":
        return f"{_maybe_paren(node.operand)}::{_type_to_sql(node.type_name)}"
    if node.style == "convert":
        return f"CONVERT({to_sql(node.operand)}, {_type_to_sql(node.type_name)})"
    return f"CAST({to_sql(node.operand)} AS {_type_to_sql(node.type_name)})"


def _maybe_paren(expr: n.Expr) -> str:
    simple = (n.IntegerLit, n.DecimalLit, n.StringLit, n.NullLit, n.BooleanLit,
              n.ColumnRef, n.FuncCall, n.Cast, n.SubqueryExpr)
    text = to_sql(expr)
    return text if isinstance(expr, simple) else f"({text})"


def _case(node: n.CaseExpr) -> str:
    parts = ["CASE"]
    if node.operand is not None:
        parts.append(to_sql(node.operand))
    for cond, result in node.whens:
        parts.append(f"WHEN {to_sql(cond)} THEN {to_sql(result)}")
    if node.else_ is not None:
        parts.append(f"ELSE {to_sql(node.else_)}")
    parts.append("END")
    return " ".join(parts)


def _in(node: n.InExpr) -> str:
    items = ", ".join(to_sql(i) for i in node.items)
    word = "NOT IN" if node.negated else "IN"
    if len(node.items) == 1 and isinstance(node.items[0], n.SubqueryExpr):
        return f"{to_sql(node.expr)} {word} {items}"
    return f"{to_sql(node.expr)} {word} ({items})"


def _between(node: n.BetweenExpr) -> str:
    word = "NOT BETWEEN" if node.negated else "BETWEEN"
    return f"{to_sql(node.expr)} {word} {to_sql(node.low)} AND {to_sql(node.high)}"


def _like(node: n.LikeExpr) -> str:
    word = f"NOT {node.op}" if node.negated else node.op
    return f"{to_sql(node.expr)} {word} {to_sql(node.pattern)}"


def _isnull(node: n.IsNullExpr) -> str:
    word = "IS NOT NULL" if node.negated else "IS NULL"
    return f"{to_sql(node.expr)} {word}"


def _exists(node: n.ExistsExpr) -> str:
    word = "NOT EXISTS" if node.negated else "EXISTS"
    return f"{word} ({to_sql(node.subquery)})"


def _subquery(node: n.SubqueryExpr) -> str:
    return f"({to_sql(node.query)})"


def _row(node: n.RowExpr) -> str:
    items = ", ".join(to_sql(i) for i in node.items)
    return f"ROW({items})" if node.explicit else f"({items})"


def _array(node: n.ArrayExpr) -> str:
    return "[" + ", ".join(to_sql(i) for i in node.items) + "]"


def _map(node: n.MapExpr) -> str:
    pairs = ", ".join(
        f"{to_sql(k)}: {to_sql(v)}" for k, v in zip(node.keys, node.values)
    )
    return "MAP {" + pairs + "}"


def _interval(node: n.IntervalExpr) -> str:
    return f"INTERVAL {to_sql(node.value)} {node.unit}"


def _index(node: n.IndexExpr) -> str:
    return f"{_maybe_paren(node.base)}[{to_sql(node.index)}]"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
def _select_item(node: n.SelectItem) -> str:
    text = to_sql(node.expr)
    return f"{text} AS {node.alias}" if node.alias else text


def _table_ref(node: n.TableRef) -> str:
    return f"{node.name} {node.alias}" if node.alias else node.name


def _subquery_ref(node: n.SubqueryRef) -> str:
    text = f"({to_sql(node.query)})"
    return f"{text} {node.alias}" if node.alias else text


def _join(node: n.JoinRef) -> str:
    text = f"{to_sql(node.left)} {node.kind} JOIN {to_sql(node.right)}"
    if node.on is not None:
        text += f" ON {to_sql(node.on)}"
    return text


def _order_item(node: n.OrderItem) -> str:
    return to_sql(node.expr) + (" DESC" if node.descending else "")


def _select(node: n.Select) -> str:
    parts: List[str] = ["SELECT"]
    if node.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(i) for i in node.items))
    if node.from_:
        parts.append("FROM " + ", ".join(to_sql(f) for f in node.from_))
    if node.where is not None:
        parts.append("WHERE " + to_sql(node.where))
    if node.group_by:
        parts.append("GROUP BY " + ", ".join(to_sql(g) for g in node.group_by))
    if node.having is not None:
        parts.append("HAVING " + to_sql(node.having))
    if node.order_by:
        parts.append("ORDER BY " + ", ".join(_order_item(o) for o in node.order_by))
    if node.limit is not None:
        parts.append("LIMIT " + to_sql(node.limit))
    if node.offset is not None:
        parts.append("OFFSET " + to_sql(node.offset))
    return " ".join(parts)


def _setop(node: n.SetOp) -> str:
    word = node.op + (" ALL" if node.all else "")
    left = to_sql(node.left)
    right = to_sql(node.right)
    if isinstance(node.right, n.SetOp):
        right = f"({right})"
    return f"{left} {word} {right}"


def _column_def(node: n.ColumnDef) -> str:
    text = f"{node.name} {_type_to_sql(node.type_name)}"
    if node.constraints:
        text += " " + " ".join(c for c in node.constraints if c != "DEFAULT")
    return text


def _create_table(node: n.CreateTable) -> str:
    ine = "IF NOT EXISTS " if node.if_not_exists else ""
    cols = ", ".join(_column_def(c) for c in node.columns)
    return f"CREATE TABLE {ine}{node.name} ({cols})"


def _insert(node: n.Insert) -> str:
    cols = f" ({', '.join(node.columns)})" if node.columns else ""
    rows = ", ".join(
        "(" + ", ".join(to_sql(v) for v in row) + ")" for row in node.rows
    )
    return f"INSERT INTO {node.table}{cols} VALUES {rows}"


def _update(node: n.Update) -> str:
    sets = ", ".join(f"{col} = {to_sql(expr)}" for col, expr in node.assignments)
    text = f"UPDATE {node.table} SET {sets}"
    if node.where is not None:
        text += f" WHERE {to_sql(node.where)}"
    return text


def _delete(node: n.Delete) -> str:
    text = f"DELETE FROM {node.table}"
    if node.where is not None:
        text += f" WHERE {to_sql(node.where)}"
    return text


def _drop_table(node: n.DropTable) -> str:
    ie = "IF EXISTS " if node.if_exists else ""
    return f"DROP TABLE {ie}{node.name}"


def _set_stmt(node: n.SetStmt) -> str:
    return f"SET {node.name} = {to_sql(node.value)}"


def _explain(node: n.Explain) -> str:
    return f"EXPLAIN {to_sql(node.target)}"


def _raw(node: n.RawStatement) -> str:
    return node.text


_DISPATCH = {
    n.IntegerLit: _integer,
    n.DecimalLit: _decimal,
    n.StringLit: _string,
    n.NullLit: _null,
    n.BooleanLit: _boolean,
    n.Star: _star,
    n.ParamRef: _param,
    n.ColumnRef: _column,
    n.FuncCall: _func,
    n.UnaryOp: _unary,
    n.BinaryOp: _binary,
    n.Cast: _cast,
    n.CaseExpr: _case,
    n.InExpr: _in,
    n.BetweenExpr: _between,
    n.LikeExpr: _like,
    n.IsNullExpr: _isnull,
    n.ExistsExpr: _exists,
    n.SubqueryExpr: _subquery,
    n.RowExpr: _row,
    n.ArrayExpr: _array,
    n.MapExpr: _map,
    n.IntervalExpr: _interval,
    n.IndexExpr: _index,
    n.SelectItem: _select_item,
    n.TableRef: _table_ref,
    n.SubqueryRef: _subquery_ref,
    n.JoinRef: _join,
    n.OrderItem: _order_item,
    n.Select: _select,
    n.SetOp: _setop,
    n.ColumnDef: _column_def,
    n.CreateTable: _create_table,
    n.Insert: _insert,
    n.Update: _update,
    n.Delete: _delete,
    n.DropTable: _drop_table,
    n.SetStmt: _set_stmt,
    n.Explain: _explain,
    n.RawStatement: _raw,
}
