"""Statement executor: the execution stage of the simulated engines.

Implements the relational pipeline over the catalog: FROM resolution
(including joins and derived tables), WHERE filtering, grouping and
aggregation, HAVING, projection, set operations with implicit type
unification (the surface Pattern 2.2 attacks), ORDER BY / LIMIT, and the
DDL/DML statements PoCs need (CREATE TABLE / INSERT / DROP / SET).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sqlast import nodes as n
from ..sqlast.visitor import walk
from .casting import cast_value
from .catalog import Database, Table
from .context import ExecutionContext
from .errors import NameError_, ResourceError, SQLError, TypeError_, ValueError_
from .evaluator import Evaluator, RowScope, compare_values
from .values import NULL, SQLString, SQLValue, is_numeric

#: guard against cartesian blowups in generated queries
MAX_RESULT_ROWS = 100_000


@dataclass
class Result:
    """A query result set."""

    columns: List[str] = field(default_factory=list)
    rows: List[List[SQLValue]] = field(default_factory=list)

    def scalar(self) -> SQLValue:
        if not self.rows or not self.rows[0]:
            return NULL
        return self.rows[0][0]

    def rendered(self) -> List[List[str]]:
        return [[v.render() for v in row] for row in self.rows]


class Executor:
    """Executes parsed statements against a database."""

    def __init__(self, ctx: ExecutionContext, database: Database) -> None:
        self.ctx = ctx
        self.database = database
        ctx.execute_subquery = self._execute_subquery

    # ------------------------------------------------------------------
    def execute(self, stmt: n.Statement) -> Result:
        self.ctx.stage = "execute"
        if isinstance(stmt, (n.Select, n.SetOp)):
            columns, rows = self._run_select_like(stmt, outer_scope=None)
            return Result(columns, rows)
        if isinstance(stmt, n.CreateTable):
            self.database.create_table(stmt.name, stmt.columns, stmt.if_not_exists)
            return Result()
        if isinstance(stmt, n.Insert):
            return self._run_insert(stmt)
        if isinstance(stmt, n.Explain):
            return self._run_explain(stmt)
        if isinstance(stmt, n.Update):
            return self._run_update(stmt)
        if isinstance(stmt, n.Delete):
            return self._run_delete(stmt)
        if isinstance(stmt, n.DropTable):
            self.database.drop_table(stmt.name, stmt.if_exists)
            return Result()
        if isinstance(stmt, n.SetStmt):
            evaluator = Evaluator(self.ctx)
            value = evaluator.eval(stmt.value)
            self.ctx.set_config(stmt.name, value.render())
            return Result()
        raise TypeError_(f"cannot execute {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # subquery hook for the evaluator
    # ------------------------------------------------------------------
    def _execute_subquery(
        self, query: n.SelectLike, outer_scope: Optional[RowScope]
    ) -> List[List[SQLValue]]:
        _, rows = self._run_select_like(query, outer_scope)
        return rows

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------
    def _run_select_like(
        self, stmt: n.SelectLike, outer_scope: Optional[RowScope]
    ) -> Tuple[List[str], List[List[SQLValue]]]:
        if isinstance(stmt, n.SetOp):
            return self._run_setop(stmt, outer_scope)
        return self._run_select(stmt, outer_scope)

    def _run_setop(
        self, stmt: n.SetOp, outer_scope: Optional[RowScope]
    ) -> Tuple[List[str], List[List[SQLValue]]]:
        left_cols, left_rows = self._run_select_like(stmt.left, outer_scope)
        right_cols, right_rows = self._run_select_like(stmt.right, outer_scope)
        if left_rows and right_rows and len(left_rows[0]) != len(right_rows[0]):
            raise TypeError_(
                f"{stmt.op} branches have different column counts "
                f"({len(left_rows[0])} vs {len(right_rows[0])})"
            )
        right_rows = self._unify_setop_rows(left_rows, right_rows)
        if stmt.op == "UNION":
            combined = left_rows + right_rows
            if not stmt.all:
                combined = _distinct_rows(combined)
            return left_cols, combined
        left_keys = {_row_key(r) for r in left_rows}
        right_keys = {_row_key(r) for r in right_rows}
        if stmt.op == "EXCEPT":
            rows = [r for r in _distinct_rows(left_rows) if _row_key(r) not in right_keys]
            return left_cols, rows
        if stmt.op == "INTERSECT":
            rows = [r for r in _distinct_rows(left_rows) if _row_key(r) in right_keys]
            return left_cols, rows
        raise TypeError_(f"unsupported set operation {stmt.op}")

    def _unify_setop_rows(
        self, left_rows: List[List[SQLValue]], right_rows: List[List[SQLValue]]
    ) -> List[List[SQLValue]]:
        """Implicit cast of the right branch to the left branch's types.

        SQL requires both UNION branches to produce one common type per
        column; this coercion step is the implicit-cast surface the paper's
        Pattern 2.2 exploits.  Dialects may override per-family behaviour
        through ``ctx.cast_overrides``.
        """
        if not left_rows or not right_rows:
            return right_rows
        from ..sqlast import TypeName

        template = left_rows[0]
        unified: List[List[SQLValue]] = []
        for row in right_rows:
            new_row: List[SQLValue] = []
            for target, value in zip(template, row):
                if value.is_null or target.is_null:
                    new_row.append(value)
                    continue
                if target.type_name == value.type_name:
                    new_row.append(value)
                    continue
                if is_numeric(target) and is_numeric(value):
                    new_row.append(value)
                    continue
                try:
                    new_row.append(
                        cast_value(self.ctx, value, TypeName(target.type_name))
                    )
                except SQLError:
                    # fall back to the textual common type
                    new_row.append(SQLString(value.render()))
            unified.append(new_row)
        return unified

    def _run_select(
        self, stmt: n.Select, outer_scope: Optional[RowScope]
    ) -> Tuple[List[str], List[List[SQLValue]]]:
        scopes = self._resolve_from(stmt.from_, outer_scope)
        if stmt.where is not None:
            # fault-injection hook used by the logic-bug oracles
            # (repro.core.logic): a classic optimizer defect treats an
            # UNKNOWN predicate as TRUE
            null_as_true = self.ctx.get_config("faulty_where_null_as_true") == "1"
            filtered = []
            for scope in scopes:
                value = Evaluator(self.ctx, scope).eval(stmt.where)
                if value.is_null:
                    if null_as_true:
                        filtered.append(scope)
                    continue
                if value.as_bool():
                    filtered.append(scope)
            scopes = filtered

        has_aggregate = any(
            self._is_aggregate_call(e)
            for item in stmt.items
            for e in walk(item.expr)
        ) or (
            stmt.having is not None
            and any(self._is_aggregate_call(e) for e in walk(stmt.having))
        )

        columns = self._output_names(stmt, scopes)
        rows: List[List[SQLValue]] = []
        row_scopes: List[RowScope] = []
        governor = self.ctx.governor
        if stmt.group_by or has_aggregate:
            groups = self._group_rows(stmt, scopes)
            for group in groups:
                representative = group[0] if group else RowScope()
                evaluator = Evaluator(self.ctx, representative, group_rows=group)
                if stmt.having is not None:
                    keep = evaluator.eval(stmt.having)
                    if keep.is_null or not keep.as_bool():
                        continue
                rows.append(self._project(stmt, evaluator, representative))
                row_scopes.append(representative)
                if governor is not None:
                    governor.on_rows()
        else:
            for scope in scopes:
                evaluator = Evaluator(self.ctx, scope)
                rows.append(self._project(stmt, evaluator, scope))
                row_scopes.append(scope)
                if governor is not None:
                    governor.on_rows()
                if len(rows) > MAX_RESULT_ROWS:
                    raise ResourceError("result set exceeds row limit")

        if stmt.distinct:
            rows = _distinct_rows(rows)
            row_scopes = row_scopes[: len(rows)]
        if stmt.order_by:
            rows = self._order(stmt, columns, rows, row_scopes)
        if stmt.offset is not None:
            offset = self._eval_limit(stmt.offset)
            rows = rows[offset:]
        if stmt.limit is not None:
            limit = self._eval_limit(stmt.limit)
            rows = rows[:limit]
        return columns, rows

    def _eval_limit(self, expr: n.Expr) -> int:
        value = Evaluator(self.ctx).eval(expr)
        if value.is_null:
            return MAX_RESULT_ROWS
        from .values import numeric_as_decimal

        amount = int(numeric_as_decimal(value))
        if amount < 0:
            raise ValueError_("LIMIT/OFFSET must be non-negative")
        return amount

    def _is_aggregate_call(self, expr: n.Node) -> bool:
        if not isinstance(expr, n.FuncCall):
            return False
        try:
            return self.ctx.registry.lookup(expr.name).is_aggregate
        except SQLError:
            return False

    # -- FROM resolution ----------------------------------------------------
    def _resolve_from(
        self, sources: List[n.Node], outer_scope: Optional[RowScope]
    ) -> List[RowScope]:
        if not sources:
            return [RowScope(parent=outer_scope)]
        scope_sets: List[List[Dict[str, SQLValue]]] = []
        for source in sources:
            scope_sets.append(self._resolve_source(source, outer_scope))
        # cartesian product across comma-separated sources
        governor = self.ctx.governor
        combined: List[Dict[str, SQLValue]] = [{}]
        for scope_set in scope_sets:
            next_combined = []
            for base in combined:
                for bindings in scope_set:
                    merged = dict(base)
                    merged.update(bindings)
                    next_combined.append(merged)
                    if governor is not None:
                        governor.on_rows()
                    if len(next_combined) > MAX_RESULT_ROWS:
                        raise ResourceError("join produces too many rows")
            combined = next_combined
        # binder output keys are already lowercased (see _bind_row)
        return [
            RowScope(bindings, parent=outer_scope, lowered=True)
            for bindings in combined
        ]

    def _resolve_source(
        self, source: n.Node, outer_scope: Optional[RowScope]
    ) -> List[Dict[str, SQLValue]]:
        if isinstance(source, n.TableRef):
            table = self.database.get_table(source.name)
            alias = source.alias or source.name
            return [self._bind_row(table, alias, row) for row in table.rows]
        if isinstance(source, n.SubqueryRef):
            columns, rows = self._run_select_like(source.query, outer_scope)
            alias = source.alias or "sq"
            out = []
            for row in rows:
                bindings: Dict[str, SQLValue] = {}
                for name, value in zip(columns, row):
                    bindings[name.lower()] = value
                    bindings[f"{alias}.{name}".lower()] = value
                out.append(bindings)
            return out
        if isinstance(source, n.JoinRef):
            return self._resolve_join(source, outer_scope)
        raise TypeError_(f"unsupported FROM source {type(source).__name__}")

    def _bind_row(self, table: Table, alias: str, row: List[SQLValue]) -> Dict[str, SQLValue]:
        bindings: Dict[str, SQLValue] = {}
        for column, value in zip(table.columns, row):
            bindings[column.name.lower()] = value
            bindings[f"{alias}.{column.name}".lower()] = value
        return bindings

    def _resolve_join(
        self, join: n.JoinRef, outer_scope: Optional[RowScope]
    ) -> List[Dict[str, SQLValue]]:
        left_rows = self._resolve_source(join.left, outer_scope)
        right_rows = self._resolve_source(join.right, outer_scope)
        out: List[Dict[str, SQLValue]] = []
        null_right = (
            {key: NULL for bindings in right_rows[:1] for key in bindings}
            if right_rows
            else {}
        )
        governor = self.ctx.governor
        for left in left_rows:
            matched = False
            for right in right_rows:
                merged = dict(left)
                merged.update(right)
                if join.on is not None:
                    value = Evaluator(
                        self.ctx,
                        RowScope(merged, parent=outer_scope, lowered=True),
                    ).eval(join.on)
                    if value.is_null or not value.as_bool():
                        continue
                matched = True
                out.append(merged)
                if governor is not None:
                    governor.on_rows()
                if len(out) > MAX_RESULT_ROWS:
                    raise ResourceError("join produces too many rows")
            if not matched and join.kind == "LEFT":
                merged = dict(left)
                merged.update(null_right)
                out.append(merged)
        return out

    # -- grouping -------------------------------------------------------------
    def _group_rows(self, stmt: n.Select, scopes: List[RowScope]) -> List[List[RowScope]]:
        if not stmt.group_by:
            return [scopes] if scopes else [[]]
        groups: Dict[Tuple, List[RowScope]] = {}
        for scope in scopes:
            evaluator = Evaluator(self.ctx, scope)
            key = tuple(evaluator.eval(g).sort_key() for g in stmt.group_by)
            groups.setdefault(key, []).append(scope)
        return list(groups.values())

    # -- projection ------------------------------------------------------------
    def _output_names(self, stmt: n.Select, scopes: List[RowScope]) -> List[str]:
        names: List[str] = []
        for idx, item in enumerate(stmt.items):
            if isinstance(item.expr, n.Star):
                if scopes:
                    names.extend(
                        name for name in scopes[0].columns if "." not in name
                    )
                continue
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, n.ColumnRef):
                names.append(item.expr.name)
            else:
                names.append(f"col{idx + 1}")
        return names or ["col1"]

    def _project(
        self, stmt: n.Select, evaluator: Evaluator, scope: RowScope
    ) -> List[SQLValue]:
        row: List[SQLValue] = []
        for item in stmt.items:
            if isinstance(item.expr, n.Star):
                if scope is None or not scope.columns:
                    raise NameError_("SELECT * with no FROM clause")
                row.extend(
                    value
                    for name, value in scope.columns.items()
                    if "." not in name
                )
                continue
            row.append(evaluator.eval(item.expr))
        return row

    # -- ordering ------------------------------------------------------------
    def _order(
        self,
        stmt: n.Select,
        columns: List[str],
        rows: List[List[SQLValue]],
        row_scopes: List[RowScope],
    ) -> List[List[SQLValue]]:
        import functools

        def sort_value(index: int, item: n.OrderItem) -> SQLValue:
            row = rows[index]
            # ORDER BY <position> and ORDER BY <alias> conveniences
            if isinstance(item.expr, n.IntegerLit):
                position = item.expr.value
                if 1 <= position <= len(row):
                    return row[position - 1]
                raise ValueError_(f"ORDER BY position {position} out of range")
            if isinstance(item.expr, n.ColumnRef) and item.expr.name in columns:
                return row[columns.index(item.expr.name)]
            parent = row_scopes[index] if index < len(row_scopes) else None
            scope = RowScope(dict(zip(columns, row)), parent=parent)
            return Evaluator(self.ctx, scope).eval(item.expr)

        def cmp(a: int, b: int) -> int:
            for item in stmt.order_by:
                va, vb = sort_value(a, item), sort_value(b, item)
                if va.is_null and vb.is_null:
                    continue
                if va.is_null:
                    return -1 if not item.descending else 1
                if vb.is_null:
                    return 1 if not item.descending else -1
                c = compare_values(self.ctx, va, vb)
                if c:
                    return -c if item.descending else c
            return 0

        order = sorted(range(len(rows)), key=functools.cmp_to_key(cmp))
        return [rows[i] for i in order]

    # -- EXPLAIN ------------------------------------------------------------
    def _run_explain(self, stmt: n.Explain) -> Result:
        """Render the engine's three-stage plan for the target statement.

        The plan exposes the same stages the paper's Finding 1 classifies
        crashes into: the parsed tree, the optimizer's rewrite (with the
        constant-folding delta), and the executor's pipeline steps.
        """
        from ..sqlast import to_sql
        from .optimizer import optimize_statement

        lines: List[str] = []
        parsed_sql = to_sql(stmt.target)
        lines.append(f"parse:    {parsed_sql}")
        optimized = optimize_statement(self.ctx, stmt.target)
        optimized_sql = to_sql(optimized)
        delta = "" if optimized_sql == parsed_sql else "  [rewritten]"
        lines.append(f"optimize: {optimized_sql}{delta}")
        if isinstance(optimized, n.Select):
            steps: List[str] = []
            if optimized.from_:
                sources = ", ".join(to_sql(f) for f in optimized.from_)
                steps.append(f"scan({sources})")
            else:
                steps.append("scan(<virtual single row>)")
            if optimized.where is not None:
                steps.append(f"filter({to_sql(optimized.where)})")
            if optimized.group_by or any(
                self._is_aggregate_call(e)
                for item in optimized.items
                for e in walk(item.expr)
            ):
                keys = ", ".join(to_sql(g) for g in optimized.group_by) or "<all rows>"
                steps.append(f"aggregate(keys: {keys})")
            if optimized.having is not None:
                steps.append(f"having({to_sql(optimized.having)})")
            steps.append(
                "project(" + ", ".join(to_sql(i.expr) for i in optimized.items) + ")"
            )
            if optimized.order_by:
                steps.append("sort(" + ", ".join(
                    to_sql(o.expr) for o in optimized.order_by) + ")")
            if optimized.limit is not None:
                steps.append(f"limit({to_sql(optimized.limit)})")
            lines.append("execute:  " + " -> ".join(steps))
        else:
            lines.append(f"execute:  {type(optimized).__name__.lower()}")
        return Result(columns=["plan"], rows=[[SQLString(line)] for line in lines])

    # -- UPDATE / DELETE ------------------------------------------------------
    def _run_update(self, stmt: n.Update) -> Result:
        table = self.database.get_table(stmt.table)
        indexes = [table.column_index(col) for col, _ in stmt.assignments]
        updated = 0
        for row in table.rows:
            scope = RowScope(self._bind_row(table, stmt.table, row), lowered=True)
            if stmt.where is not None:
                keep = Evaluator(self.ctx, scope).eval(stmt.where)
                if keep.is_null or not keep.as_bool():
                    continue
            for index, (_, expr) in zip(indexes, stmt.assignments):
                value = Evaluator(self.ctx, scope).eval(expr)
                column = table.columns[index]
                if not value.is_null:
                    value = cast_value(self.ctx, value, column.type_name)
                elif column.not_null:
                    raise ValueError_(f"column {column.name!r} is NOT NULL")
                row[index] = value
            updated += 1
        self.ctx.stats["last_result_rows"] = updated
        return Result()

    def _run_delete(self, stmt: n.Delete) -> Result:
        table = self.database.get_table(stmt.table)
        kept: List[List[SQLValue]] = []
        deleted = 0
        for row in table.rows:
            if stmt.where is not None:
                scope = RowScope(self._bind_row(table, stmt.table, row), lowered=True)
                keep = Evaluator(self.ctx, scope).eval(stmt.where)
                if keep.is_null or not keep.as_bool():
                    kept.append(row)
                    continue
            deleted += 1
        if stmt.where is None:
            deleted = len(table.rows)
            kept = []
        table.rows = kept
        self.ctx.stats["last_result_rows"] = deleted
        return Result()

    # -- INSERT ------------------------------------------------------------
    def _run_insert(self, stmt: n.Insert) -> Result:
        table = self.database.get_table(stmt.table)
        if stmt.columns:
            indexes = [table.column_index(c) for c in stmt.columns]
        else:
            indexes = list(range(len(table.columns)))
        evaluator = Evaluator(self.ctx)
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(indexes):
                raise ValueError_(
                    f"INSERT row has {len(row_exprs)} values for {len(indexes)} columns"
                )
            full_row: List[SQLValue] = [NULL] * len(table.columns)
            for index, expr in zip(indexes, row_exprs):
                value = evaluator.eval(expr)
                column = table.columns[index]
                if not value.is_null:
                    value = cast_value(self.ctx, value, column.type_name)
                full_row[index] = value
            table.insert_row(full_row)
        return Result()


def _row_key(row: List[SQLValue]) -> Tuple:
    return tuple(v.sort_key() for v in row)


def _distinct_rows(rows: List[List[SQLValue]]) -> List[List[SQLValue]]:
    seen = set()
    out = []
    for row in rows:
        key = _row_key(row)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out
