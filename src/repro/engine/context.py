"""Per-connection execution context for the simulated engines.

The context bundles the process-level resources (heap, stack), the dialect's
limits and configuration, the function registry, and the instrumentation
channels (triggered-function set, coverage tracker).  One context lives for
the lifetime of a simulated server process: a crash kills the process and
the next connection gets a fresh context.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from .casting import TypeLimits
from .memory import CallStack, Heap

if TYPE_CHECKING:  # pragma: no cover
    from ..sqlast import TypeName
    from .coverage import CoverageTracker
    from .functions.registry import FunctionRegistry
    from .values import SQLValue

CastOverride = Callable[["ExecutionContext", "SQLValue", "TypeName"], Optional["SQLValue"]]


class ExecutionContext:
    """Mutable state for one simulated server process."""

    def __init__(
        self,
        registry: "FunctionRegistry",
        limits: Optional[TypeLimits] = None,
        config: Optional[Dict[str, str]] = None,
        stack_depth: int = 256,
        seed: int = 0,
    ) -> None:
        self.registry = registry
        self.limits = limits if limits is not None else TypeLimits()
        self.config: Dict[str, str] = dict(config or {})
        self.heap = Heap()
        self.stack = CallStack(max_depth=stack_depth)
        self.seed = seed
        self._rng = random.Random(seed)
        #: statement-keyed seed not yet applied to :attr:`_rng` (reseeding a
        #: Mersenne Twister costs ~10µs; most statements never draw, so the
        #: reseed is deferred until the first :attr:`rng` access)
        self._rng_pending_seed: Optional[int] = None
        #: processing stage for crash attribution: parse | optimize | execute
        self.stage = "execute"
        #: names of built-in functions whose implementation actually ran
        self.triggered_functions: Set[str] = set()
        #: miscellaneous counters (queries, rows, casts, ...)
        self.stats: Counter = Counter()
        #: per-family cast overrides installed by dialects (flawed paths)
        self.cast_overrides: Dict[str, CastOverride] = {}
        #: optional coverage tracker (installed by the harness)
        self.coverage: Optional["CoverageTracker"] = None
        #: callback used by the evaluator to run scalar subqueries
        self.execute_subquery: Optional[Callable] = None
        #: name of the function currently being evaluated (crash attribution)
        self.current_function: Optional[str] = None
        #: optional resource governor (duck-typed; installed by the harness
        #: via :meth:`attach_governor` — the engine never imports it)
        self.governor = None
        #: True while any ``seq::`` config key may exist; lets
        #: :meth:`clear_sequence_state` skip its config scan on the hot path
        self._has_sequence_state = any(
            k.startswith("seq::") for k in self.config
        )

    # ------------------------------------------------------------------
    def attach_governor(self, governor) -> None:
        """Install a resource governor on this context and its resources.

        The heap and call stack get their own references so allocation and
        recursion accounting need no back-pointer to the context.
        """
        self.governor = governor
        self.heap.governor = governor
        self.stack.governor = governor

    # ------------------------------------------------------------------
    def note_function(self, name: str) -> None:
        self.triggered_functions.add(name.lower())
        self.stats["function_calls"] += 1

    def reset_query_state(self) -> None:
        """Per-query cleanup (stack unwinds, stage resets)."""
        self.stack.reset()
        self.stage = "execute"
        self.current_function = None

    @property
    def rng(self) -> random.Random:
        """The statement-keyed RNG; applies any pending reseed first."""
        pending = self._rng_pending_seed
        if pending is not None:
            self._rng_pending_seed = None
            self._rng.seed(pending)
        return self._rng

    def reseed_statement_rng(self, sql: str) -> None:
        """Reseed :attr:`rng` from ``(context seed, statement text)``.

        RAND()/UUID() draw from this stream.  Keying it to the statement —
        rather than letting state accumulate across statements — makes
        rng-dependent results a pure function of the statement, so crash
        reconfirmation replays them faithfully and parallel shard workers
        observe the same values as a serial run.  crc32 (not ``hash()``):
        string hashing is salted per process.  The (costly) Mersenne
        Twister reseed itself is lazy — it happens on the first draw, and
        statements that never draw skip it entirely.
        """
        digest = zlib.crc32(sql.encode("utf-8", "surrogatepass"))
        self._rng_pending_seed = ((self.seed + 1) << 32) ^ digest

    def clear_sequence_state(self) -> None:
        """Drop NEXTVAL/SETVAL sequence counters (``seq::`` config keys).

        Sequences are session state: a plain ``SELECT NEXTVAL('s')`` mutates
        it, and a later ``CURRVAL('s')`` observes it.  The fuzzing harness
        clears it between test cases (see ``Runner._execute``) so every
        statement's outcome is a pure function of the statement itself —
        raw :class:`Connection` users keep ordinary session semantics.
        """
        if not self._has_sequence_state:
            return
        for key in [k for k in self.config if k.startswith("seq::")]:
            del self.config[key]
        self._has_sequence_state = False

    def get_config(self, name: str, default: str = "") -> str:
        return self.config.get(name.lower(), default)

    def set_config(self, name: str, value: str) -> None:
        key = name.lower()
        if key.startswith("seq::"):
            self._has_sequence_state = True
        self.config[key] = value
