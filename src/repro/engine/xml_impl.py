"""Minimal XML implementation for the engines' XML functions.

Covers the subset the paper's XML bugs exercise (MySQL ``UpdateXML`` /
``ExtractValue``): elements, attributes, text nodes, and a small XPath
subset (``/a/b``, ``/a/b[1]``, ``//b``, ``/a/@attr``).  Parsing recurses
through the engine's simulated call stack so deeply nested input can blow
the stack in dialects that skip the depth check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .errors import ValueError_
from .memory import CallStack

DEFAULT_MAX_DEPTH = 128


@dataclass
class XmlNode:
    """An XML element."""

    tag: str
    attributes: List[Tuple[str, str]] = field(default_factory=list)
    children: List["XmlNode"] = field(default_factory=list)
    text: str = ""

    def serialize(self) -> str:
        attrs = "".join(f' {k}="{v}"' for k, v in self.attributes)
        inner = self.text + "".join(c.serialize() for c in self.children)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"

    def all_text(self) -> str:
        return self.text + "".join(c.all_text() for c in self.children)

    def find_attr(self, name: str) -> Optional[str]:
        for key, value in self.attributes:
            if key == name:
                return value
        return None


@dataclass
class XmlDocument:
    """Document wrapper: XML fragments may have several roots."""

    roots: List[XmlNode] = field(default_factory=list)

    def serialize(self) -> str:
        return "".join(r.serialize() for r in self.roots)

    def all_text(self) -> str:
        return "".join(r.all_text() for r in self.roots)


class XmlParser:
    """Recursive-descent parser for the XML subset."""

    def __init__(
        self,
        text: str,
        stack: Optional[CallStack] = None,
        max_depth: Optional[int] = DEFAULT_MAX_DEPTH,
        function: Optional[str] = None,
    ) -> None:
        self.text = text
        self.pos = 0
        self.stack = stack if stack is not None else CallStack()
        self.max_depth = max_depth
        self.depth = 0
        self.function = function

    def parse(self) -> XmlDocument:
        doc = XmlDocument()
        self._skip_ws()
        while self.pos < len(self.text):
            if self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end == -1:
                    raise self._fail("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    raise self._fail("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<", self.pos):
                doc.roots.append(self._parse_element())
            else:
                raise self._fail("content outside of a root element")
            self._skip_ws()
        if not doc.roots:
            raise self._fail("no root element")
        return doc

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> ValueError_:
        return ValueError_(f"invalid XML: {message} at offset {self.pos}")

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def _parse_name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-.:"
        ):
            self.pos += 1
        if self.pos == start:
            raise self._fail("expected a name")
        return self.text[start : self.pos]

    def _parse_element(self) -> XmlNode:
        self.depth += 1
        if self.max_depth is not None and self.depth > self.max_depth:
            raise ValueError_(f"XML nested too deeply (> {self.max_depth})")
        self.stack.push("xml_parse_element", function=self.function)
        try:
            assert self.text[self.pos] == "<"
            self.pos += 1
            tag = self._parse_name()
            node = XmlNode(tag)
            self._skip_ws()
            while self.pos < len(self.text) and self.text[self.pos] not in "/>":
                attr = self._parse_name()
                self._skip_ws()
                if self.pos < len(self.text) and self.text[self.pos] == "=":
                    self.pos += 1
                    self._skip_ws()
                    quote = self.text[self.pos] if self.pos < len(self.text) else ""
                    if quote not in "'\"":
                        raise self._fail("expected quoted attribute value")
                    end = self.text.find(quote, self.pos + 1)
                    if end == -1:
                        raise self._fail("unterminated attribute value")
                    node.attributes.append((attr, self.text[self.pos + 1 : end]))
                    self.pos = end + 1
                else:
                    node.attributes.append((attr, ""))
                self._skip_ws()
            if self.text.startswith("/>", self.pos):
                self.pos += 2
                return node
            if self.pos >= len(self.text):
                raise self._fail(f"unterminated start tag <{tag}>")
            self.pos += 1  # '>'
            # children / text until matching close tag
            while True:
                if self.pos >= len(self.text):
                    raise self._fail(f"missing close tag for <{tag}>")
                if self.text.startswith("</", self.pos):
                    self.pos += 2
                    close = self._parse_name()
                    if close != tag:
                        raise self._fail(f"mismatched close tag </{close}> for <{tag}>")
                    self._skip_ws()
                    if self.pos >= len(self.text) or self.text[self.pos] != ">":
                        raise self._fail("malformed close tag")
                    self.pos += 1
                    return node
                if self.text.startswith("<!--", self.pos):
                    end = self.text.find("-->", self.pos)
                    if end == -1:
                        raise self._fail("unterminated comment")
                    self.pos = end + 3
                elif self.text.startswith("<", self.pos):
                    node.children.append(self._parse_element())
                else:
                    end = self.text.find("<", self.pos)
                    if end == -1:
                        raise self._fail(f"missing close tag for <{tag}>")
                    node.text += self.text[self.pos : end]
                    self.pos = end
        finally:
            self.depth -= 1
            self.stack.pop()


def xml_parse(
    text: str,
    stack: Optional[CallStack] = None,
    max_depth: Optional[int] = DEFAULT_MAX_DEPTH,
    function: Optional[str] = None,
) -> XmlDocument:
    return XmlParser(text, stack=stack, max_depth=max_depth, function=function).parse()


# ---------------------------------------------------------------------------
# XPath subset
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class XPathStep:
    tag: str              # element name or '*'
    index: Optional[int]  # 1-based positional predicate, None = all
    descend: bool         # True for '//' steps
    attribute: bool = False


def parse_xpath(path: str) -> List[XPathStep]:
    """Parse ``/a/b[1]``, ``//c``, ``/a/@attr`` into steps."""
    if not path.startswith("/"):
        raise ValueError_(f"XPath must start with '/': {path!r}")
    steps: List[XPathStep] = []
    pos = 0
    while pos < len(path):
        descend = False
        if path.startswith("//", pos):
            descend = True
            pos += 2
        elif path.startswith("/", pos):
            pos += 1
        else:
            raise ValueError_(f"expected '/' in XPath at {pos}")
        attribute = False
        if pos < len(path) and path[pos] == "@":
            attribute = True
            pos += 1
        start = pos
        while pos < len(path) and (path[pos].isalnum() or path[pos] in "_-.*"):
            pos += 1
        tag = path[start:pos]
        if not tag:
            raise ValueError_(f"empty step in XPath at {pos}")
        index: Optional[int] = None
        if pos < len(path) and path[pos] == "[":
            end = path.find("]", pos)
            if end == -1:
                raise ValueError_("unterminated predicate in XPath")
            try:
                index = int(path[pos + 1 : end])
            except ValueError:
                raise ValueError_(f"unsupported XPath predicate {path[pos + 1:end]!r}")
            pos = end + 1
        steps.append(XPathStep(tag, index, descend, attribute))
    return steps


def _descendants(node: XmlNode) -> List[XmlNode]:
    out = [node]
    for child in node.children:
        out.extend(_descendants(child))
    return out


def eval_xpath(doc: XmlDocument, steps: List[XPathStep]) -> List[Union[XmlNode, str]]:
    """Evaluate steps; returns matched nodes (or attribute strings)."""
    current: List[XmlNode] = list(doc.roots)
    virtual_root = XmlNode("", children=list(doc.roots))
    contexts = [virtual_root]
    for step_no, step in enumerate(steps):
        if step.attribute:
            values = [
                v
                for node in contexts
                for v in ([node.find_attr(step.tag)] if node.find_attr(step.tag) is not None else [])
            ]
            return values  # attribute step must be last
        matched: List[XmlNode] = []
        for node in contexts:
            pool = _descendants(node)[1:] if step.descend else node.children
            candidates = [c for c in pool if step.tag == "*" or c.tag == step.tag]
            if step.index is not None:
                if 1 <= step.index <= len(candidates):
                    matched.append(candidates[step.index - 1])
            else:
                matched.extend(candidates)
        contexts = matched
    return contexts
