"""Reference implementations for the inet, condition, casting, system, and
sequence function families."""

from __future__ import annotations

import decimal
from typing import List

from ..casting import parse_inet_text
from ..context import ExecutionContext
from ..errors import DivisionByZeroError_, TypeError_, ValueError_
from ..values import (
    NULL,
    SQLBytes,
    SQLInet,
    SQLInteger,
    SQLRow,
    SQLString,
    SQLValue,
    is_numeric,
    numeric_as_decimal,
)
from .helpers import (
    need_decimal,
    need_int,
    need_string,
    null_propagating,
    out_bool,
    out_int,
    out_string,
    reject_star,
)
from .registry import FunctionRegistry


def register_inet(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("inet_aton", "inet", min_args=1, max_args=1,
            signature="INET_ATON(str)", doc="IPv4 text to integer.",
            examples=["INET_ATON('127.0.0.1')"])
    @null_propagating("inet_aton")
    def fn_inet_aton(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        try:
            addr = parse_inet_text(need_string(args[0], "inet_aton"))
        except ValueError_:
            return NULL
        if addr.is_v6:
            return NULL
        return out_int(int.from_bytes(addr.packed, "big"))

    @define("inet_ntoa", "inet", min_args=1, max_args=1,
            signature="INET_NTOA(n)", doc="Integer to IPv4 text.",
            examples=["INET_NTOA(2130706433)"])
    @null_propagating("inet_ntoa")
    def fn_inet_ntoa(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        n = need_int(args[0], "inet_ntoa")
        if not 0 <= n <= 0xFFFFFFFF:
            return NULL
        return out_string(SQLInet(n.to_bytes(4, "big")).render(), "inet_ntoa")

    @define("inet6_aton", "inet", min_args=1, max_args=1,
            signature="INET6_ATON(str)", doc="IPv4/IPv6 text to packed bytes.",
            examples=["INET6_ATON('::1')", "INET6_ATON('255.255.255.255')"])
    @null_propagating("inet6_aton")
    def fn_inet6_aton(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        try:
            addr = parse_inet_text(need_string(args[0], "inet6_aton"))
        except ValueError_:
            return NULL
        return SQLBytes(addr.packed)

    @define("inet6_ntoa", "inet", min_args=1, max_args=1,
            signature="INET6_NTOA(bytes)", doc="Packed bytes to address text.",
            examples=["INET6_NTOA(INET6_ATON('::1'))"])
    @null_propagating("inet6_ntoa")
    def fn_inet6_ntoa(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = args[0]
        if isinstance(value, SQLInet):
            return out_string(value.render(), "inet6_ntoa")
        if isinstance(value, SQLBytes) and len(value.value) in (4, 16):
            return out_string(SQLInet(value.value).render(), "inet6_ntoa")
        return NULL

    @define("is_ipv4", "inet", min_args=1, max_args=1,
            signature="IS_IPV4(str)", doc="IPv4 syntax test.",
            examples=["IS_IPV4('1.2.3.4')"])
    @null_propagating("is_ipv4")
    def fn_is_ipv4(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        try:
            addr = parse_inet_text(need_string(args[0], "is_ipv4"))
        except ValueError_:
            return out_bool(False)
        return out_bool(not addr.is_v6)

    @define("is_ipv6", "inet", min_args=1, max_args=1,
            signature="IS_IPV6(str)", doc="IPv6 syntax test.",
            examples=["IS_IPV6('::1')"])
    @null_propagating("is_ipv6")
    def fn_is_ipv6(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        try:
            addr = parse_inet_text(need_string(args[0], "is_ipv6"))
        except ValueError_:
            return out_bool(False)
        return out_bool(addr.is_v6)


def register_condition(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("coalesce", "condition", min_args=1,
            signature="COALESCE(a, b, ...)", doc="First non-NULL argument.",
            examples=["COALESCE(NULL, 2)"])
    def fn_coalesce(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "coalesce")
        for arg in args:
            if not arg.is_null:
                return arg
        return NULL

    @define("ifnull", "condition", min_args=2, max_args=2,
            signature="IFNULL(a, b)", doc="b when a is NULL, else a.",
            examples=["IFNULL(NULL, 'x')"])
    def fn_ifnull(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "ifnull")
        return args[1] if args[0].is_null else args[0]

    reg.alias("ifnull", "nvl")

    @define("nullif", "condition", min_args=2, max_args=2,
            signature="NULLIF(a, b)", doc="NULL when a = b, else a.",
            examples=["NULLIF(1, 1)", "NULLIF('FF', 0)"])
    def fn_nullif(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..evaluator import compare_values

        reject_star(args, "nullif")
        if args[0].is_null or args[1].is_null:
            return args[0]
        try:
            if compare_values(ctx, args[0], args[1]) == 0:
                return NULL
        except TypeError_:
            pass
        return args[0]

    @define("if", "condition", min_args=3, max_args=3,
            signature="IF(cond, a, b)", doc="a when cond is true, else b.",
            examples=["IF(1 > 0, 'yes', 'no')"])
    def fn_if(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "if")
        cond = args[0]
        truthy = (not cond.is_null) and cond.as_bool()
        return args[1] if truthy else args[2]

    reg.alias("if", "iif")

    @define("isnull", "condition", min_args=1, max_args=1,
            signature="ISNULL(a)", doc="1 when a is NULL.",
            examples=["ISNULL(NULL)"])
    def fn_isnull(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "isnull")
        return out_int(1 if args[0].is_null else 0)

    @define("interval", "condition", min_args=2,
            signature="INTERVAL(n, n1, n2, ...)",
            doc="Index of the last argument not larger than n.",
            examples=["INTERVAL(3, 1, 2, 5)"])
    def fn_interval(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "interval")
        if args[0].is_null:
            return out_int(-1)
        # arguments must support ordering; the reference build checks first
        for arg in args:
            if isinstance(arg, SQLRow):
                raise TypeError_("INTERVAL arguments must be comparable scalars")
        needle = need_decimal(args[0], "interval")
        index = 0
        for candidate in args[1:]:
            if candidate.is_null:
                break
            if need_decimal(candidate, "interval") > needle:
                break
            index += 1
        return out_int(index)

    @define("choose", "condition", min_args=2,
            signature="CHOOSE(n, a, b, ...)", doc="The n-th following argument.",
            examples=["CHOOSE(2, 'a', 'b')"])
    def fn_choose(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "choose")
        if args[0].is_null:
            return NULL
        index = need_int(args[0], "choose")
        if 1 <= index < len(args):
            return args[index]
        return NULL


def register_casting(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("to_char", "casting", min_args=1, max_args=2,
            signature="TO_CHAR(value[, format])", doc="Render a value as text.",
            examples=["TO_CHAR(123.45)"])
    @null_propagating("to_char")
    def fn_to_char(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(args[0].render(), "to_char")

    reg.alias("to_char", "tostring", "to_varchar")

    @define("to_number", "casting", min_args=1, max_args=2,
            signature="TO_NUMBER(str)", doc="Parse text as a number.",
            examples=["TO_NUMBER('123.45')"])
    @null_propagating("to_number")
    def fn_to_number(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..values import SQLDecimal

        text = need_string(args[0], "to_number").strip()
        try:
            return SQLDecimal(decimal.Decimal(text or "0"))
        except decimal.InvalidOperation:
            raise ValueError_(f"TO_NUMBER: invalid number {text!r}")

    @define("to_date", "casting", min_args=1, max_args=2,
            signature="TO_DATE(str[, format])", doc="Parse text as a date.",
            examples=["TO_DATE('2020-05-06')"])
    @null_propagating("to_date")
    def fn_to_date(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..casting import parse_date_text

        return parse_date_text(need_string(args[0], "to_date"))

    @define("todecimalstring", "casting", min_args=2, max_args=2,
            signature="TODECIMALSTRING(number, digits)",
            doc="Render a number with a fixed number of fractional digits.",
            examples=["TODECIMALSTRING(64.32, 5)"])
    @null_propagating("todecimalstring")
    def fn_todecimalstring(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        number = need_decimal(args[0], "todecimalstring")
        digits = need_int(args[1], "todecimalstring")
        if not 0 <= digits <= 77:
            raise ValueError_(f"TODECIMALSTRING digits {digits} out of range")
        quant = number.quantize(decimal.Decimal(1).scaleb(-digits),
                                context=decimal.Context(prec=200))
        return out_string(format(quant, "f"), "todecimalstring")

    @define("typeof", "casting", min_args=1, max_args=1,
            signature="TYPEOF(value)", doc="Runtime type name of the value.",
            examples=["TYPEOF(1.5)"])
    def fn_typeof(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "typeof")
        return out_string(args[0].type_name, "typeof")

    reg.alias("typeof", "pg_typeof")

    @define("try_cast_int", "casting", min_args=1, max_args=1,
            signature="TRY_CAST_INT(value)", doc="Integer or NULL on failure.",
            examples=["TRY_CAST_INT('12x')"])
    def fn_try_cast_int(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "try_cast_int")
        if args[0].is_null:
            return NULL
        try:
            return out_int(need_int(args[0], "try_cast_int"))
        except (TypeError_, ValueError_):
            return NULL


def register_system(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("version", "system", min_args=0, max_args=0, pure=False,
            signature="VERSION()", doc="Server version string.",
            examples=["VERSION()"])
    def fn_version(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(ctx.get_config("version", "repro-1.0"), "version")

    @define("database", "system", min_args=0, max_args=0, pure=False,
            signature="DATABASE()", doc="Current database name.",
            examples=["DATABASE()"])
    def fn_database(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(ctx.get_config("database", "main"), "database")

    reg.alias("database", "current_database", "schema")

    @define("current_user", "system", min_args=0, max_args=0, pure=False,
            signature="CURRENT_USER()", doc="Current user name.",
            examples=["CURRENT_USER()"])
    def fn_current_user(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(ctx.get_config("user", "root"), "current_user")

    reg.alias("current_user", "user", "session_user")

    @define("connection_id", "system", min_args=0, max_args=0, pure=False,
            signature="CONNECTION_ID()", doc="Connection identifier.",
            examples=["CONNECTION_ID()"])
    def fn_connection_id(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(int(ctx.get_config("connection_id", "1")))

    @define("current_setting", "system", min_args=1, max_args=1, pure=False,
            signature="CURRENT_SETTING(name)", doc="Read a configuration value.",
            examples=["CURRENT_SETTING('version')"])
    @null_propagating("current_setting")
    def fn_current_setting(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        name = need_string(args[0], "current_setting")
        value = ctx.get_config(name)
        if not value:
            raise ValueError_(f"unrecognized configuration parameter {name!r}")
        return out_string(value, "current_setting")

    @define("sleep", "system", min_args=1, max_args=1, pure=False,
            signature="SLEEP(seconds)", doc="No-op in the simulator; returns 0.",
            examples=["SLEEP(0)"])
    @null_propagating("sleep")
    def fn_sleep(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        seconds = need_decimal(args[0], "sleep")
        if seconds < 0:
            raise ValueError_("SLEEP duration must be non-negative")
        return out_int(0)

    @define("benchmark", "system", min_args=2, max_args=2, pure=False,
            signature="BENCHMARK(count, expr)",
            doc="Pretend to evaluate expr count times; returns 0.",
            examples=["BENCHMARK(10, 1)"])
    def fn_benchmark(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "benchmark")
        if args[0].is_null:
            return NULL
        count = need_int(args[0], "benchmark")
        if count < 0:
            raise ValueError_("BENCHMARK count must be non-negative")
        return out_int(0)

    @define("last_insert_id", "system", min_args=0, max_args=0, pure=False,
            signature="LAST_INSERT_ID()", doc="Last auto-increment value.",
            examples=["LAST_INSERT_ID()"])
    def fn_last_insert_id(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(int(ctx.get_config("last_insert_id", "0")))

    @define("found_rows", "system", min_args=0, max_args=0, pure=False,
            signature="FOUND_ROWS()", doc="Rows found by the last query.",
            examples=["FOUND_ROWS()"])
    def fn_found_rows(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(ctx.stats.get("last_result_rows", 0))

    @define("uuid", "system", min_args=0, max_args=0, pure=False,
            signature="UUID()", doc="A deterministic pseudo-UUID.",
            examples=["UUID()"])
    def fn_uuid(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        raw = ctx.rng.getrandbits(128)
        hex_str = f"{raw:032x}"
        return out_string(
            f"{hex_str[:8]}-{hex_str[8:12]}-{hex_str[12:16]}-{hex_str[16:20]}-{hex_str[20:]}",
            "uuid",
        )

    @define("crc32", "system", min_args=1, max_args=1,
            signature="CRC32(str)", doc="CRC-32 checksum.",
            examples=["CRC32('abc')"])
    @null_propagating("crc32")
    def fn_crc32(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import zlib

        data = need_string(args[0], "crc32").encode("utf-8", "replace")
        return out_int(zlib.crc32(data) & 0xFFFFFFFF)


def register_sequence(reg: FunctionRegistry) -> None:
    define = reg.define

    def _seq_key(name: str) -> str:
        return f"seq::{name.lower()}"

    @define("nextval", "sequence", min_args=1, max_args=1, pure=False,
            signature="NEXTVAL(name)", doc="Advance and return the sequence.",
            examples=["NEXTVAL('s')"])
    @null_propagating("nextval")
    def fn_nextval(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        name = need_string(args[0], "nextval")
        key = _seq_key(name)
        current = int(ctx.get_config(key, "0")) + 1
        ctx.set_config(key, str(current))
        return out_int(current)

    @define("currval", "sequence", min_args=1, max_args=1, pure=False,
            signature="CURRVAL(name)", doc="Current value of the sequence.",
            examples=["CURRVAL('s')"])
    @null_propagating("currval")
    def fn_currval(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        name = need_string(args[0], "currval")
        value = ctx.get_config(_seq_key(name))
        if not value:
            raise ValueError_(f"sequence {name!r} has not been used yet")
        return out_int(int(value))

    @define("setval", "sequence", min_args=2, max_args=2, pure=False,
            signature="SETVAL(name, value)", doc="Set the sequence value.",
            examples=["SETVAL('s', 10)"])
    @null_propagating("setval")
    def fn_setval(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        name = need_string(args[0], "setval")
        value = need_int(args[1], "setval")
        ctx.set_config(_seq_key(name), str(value))
        return out_int(value)

    @define("lastval", "sequence", min_args=0, max_args=0, pure=False,
            signature="LASTVAL()", doc="Most recently returned sequence value.",
            examples=["LASTVAL()"])
    def fn_lastval(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        for key in sorted(ctx.config):
            if key.startswith("seq::"):
                return out_int(int(ctx.config[key]))
        raise ValueError_("no sequence has been used in this session")
