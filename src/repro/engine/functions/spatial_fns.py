"""Reference implementations of the spatial function family."""

from __future__ import annotations

from typing import List

from ..context import ExecutionContext
from ..errors import TypeError_, ValueError_
from ..geo import Geometry, LineString, Point, Polygon
from ..values import NULL, SQLGeometry, SQLValue
from .helpers import (
    need_double,
    need_geometry,
    null_propagating,
    out_bool,
    out_double,
    out_int,
    out_string,
)
from .registry import FunctionRegistry


def register_spatial(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("st_geomfromtext", "spatial", min_args=1, max_args=2,
            signature="ST_GEOMFROMTEXT(wkt)", doc="Parse WKT into a geometry.",
            examples=["ST_GEOMFROMTEXT('POINT(1 2)')"])
    @null_propagating("st_geomfromtext")
    def fn_st_geomfromtext(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..geo import wkt_parse
        from .helpers import need_string

        return SQLGeometry(wkt_parse(need_string(args[0], "st_geomfromtext")))

    reg.alias("st_geomfromtext", "geomfromtext", "st_geometryfromtext")

    @define("st_astext", "spatial", min_args=1, max_args=1,
            signature="ST_ASTEXT(geom)", doc="WKT rendering of the geometry.",
            examples=["ST_ASTEXT(ST_GEOMFROMTEXT('POINT(1 2)'))"])
    @null_propagating("st_astext")
    def fn_st_astext(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_astext")
        if shape is None:
            raise TypeError_("ST_ASTEXT: argument is not a geometry")
        return out_string(shape.to_wkt(), "st_astext")

    reg.alias("st_astext", "astext", "st_aswkt")

    @define("point", "spatial", min_args=2, max_args=2,
            signature="POINT(x, y)", doc="Construct a point.",
            examples=["POINT(1, 2)"])
    @null_propagating("point")
    def fn_point(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return SQLGeometry(
            Point(need_double(args[0], "point"), need_double(args[1], "point"))
        )

    reg.alias("point", "st_point")

    @define("st_x", "spatial", min_args=1, max_args=1,
            signature="ST_X(point)", doc="X coordinate of a point.",
            examples=["ST_X(POINT(1, 2))"])
    @null_propagating("st_x")
    def fn_st_x(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_x")
        if not isinstance(shape, Point):
            raise TypeError_("ST_X expects a POINT")
        return out_double(shape.x)

    @define("st_y", "spatial", min_args=1, max_args=1,
            signature="ST_Y(point)", doc="Y coordinate of a point.",
            examples=["ST_Y(POINT(1, 2))"])
    @null_propagating("st_y")
    def fn_st_y(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_y")
        if not isinstance(shape, Point):
            raise TypeError_("ST_Y expects a POINT")
        return out_double(shape.y)

    @define("boundary", "spatial", min_args=1, max_args=1,
            signature="BOUNDARY(geom)", doc="Topological boundary.",
            examples=["BOUNDARY(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))"])
    @null_propagating("boundary")
    def fn_boundary(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "boundary")
        if shape is None or not isinstance(shape, Geometry):
            raise TypeError_("BOUNDARY: argument is not a geometry")
        return SQLGeometry(shape.boundary())

    reg.alias("boundary", "st_boundary")

    @define("st_length", "spatial", min_args=1, max_args=1,
            signature="ST_LENGTH(linestring)", doc="Length of a linestring.",
            examples=["ST_LENGTH(ST_GEOMFROMTEXT('LINESTRING(0 0, 3 4)'))"])
    @null_propagating("st_length")
    def fn_st_length(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_length")
        if not isinstance(shape, LineString):
            return NULL
        return out_double(shape.length())

    @define("st_area", "spatial", min_args=1, max_args=1,
            signature="ST_AREA(polygon)", doc="Area of a polygon.",
            examples=["ST_AREA(ST_GEOMFROMTEXT('POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))'))"])
    @null_propagating("st_area")
    def fn_st_area(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_area")
        if not isinstance(shape, Polygon):
            return NULL
        return out_double(shape.area())

    @define("st_isclosed", "spatial", min_args=1, max_args=1,
            signature="ST_ISCLOSED(linestring)", doc="Closed-ring test.",
            examples=["ST_ISCLOSED(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1, 0 0)'))"])
    @null_propagating("st_isclosed")
    def fn_st_isclosed(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_isclosed")
        if not isinstance(shape, LineString):
            return NULL
        return out_bool(shape.is_closed)

    @define("st_npoints", "spatial", min_args=1, max_args=1,
            signature="ST_NPOINTS(geom)", doc="Number of points in the geometry.",
            examples=["ST_NPOINTS(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))"])
    @null_propagating("st_npoints")
    def fn_st_npoints(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_npoints")
        if isinstance(shape, Point):
            return out_int(1)
        if isinstance(shape, LineString):
            return out_int(len(shape.points))
        if isinstance(shape, Polygon):
            return out_int(sum(len(r) for r in shape.rings))
        return out_int(0)

    @define("st_centroid", "spatial", min_args=1, max_args=1,
            signature="ST_CENTROID(geom)", doc="Centroid point.",
            examples=["ST_CENTROID(ST_GEOMFROMTEXT('LINESTRING(0 0, 2 2)'))"])
    @null_propagating("st_centroid")
    def fn_st_centroid(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_centroid")
        points: List[Point] = []
        if isinstance(shape, Point):
            points = [shape]
        elif isinstance(shape, LineString):
            points = list(shape.points)
        elif isinstance(shape, Polygon) and shape.rings:
            points = list(shape.rings[0])
        if not points:
            return NULL
        cx = sum(p.x for p in points) / len(points)
        cy = sum(p.y for p in points) / len(points)
        return SQLGeometry(Point(cx, cy))

    @define("st_equals", "spatial", min_args=2, max_args=2,
            signature="ST_EQUALS(a, b)", doc="Geometric equality (exact).",
            examples=["ST_EQUALS(POINT(1, 2), POINT(1, 2))"])
    @null_propagating("st_equals")
    def fn_st_equals(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        a = need_geometry(ctx, args[0], "st_equals")
        b = need_geometry(ctx, args[1], "st_equals")
        return out_bool(a == b)

    @define("st_distance", "spatial", min_args=2, max_args=2,
            signature="ST_DISTANCE(a, b)", doc="Euclidean distance of two points.",
            examples=["ST_DISTANCE(POINT(0, 0), POINT(3, 4))"])
    @null_propagating("st_distance")
    def fn_st_distance(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import math

        a = need_geometry(ctx, args[0], "st_distance")
        b = need_geometry(ctx, args[1], "st_distance")
        if not isinstance(a, Point) or not isinstance(b, Point):
            raise TypeError_("ST_DISTANCE expects two POINTs")
        return out_double(math.hypot(a.x - b.x, a.y - b.y))

    @define("st_geometrytype", "spatial", min_args=1, max_args=1,
            signature="ST_GEOMETRYTYPE(geom)", doc="Geometry type name.",
            examples=["ST_GEOMETRYTYPE(POINT(1, 2))"])
    @null_propagating("st_geometrytype")
    def fn_st_geometrytype(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        shape = need_geometry(ctx, args[0], "st_geometrytype")
        return out_string(shape.kind, "st_geometrytype")
