"""Reference implementations of the map function family."""

from __future__ import annotations

from typing import List

from ..context import ExecutionContext
from ..errors import TypeError_, ValueError_
from ..values import NULL, SQLArray, SQLMap, SQLValue
from .helpers import null_propagating, out_bool, out_int, reject_star
from .registry import FunctionRegistry


def _need_map(value: SQLValue, name: str) -> SQLMap:
    if isinstance(value, SQLMap):
        return value
    raise TypeError_(f"{name.upper()}: {value.type_name} where a map is expected")


def register_map(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("map_keys", "map", min_args=1, max_args=1,
            signature="MAP_KEYS(map)", doc="Keys as an array.",
            examples=["MAP_KEYS(MAP {1: 'a'})"])
    @null_propagating("map_keys")
    def fn_map_keys(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return SQLArray(_need_map(args[0], "map_keys").keys)

    @define("map_values", "map", min_args=1, max_args=1,
            signature="MAP_VALUES(map)", doc="Values as an array.",
            examples=["MAP_VALUES(MAP {1: 'a'})"])
    @null_propagating("map_values")
    def fn_map_values(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return SQLArray(_need_map(args[0], "map_values").values)

    @define("map_size", "map", min_args=1, max_args=1,
            signature="MAP_SIZE(map)", doc="Number of entries.",
            examples=["MAP_SIZE(MAP {1: 'a'})"])
    @null_propagating("map_size")
    def fn_map_size(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(len(_need_map(args[0], "map_size").keys))

    @define("map_contains", "map", min_args=2, max_args=2,
            signature="MAP_CONTAINS(map, key)", doc="Key membership test.",
            examples=["MAP_CONTAINS(MAP {1: 'a'}, 1)"])
    def fn_map_contains(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "map_contains")
        if args[0].is_null:
            return NULL
        mapping = _need_map(args[0], "map_contains")
        return out_bool(any(k == args[1] for k in mapping.keys))

    reg.alias("map_contains", "mapcontains")

    @define("map_from_arrays", "map", min_args=2, max_args=2,
            signature="MAP_FROM_ARRAYS(keys, values)",
            doc="Build a map from two equal-length arrays.",
            examples=["MAP_FROM_ARRAYS([1, 2], ['a', 'b'])"])
    @null_propagating("map_from_arrays")
    def fn_map_from_arrays(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        keys = args[0]
        values = args[1]
        if not isinstance(keys, SQLArray) or not isinstance(values, SQLArray):
            raise TypeError_("MAP_FROM_ARRAYS expects two arrays")
        if len(keys.items) != len(values.items):
            raise ValueError_(
                f"MAP_FROM_ARRAYS: {len(keys.items)} keys but {len(values.items)} values"
            )
        return SQLMap(keys.items, values.items)

    @define("map_entries", "map", min_args=1, max_args=1,
            signature="MAP_ENTRIES(map)", doc="Entries as an array of rows.",
            examples=["MAP_ENTRIES(MAP {1: 'a'})"])
    @null_propagating("map_entries")
    def fn_map_entries(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..values import SQLRow

        mapping = _need_map(args[0], "map_entries")
        return SQLArray(
            tuple(SQLRow((k, v)) for k, v in zip(mapping.keys, mapping.values))
        )

    @define("map_concat", "map", min_args=2,
            signature="MAP_CONCAT(map, map, ...)", doc="Merge maps (later wins).",
            examples=["MAP_CONCAT(MAP {1: 'a'}, MAP {2: 'b'})"])
    @null_propagating("map_concat")
    def fn_map_concat(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        keys: List[SQLValue] = []
        values: List[SQLValue] = []
        for arg in args:
            mapping = _need_map(arg, "map_concat")
            for k, v in zip(mapping.keys, mapping.values):
                if k in keys:
                    values[keys.index(k)] = v
                else:
                    keys.append(k)
                    values.append(v)
        return SQLMap(tuple(keys), tuple(values))
