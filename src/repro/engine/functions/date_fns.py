"""Reference implementations of the date/time function family."""

from __future__ import annotations

from typing import List

from ..casting import parse_date_text, parse_datetime_text
from ..context import ExecutionContext
from ..errors import TypeError_, ValueError_
from ..values import (
    NULL,
    SQLDate,
    SQLDateTime,
    SQLInteger,
    SQLInterval,
    SQLRow,
    SQLString,
    SQLTime,
    SQLValue,
    days_from_civil,
    days_in_month,
    is_leap_year,
)
from .helpers import need_int, need_string, null_propagating, out_int, out_string
from .registry import FunctionRegistry

#: a fixed "current" timestamp keeps every run deterministic
FIXED_NOW = SQLDateTime(SQLDate(2024, 6, 15), SQLTime(12, 30, 45))

_DAY_NAMES = ("Monday", "Tuesday", "Wednesday", "Thursday",
              "Friday", "Saturday", "Sunday")
_MONTH_NAMES = ("January", "February", "March", "April", "May", "June",
                "July", "August", "September", "October", "November", "December")


def need_date(value: SQLValue, name: str) -> SQLDate:
    if isinstance(value, SQLDate):
        return value
    if isinstance(value, SQLDateTime):
        return value.date
    if isinstance(value, SQLString):
        return parse_date_text(value.value)
    raise TypeError_(f"{name.upper()}: {value.type_name} where a date is expected")


def need_datetime(value: SQLValue, name: str) -> SQLDateTime:
    if isinstance(value, SQLDateTime):
        return value
    if isinstance(value, SQLDate):
        return SQLDateTime(value, SQLTime(0, 0, 0))
    if isinstance(value, SQLString):
        return parse_datetime_text(value.value)
    raise TypeError_(f"{name.upper()}: {value.type_name} where a datetime is expected")


def _need_time(value: SQLValue, name: str) -> SQLTime:
    """Accept TIME, DATETIME, or a time/datetime string."""
    from ..casting import parse_time_text

    if isinstance(value, SQLTime):
        return value
    if isinstance(value, SQLDateTime):
        return value.time
    if isinstance(value, SQLString) and ":" in value.value and "-" not in value.value:
        return parse_time_text(value.value)
    return need_datetime(value, name).time


def register_date(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("now", "date", min_args=0, max_args=0, pure=False,
            signature="NOW()", doc="Current timestamp (fixed for determinism).",
            examples=["NOW()"])
    def fn_now(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return FIXED_NOW

    reg.alias("now", "current_timestamp", "sysdate")

    @define("current_date", "date", min_args=0, max_args=0, pure=False,
            signature="CURRENT_DATE()", doc="Current date.",
            examples=["CURRENT_DATE()"])
    def fn_current_date(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return FIXED_NOW.date

    reg.alias("current_date", "curdate", "today")

    @define("date", "date", min_args=1, max_args=1,
            signature="DATE(expr)", doc="Date part of the argument.",
            examples=["DATE('2020-01-02')"])
    @null_propagating("date")
    def fn_date(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return need_date(args[0], "date")

    @define("timestamp", "date", min_args=1, max_args=1,
            signature="TIMESTAMP(expr)", doc="Datetime value of the argument.",
            examples=["TIMESTAMP('2020-01-02 03:04:05')"])
    @null_propagating("timestamp")
    def fn_timestamp(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return need_datetime(args[0], "timestamp")

    @define("year", "date", min_args=1, max_args=1,
            signature="YEAR(date)", doc="Year of the date.",
            examples=["YEAR('2020-05-06')"])
    @null_propagating("year")
    def fn_year(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(need_date(args[0], "year").year)

    @define("month", "date", min_args=1, max_args=1,
            signature="MONTH(date)", doc="Month (1-12).",
            examples=["MONTH('2020-05-06')"])
    @null_propagating("month")
    def fn_month(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(need_date(args[0], "month").month)

    @define("day", "date", min_args=1, max_args=1,
            signature="DAY(date)", doc="Day of month.",
            examples=["DAY('2020-05-06')"])
    @null_propagating("day")
    def fn_day(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(need_date(args[0], "day").day)

    reg.alias("day", "dayofmonth")

    @define("dayofweek", "date", min_args=1, max_args=1,
            signature="DAYOFWEEK(date)", doc="1 = Sunday ... 7 = Saturday.",
            examples=["DAYOFWEEK('2020-05-06')"])
    @null_propagating("dayofweek")
    def fn_dayofweek(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        days = need_date(args[0], "dayofweek").to_days()
        return out_int(((days + 4) % 7) + 1)  # epoch 1970-01-01 was Thursday

    @define("weekday", "date", min_args=1, max_args=1,
            signature="WEEKDAY(date)", doc="0 = Monday ... 6 = Sunday.",
            examples=["WEEKDAY('2020-05-06')"])
    @null_propagating("weekday")
    def fn_weekday(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        days = need_date(args[0], "weekday").to_days()
        return out_int((days + 3) % 7)

    @define("dayname", "date", min_args=1, max_args=1,
            signature="DAYNAME(date)", doc="English weekday name.",
            examples=["DAYNAME('2020-05-06')"])
    @null_propagating("dayname")
    def fn_dayname(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        days = need_date(args[0], "dayname").to_days()
        return out_string(_DAY_NAMES[(days + 3) % 7], "dayname")

    @define("monthname", "date", min_args=1, max_args=1,
            signature="MONTHNAME(date)", doc="English month name.",
            examples=["MONTHNAME('2020-05-06')"])
    @null_propagating("monthname")
    def fn_monthname(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(_MONTH_NAMES[need_date(args[0], "monthname").month - 1], "monthname")

    @define("dayofyear", "date", min_args=1, max_args=1,
            signature="DAYOFYEAR(date)", doc="Day within the year (1-366).",
            examples=["DAYOFYEAR('2020-05-06')"])
    @null_propagating("dayofyear")
    def fn_dayofyear(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        date = need_date(args[0], "dayofyear")
        return out_int(date.to_days() - days_from_civil(date.year, 1, 1) + 1)

    @define("quarter", "date", min_args=1, max_args=1,
            signature="QUARTER(date)", doc="Quarter (1-4).",
            examples=["QUARTER('2020-05-06')"])
    @null_propagating("quarter")
    def fn_quarter(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int((need_date(args[0], "quarter").month - 1) // 3 + 1)

    @define("week", "date", min_args=1, max_args=2,
            signature="WEEK(date)", doc="Week number (0-53).",
            examples=["WEEK('2020-05-06')"])
    @null_propagating("week")
    def fn_week(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        date = need_date(args[0], "week")
        jan1 = days_from_civil(date.year, 1, 1)
        return out_int((date.to_days() - jan1 + ((jan1 + 3) % 7)) // 7)

    reg.alias("week", "weekofyear")

    @define("hour", "date", min_args=1, max_args=1,
            signature="HOUR(time)", doc="Hour of the time.",
            examples=["HOUR('12:30:45')"])
    @null_propagating("hour")
    def fn_hour(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(_need_time(args[0], "hour").hour)

    @define("minute", "date", min_args=1, max_args=1,
            signature="MINUTE(time)", doc="Minute of the time.",
            examples=["MINUTE('12:30:45')"])
    @null_propagating("minute")
    def fn_minute(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(_need_time(args[0], "minute").minute)

    @define("second", "date", min_args=1, max_args=1,
            signature="SECOND(time)", doc="Second of the time.",
            examples=["SECOND('12:30:45')"])
    @null_propagating("second")
    def fn_second(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(_need_time(args[0], "second").second)

    @define("extract", "date", min_args=1, max_args=2,
            signature="EXTRACT(unit FROM expr)",
            doc="Extract a named field from a temporal value.",
            examples=["EXTRACT('year', '2020-05-06')"])
    @null_propagating("extract")
    def fn_extract(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        if len(args) == 1 and isinstance(args[0], SQLRow):
            args = list(args[0].items)
        if len(args) != 2:
            raise TypeError_("EXTRACT expects a unit and a value")
        unit = need_string(args[0], "extract").lower()
        value = need_datetime(args[1], "extract")
        fields = {
            "year": value.date.year, "month": value.date.month,
            "day": value.date.day, "hour": value.time.hour,
            "minute": value.time.minute, "second": value.time.second,
            "quarter": (value.date.month - 1) // 3 + 1,
            "dow": (value.date.to_days() + 4) % 7,
            "doy": value.date.to_days() - days_from_civil(value.date.year, 1, 1) + 1,
            "epoch": value.date.to_days() * 86400
            + value.time.total_microseconds() // 1_000_000,
        }
        if unit not in fields:
            raise ValueError_(f"EXTRACT: unknown field {unit!r}")
        return out_int(fields[unit])

    @define("datediff", "date", min_args=2, max_args=2,
            signature="DATEDIFF(a, b)", doc="a - b in days.",
            examples=["DATEDIFF('2020-05-06', '2020-05-01')"])
    @null_propagating("datediff")
    def fn_datediff(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        a = need_date(args[0], "datediff")
        b = need_date(args[1], "datediff")
        return out_int(a.to_days() - b.to_days())

    @define("date_add", "date", min_args=2, max_args=2,
            signature="DATE_ADD(date, interval)", doc="Add an interval to a date.",
            examples=["DATE_ADD('2020-05-06', INTERVAL 3 DAY)"])
    @null_propagating("date_add")
    def fn_date_add(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..evaluator import apply_binary

        base: SQLValue = need_date(args[0], "date_add")
        delta = args[1]
        if isinstance(delta, SQLInteger):
            delta = SQLInterval(days=delta.value)
        if not isinstance(delta, SQLInterval):
            raise TypeError_("DATE_ADD expects an interval")
        return apply_binary(ctx, "+", base, delta)

    reg.alias("date_add", "adddate")

    @define("date_sub", "date", min_args=2, max_args=2,
            signature="DATE_SUB(date, interval)", doc="Subtract an interval.",
            examples=["DATE_SUB('2020-05-06', INTERVAL 3 DAY)"])
    @null_propagating("date_sub")
    def fn_date_sub(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..evaluator import apply_binary

        base: SQLValue = need_date(args[0], "date_sub")
        delta = args[1]
        if isinstance(delta, SQLInteger):
            delta = SQLInterval(days=delta.value)
        if not isinstance(delta, SQLInterval):
            raise TypeError_("DATE_SUB expects an interval")
        return apply_binary(ctx, "-", base, delta)

    reg.alias("date_sub", "subdate")

    @define("last_day", "date", min_args=1, max_args=1,
            signature="LAST_DAY(date)", doc="Last day of the month.",
            examples=["LAST_DAY('2020-02-10')"])
    @null_propagating("last_day")
    def fn_last_day(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        date = need_date(args[0], "last_day")
        return SQLDate(date.year, date.month, days_in_month(date.year, date.month))

    @define("makedate", "date", min_args=2, max_args=2,
            signature="MAKEDATE(year, dayofyear)", doc="Date from year and day.",
            examples=["MAKEDATE(2020, 100)"])
    @null_propagating("makedate")
    def fn_makedate(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        year = need_int(args[0], "makedate")
        doy = need_int(args[1], "makedate")
        if doy < 1:
            return NULL
        if not 0 <= year <= 9999:
            raise ValueError_(f"MAKEDATE year {year} out of range")
        return SQLDate.from_days(days_from_civil(year, 1, 1) + doy - 1)

    @define("to_days", "date", min_args=1, max_args=1,
            signature="TO_DAYS(date)", doc="Days since year 0.",
            examples=["TO_DAYS('2020-05-06')"])
    @null_propagating("to_days")
    def fn_to_days(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        date = need_date(args[0], "to_days")
        return out_int(date.to_days() - days_from_civil(0, 1, 1))

    @define("from_days", "date", min_args=1, max_args=1,
            signature="FROM_DAYS(n)", doc="Date from days since year 0.",
            examples=["FROM_DAYS(738000)"])
    @null_propagating("from_days")
    def fn_from_days(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        n = need_int(args[0], "from_days")
        return SQLDate.from_days(n + days_from_civil(0, 1, 1))

    @define("unix_timestamp", "date", min_args=0, max_args=1, pure=False,
            signature="UNIX_TIMESTAMP([datetime])", doc="Seconds since the epoch.",
            examples=["UNIX_TIMESTAMP('2020-05-06 00:00:00')"])
    def fn_unix_timestamp(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        target = need_datetime(args[0], "unix_timestamp") if args and not args[0].is_null else FIXED_NOW
        seconds = target.date.to_days() * 86400 + target.time.total_microseconds() // 1_000_000
        return out_int(seconds)

    @define("from_unixtime", "date", min_args=1, max_args=1,
            signature="FROM_UNIXTIME(seconds)", doc="Datetime from epoch seconds.",
            examples=["FROM_UNIXTIME(1588723200)"])
    @null_propagating("from_unixtime")
    def fn_from_unixtime(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        seconds = need_int(args[0], "from_unixtime")
        days, rem = divmod(seconds, 86400)
        hour, rem = divmod(rem, 3600)
        minute, second = divmod(rem, 60)
        return SQLDateTime(SQLDate.from_days(days), SQLTime(hour, minute, second))

    @define("date_format", "date", min_args=2, max_args=2,
            signature="DATE_FORMAT(date, format)",
            doc="Format a date with %Y/%m/%d/%H/%i/%s specifiers.",
            examples=["DATE_FORMAT('2020-05-06', '%Y-%m')"])
    @null_propagating("date_format")
    def fn_date_format(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_datetime(args[0], "date_format")
        fmt = need_string(args[1], "date_format")
        out: List[str] = []
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch == "%" and i + 1 < len(fmt):
                spec = fmt[i + 1]
                mapping = {
                    "Y": f"{value.date.year:04d}",
                    "y": f"{value.date.year % 100:02d}",
                    "m": f"{value.date.month:02d}",
                    "c": str(value.date.month),
                    "d": f"{value.date.day:02d}",
                    "e": str(value.date.day),
                    "H": f"{value.time.hour:02d}",
                    "i": f"{value.time.minute:02d}",
                    "s": f"{value.time.second:02d}",
                    "M": _MONTH_NAMES[value.date.month - 1],
                    "W": _DAY_NAMES[(value.date.to_days() + 3) % 7],
                    "%": "%",
                }
                out.append(mapping.get(spec, "%" + spec))
                i += 2
            else:
                out.append(ch)
                i += 1
        return out_string("".join(out), "date_format")

    @define("str_to_date", "date", min_args=2, max_args=2,
            signature="STR_TO_DATE(str, format)", doc="Parse a date (subset of %Y-%m-%d).",
            examples=["STR_TO_DATE('2020-05-06', '%Y-%m-%d')"])
    @null_propagating("str_to_date")
    def fn_str_to_date(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "str_to_date")
        try:
            return parse_date_text(text)
        except ValueError_:
            return NULL

    @define("maketime", "date", min_args=3, max_args=3,
            signature="MAKETIME(h, m, s)", doc="Time from components.",
            examples=["MAKETIME(10, 30, 0)"])
    @null_propagating("maketime")
    def fn_maketime(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        hour = need_int(args[0], "maketime")
        minute = need_int(args[1], "maketime")
        second = need_int(args[2], "maketime")
        if not (0 <= hour < 24 and 0 <= minute < 60 and 0 <= second < 60):
            return NULL
        return SQLTime(hour, minute, second)

    @define("is_leap_year", "date", min_args=1, max_args=1,
            signature="IS_LEAP_YEAR(year)", doc="Leap-year test.",
            examples=["IS_LEAP_YEAR(2024)"])
    @null_propagating("is_leap_year")
    def fn_is_leap_year(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from .helpers import out_bool

        return out_bool(is_leap_year(need_int(args[0], "is_leap_year")))
