"""Reference implementations of the array function family (DuckDB /
ClickHouse style)."""

from __future__ import annotations

from typing import List

from ..context import ExecutionContext
from ..errors import TypeError_, ValueError_
from ..values import NULL, SQLArray, SQLInteger, SQLValue
from .helpers import need_array, need_int, null_propagating, out_bool, out_int, reject_star
from .registry import FunctionRegistry


def register_array(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("array_length", "array", min_args=1, max_args=2,
            signature="ARRAY_LENGTH(arr)", doc="Number of elements.",
            examples=["ARRAY_LENGTH([1, 2, 3])"])
    @null_propagating("array_length")
    def fn_array_length(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(len(need_array(args[0], "array_length").items))

    reg.alias("array_length", "cardinality", "len")

    @define("array_append", "array", min_args=2, max_args=2,
            signature="ARRAY_APPEND(arr, value)", doc="Append an element.",
            examples=["ARRAY_APPEND([1], 2)"])
    def fn_array_append(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "array_append")
        if args[0].is_null:
            return NULL
        arr = need_array(args[0], "array_append")
        return SQLArray(arr.items + (args[1],))

    @define("array_prepend", "array", min_args=2, max_args=2,
            signature="ARRAY_PREPEND(value, arr)", doc="Prepend an element.",
            examples=["ARRAY_PREPEND(0, [1])"])
    def fn_array_prepend(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "array_prepend")
        if args[1].is_null:
            return NULL
        arr = need_array(args[1], "array_prepend")
        return SQLArray((args[0],) + arr.items)

    @define("array_concat", "array", min_args=2,
            signature="ARRAY_CONCAT(arr, arr, ...)", doc="Concatenate arrays.",
            examples=["ARRAY_CONCAT([1], [2, 3])"])
    @null_propagating("array_concat")
    def fn_array_concat(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        items: tuple = ()
        for arg in args:
            items += need_array(arg, "array_concat").items
        return SQLArray(items)

    reg.alias("array_concat", "array_cat")

    @define("array_contains", "array", min_args=2, max_args=2,
            signature="ARRAY_CONTAINS(arr, value)", doc="Membership test.",
            examples=["ARRAY_CONTAINS([1, 2], 2)"])
    def fn_array_contains(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "array_contains")
        if args[0].is_null:
            return NULL
        arr = need_array(args[0], "array_contains")
        needle = args[1]
        return out_bool(any(item == needle for item in arr.items))

    reg.alias("array_contains", "has", "list_contains")

    @define("array_position", "array", min_args=2, max_args=2,
            signature="ARRAY_POSITION(arr, value)",
            doc="1-based index of the first match, 0 when absent.",
            examples=["ARRAY_POSITION([1, 2], 2)"])
    @null_propagating("array_position")
    def fn_array_position(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        arr = need_array(args[0], "array_position")
        for idx, item in enumerate(arr.items, start=1):
            if item == args[1]:
                return out_int(idx)
        return out_int(0)

    reg.alias("array_position", "indexof", "list_position")

    @define("array_slice", "array", min_args=3, max_args=3,
            signature="ARRAY_SLICE(arr, begin, end)",
            doc="1-based inclusive slice.",
            examples=["ARRAY_SLICE([1, 2, 3, 4], 2, 3)"])
    @null_propagating("array_slice")
    def fn_array_slice(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        arr = need_array(args[0], "array_slice")
        begin = need_int(args[1], "array_slice")
        end = need_int(args[2], "array_slice")
        n = len(arr.items)
        if begin < 0:
            begin = n + begin + 1
        if end < 0:
            end = n + end + 1
        begin = max(begin, 1)
        end = min(end, n)
        if begin > end:
            return SQLArray(())
        return SQLArray(arr.items[begin - 1 : end])

    reg.alias("array_slice", "list_slice")

    @define("array_reverse", "array", min_args=1, max_args=1,
            signature="ARRAY_REVERSE(arr)", doc="Reverse the elements.",
            examples=["ARRAY_REVERSE([1, 2, 3])"])
    @null_propagating("array_reverse")
    def fn_array_reverse(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return SQLArray(tuple(reversed(need_array(args[0], "array_reverse").items)))

    @define("array_distinct", "array", min_args=1, max_args=1,
            signature="ARRAY_DISTINCT(arr)", doc="Drop duplicate elements.",
            examples=["ARRAY_DISTINCT([1, 1, 2])"])
    @null_propagating("array_distinct")
    def fn_array_distinct(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        seen = set()
        out = []
        for item in need_array(args[0], "array_distinct").items:
            key = item.sort_key()
            if key not in seen:
                seen.add(key)
                out.append(item)
        return SQLArray(tuple(out))

    @define("array_sort", "array", min_args=1, max_args=1,
            signature="ARRAY_SORT(arr)", doc="Sort ascending (NULLs first).",
            examples=["ARRAY_SORT([3, 1, 2])"])
    @null_propagating("array_sort")
    def fn_array_sort(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        items = list(need_array(args[0], "array_sort").items)
        items.sort(key=lambda v: v.sort_key())
        return SQLArray(tuple(items))

    @define("element_at", "array", min_args=2, max_args=2,
            signature="ELEMENT_AT(arr, index)", doc="1-based element access.",
            examples=["ELEMENT_AT([1, 2], 2)"])
    @null_propagating("element_at")
    def fn_element_at(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..values import SQLMap

        if isinstance(args[0], SQLMap):
            found = args[0].lookup(args[1])
            return found if found is not None else NULL
        arr = need_array(args[0], "element_at")
        index = need_int(args[1], "element_at")
        if index < 0:
            index = len(arr.items) + index + 1
        if 1 <= index <= len(arr.items):
            return arr.items[index - 1]
        raise ValueError_(f"ELEMENT_AT index {index} out of bounds")

    reg.alias("element_at", "array_extract", "list_extract", "arrayelement")

    @define("array_sum", "array", min_args=1, max_args=1,
            signature="ARRAY_SUM(arr)", doc="Sum of numeric elements.",
            examples=["ARRAY_SUM([1, 2, 3])"])
    @null_propagating("array_sum")
    def fn_array_sum(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import decimal

        from ..values import SQLDecimal, is_numeric, numeric_as_decimal

        total = decimal.Decimal(0)
        for item in need_array(args[0], "array_sum").items:
            if item.is_null:
                continue
            if not is_numeric(item):
                raise TypeError_("ARRAY_SUM over non-numeric elements")
            total += numeric_as_decimal(item)
        if total == total.to_integral_value():
            return SQLInteger(int(total))
        return SQLDecimal(total)

    @define("array_min", "array", min_args=1, max_args=1,
            signature="ARRAY_MIN(arr)", doc="Smallest element.",
            examples=["ARRAY_MIN([3, 1])"])
    @null_propagating("array_min")
    def fn_array_min(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..evaluator import compare_values

        items = [i for i in need_array(args[0], "array_min").items if not i.is_null]
        if not items:
            return NULL
        best = items[0]
        for item in items[1:]:
            if compare_values(ctx, item, best) < 0:
                best = item
        return best

    @define("array_max", "array", min_args=1, max_args=1,
            signature="ARRAY_MAX(arr)", doc="Largest element.",
            examples=["ARRAY_MAX([3, 1])"])
    @null_propagating("array_max")
    def fn_array_max(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..evaluator import compare_values

        items = [i for i in need_array(args[0], "array_max").items if not i.is_null]
        if not items:
            return NULL
        best = items[0]
        for item in items[1:]:
            if compare_values(ctx, item, best) > 0:
                best = item
        return best

    @define("range", "array", min_args=1, max_args=3,
            signature="RANGE([start,] stop[, step])",
            doc="Array of integers in the half-open range.",
            examples=["RANGE(1, 5)"])
    @null_propagating("range")
    def fn_range(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        values = [need_int(a, "range") for a in args]
        if len(values) == 1:
            start, stop, step = 0, values[0], 1
        elif len(values) == 2:
            start, stop, step = values[0], values[1], 1
        else:
            start, stop, step = values
        if step == 0:
            raise ValueError_("RANGE step must not be zero")
        if abs(stop - start) // abs(step) > 1_000_000:
            from ..errors import ResourceError

            raise ResourceError("RANGE result too large")
        return SQLArray(tuple(SQLInteger(v) for v in range(start, stop, step)))

    reg.alias("range", "generate_series", "sequence_array")

    @define("array_flatten", "array", min_args=1, max_args=1,
            signature="ARRAY_FLATTEN(arr)", doc="Flatten one nesting level.",
            examples=["ARRAY_FLATTEN([[1], [2, 3]])"])
    @null_propagating("array_flatten")
    def fn_array_flatten(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        out: List[SQLValue] = []
        for item in need_array(args[0], "array_flatten").items:
            if isinstance(item, SQLArray):
                out.extend(item.items)
            else:
                out.append(item)
        return SQLArray(tuple(out))

    reg.alias("array_flatten", "flatten")
