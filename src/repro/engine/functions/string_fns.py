"""Reference implementations of the string function family.

String functions dominate the paper's bug study (Figure 1: 117 of 508
occurrences, 57 distinct functions), so the inventory here is deliberately
broad — search/replace, padding, formatting, hashing, encoding.
"""

from __future__ import annotations

import decimal
import hashlib
from typing import List

from ..context import ExecutionContext
from ..errors import ValueError_
from ..values import NULL, SQLBytes, SQLString, SQLValue
from .helpers import (
    need_decimal,
    need_int,
    need_string,
    null_propagating,
    out_int,
    out_string,
)
from .registry import FunctionRegistry

#: cap used by padding / repetition functions
MAX_PAD = 8 * 1024 * 1024


def register_string(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("length", "string", min_args=1, max_args=1,
            signature="LENGTH(str)", doc="Length of the string in bytes.",
            examples=["LENGTH('hello')"])
    @null_propagating("length")
    def fn_length(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(len(need_string(args[0], "length").encode("utf-8", "replace")))

    @define("char_length", "string", min_args=1, max_args=1,
            signature="CHAR_LENGTH(str)", doc="Length in characters.",
            examples=["CHAR_LENGTH('hello')"])
    @null_propagating("char_length")
    def fn_char_length(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(len(need_string(args[0], "char_length")))

    @define("upper", "string", min_args=1, max_args=1,
            signature="UPPER(str)", doc="Upper-case the string.",
            examples=["UPPER('abc')"])
    @null_propagating("upper")
    def fn_upper(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(need_string(args[0], "upper").upper(), "upper")

    @define("lower", "string", min_args=1, max_args=1,
            signature="LOWER(str)", doc="Lower-case the string.",
            examples=["LOWER('ABC')"])
    @null_propagating("lower")
    def fn_lower(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(need_string(args[0], "lower").lower(), "lower")

    @define("concat", "string", min_args=1,
            signature="CONCAT(str, ...)", doc="Concatenate the arguments.",
            examples=["CONCAT('a', 'b', 'c')"])
    @null_propagating("concat")
    def fn_concat(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string("".join(need_string(a, "concat") for a in args), "concat")

    @define("concat_ws", "string", min_args=2,
            signature="CONCAT_WS(sep, str, ...)",
            doc="Concatenate with a separator, skipping NULLs.",
            examples=["CONCAT_WS(',', 'a', 'b')"])
    def fn_concat_ws(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from .helpers import reject_star

        reject_star(args, "concat_ws")
        if args[0].is_null:
            return NULL
        sep = need_string(args[0], "concat_ws")
        parts = [need_string(a, "concat_ws") for a in args[1:] if not a.is_null]
        return out_string(sep.join(parts), "concat_ws")

    @define("substring", "string", min_args=1, max_args=3,
            signature="SUBSTRING(str, pos[, len])",
            doc="Extract a substring (1-based position).",
            examples=["SUBSTRING('hello', 2, 3)"])
    @null_propagating("substring")
    def fn_substring(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..values import SQLRow

        # normalise the SUBSTRING(x FROM y FOR z) row produced by the parser
        if len(args) == 1 and isinstance(args[0], SQLRow):
            args = list(args[0].items)
        text = need_string(args[0], "substring")
        start = need_int(args[1], "substring") if len(args) > 1 else 1
        if start > 0:
            begin = start - 1
        elif start < 0:
            begin = max(len(text) + start, 0)
        else:
            begin = 0
        if len(args) > 2:
            length = need_int(args[2], "substring")
            if length < 0:
                return out_string("", "substring")
            return out_string(text[begin : begin + length], "substring")
        return out_string(text[begin:], "substring")

    reg.alias("substring", "substr", "mid")

    @define("left", "string", min_args=2, max_args=2,
            signature="LEFT(str, len)", doc="Leftmost characters.",
            examples=["LEFT('hello', 2)"])
    @null_propagating("left")
    def fn_left(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "left")
        count = need_int(args[1], "left")
        return out_string(text[: max(count, 0)], "left")

    @define("right", "string", min_args=2, max_args=2,
            signature="RIGHT(str, len)", doc="Rightmost characters.",
            examples=["RIGHT('hello', 2)"])
    @null_propagating("right")
    def fn_right(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "right")
        count = need_int(args[1], "right")
        if count <= 0:
            return out_string("", "right")
        return out_string(text[-count:], "right")

    @define("repeat", "string", min_args=2, max_args=2,
            signature="REPEAT(str, count)", doc="Repeat the string count times.",
            examples=["REPEAT('ab', 3)", "REPEAT('[', 10)"])
    @null_propagating("repeat")
    def fn_repeat(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "repeat")
        count = need_int(args[1], "repeat")
        if count <= 0:
            return out_string("", "repeat")
        if len(text) * count > MAX_PAD:
            from ..errors import ResourceError

            raise ResourceError("REPEAT result exceeds string size limit")
        return out_string(text * count, "repeat")

    @define("replace", "string", min_args=3, max_args=3,
            signature="REPLACE(str, from, to)", doc="Replace all occurrences.",
            examples=["REPLACE('aaa', 'a', 'b')"])
    @null_propagating("replace")
    def fn_replace(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "replace")
        old = need_string(args[1], "replace")
        new = need_string(args[2], "replace")
        if not old:
            return out_string(text, "replace")
        result = text.replace(old, new)
        return out_string(result, "replace")

    @define("reverse", "string", min_args=1, max_args=1,
            signature="REVERSE(str)", doc="Reverse the string.",
            examples=["REVERSE('abc')"])
    @null_propagating("reverse")
    def fn_reverse(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(need_string(args[0], "reverse")[::-1], "reverse")

    @define("trim", "string", min_args=1, max_args=2,
            signature="TRIM(str)", doc="Strip spaces from both ends.",
            examples=["TRIM('  x  ')", "TRIM('FF')"])
    @null_propagating("trim")
    def fn_trim(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..values import SQLRow

        if len(args) == 1 and isinstance(args[0], SQLRow):
            args = list(args[0].items)  # TRIM(x FROM y) form
            chars = need_string(args[0], "trim")
            return out_string(need_string(args[1], "trim").strip(chars), "trim")
        text = need_string(args[0], "trim")
        chars = need_string(args[1], "trim") if len(args) > 1 else None
        return out_string(text.strip(chars) if chars else text.strip(), "trim")

    @define("ltrim", "string", min_args=1, max_args=2,
            signature="LTRIM(str)", doc="Strip leading spaces.",
            examples=["LTRIM('  x')"])
    @null_propagating("ltrim")
    def fn_ltrim(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "ltrim")
        chars = need_string(args[1], "ltrim") if len(args) > 1 else None
        return out_string(text.lstrip(chars) if chars else text.lstrip(), "ltrim")

    @define("rtrim", "string", min_args=1, max_args=2,
            signature="RTRIM(str)", doc="Strip trailing spaces.",
            examples=["RTRIM('x  ')"])
    @null_propagating("rtrim")
    def fn_rtrim(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "rtrim")
        chars = need_string(args[1], "rtrim") if len(args) > 1 else None
        return out_string(text.rstrip(chars) if chars else text.rstrip(), "rtrim")

    @define("lpad", "string", min_args=2, max_args=3,
            signature="LPAD(str, len[, pad])", doc="Left-pad to the given length.",
            examples=["LPAD('5', 3, '0')"])
    @null_propagating("lpad")
    def fn_lpad(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "lpad")
        width = need_int(args[1], "lpad")
        pad = need_string(args[2], "lpad") if len(args) > 2 else " "
        if width < 0 or not pad:
            return NULL
        if width > MAX_PAD:
            from ..errors import ResourceError

            raise ResourceError("LPAD result exceeds string size limit")
        if width <= len(text):
            return out_string(text[:width], "lpad")
        fill = (pad * ((width - len(text)) // len(pad) + 1))[: width - len(text)]
        return out_string(fill + text, "lpad")

    @define("rpad", "string", min_args=2, max_args=3,
            signature="RPAD(str, len[, pad])", doc="Right-pad to the given length.",
            examples=["RPAD('5', 3, '0')"])
    @null_propagating("rpad")
    def fn_rpad(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "rpad")
        width = need_int(args[1], "rpad")
        pad = need_string(args[2], "rpad") if len(args) > 2 else " "
        if width < 0 or not pad:
            return NULL
        if width > MAX_PAD:
            from ..errors import ResourceError

            raise ResourceError("RPAD result exceeds string size limit")
        if width <= len(text):
            return out_string(text[:width], "rpad")
        fill = (pad * ((width - len(text)) // len(pad) + 1))[: width - len(text)]
        return out_string(text + fill, "rpad")

    @define("instr", "string", min_args=2, max_args=2,
            signature="INSTR(str, substr)",
            doc="1-based position of substr in str, 0 when absent.",
            examples=["INSTR('hello', 'll')"])
    @null_propagating("instr")
    def fn_instr(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "instr")
        sub = need_string(args[1], "instr")
        return out_int(text.find(sub) + 1)

    @define("position", "string", min_args=1, max_args=2,
            signature="POSITION(substr, str)",
            doc="1-based position of substr in str.",
            examples=["POSITION('ll', 'hello')"])
    @null_propagating("position")
    def fn_position(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..values import SQLRow

        if len(args) == 1 and isinstance(args[0], SQLRow):
            args = list(args[0].items)
        if len(args) < 2:
            from ..errors import TypeError_

            raise TypeError_("POSITION expects a needle and a subject")
        sub = need_string(args[0], "position")
        text = need_string(args[1], "position")
        return out_int(text.find(sub) + 1)

    @define("locate", "string", min_args=2, max_args=3,
            signature="LOCATE(substr, str[, pos])",
            doc="1-based position of substr at or after pos.",
            examples=["LOCATE('l', 'hello', 3)"])
    @null_propagating("locate")
    def fn_locate(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        sub = need_string(args[0], "locate")
        text = need_string(args[1], "locate")
        start = need_int(args[2], "locate") - 1 if len(args) > 2 else 0
        if start < 0:
            return out_int(0)
        return out_int(text.find(sub, start) + 1)

    @define("ascii", "string", min_args=1, max_args=1,
            signature="ASCII(str)", doc="Code point of the first character.",
            examples=["ASCII('A')"])
    @null_propagating("ascii")
    def fn_ascii(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "ascii")
        return out_int(ord(text[0]) if text else 0)

    @define("chr", "string", min_args=1, max_args=1,
            signature="CHR(code)", doc="Character for the given code point.",
            examples=["CHR(65)"])
    @null_propagating("chr")
    def fn_chr(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        code = need_int(args[0], "chr")
        if not 0 <= code <= 0x10FFFF:
            raise ValueError_(f"CHR code {code} out of range")
        return out_string(chr(code), "chr")

    reg.alias("chr", "char")

    @define("space", "string", min_args=1, max_args=1,
            signature="SPACE(n)", doc="A string of n spaces.",
            examples=["SPACE(4)"])
    @null_propagating("space")
    def fn_space(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        count = need_int(args[0], "space")
        if count < 0:
            return out_string("", "space")
        if count > MAX_PAD:
            from ..errors import ResourceError

            raise ResourceError("SPACE result exceeds string size limit")
        return out_string(" " * count, "space")

    @define("strcmp", "string", min_args=2, max_args=2,
            signature="STRCMP(a, b)", doc="-1/0/1 string comparison.",
            examples=["STRCMP('a', 'b')"])
    @null_propagating("strcmp")
    def fn_strcmp(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        a = need_string(args[0], "strcmp")
        b = need_string(args[1], "strcmp")
        return out_int((a > b) - (a < b))

    @define("hex", "string", min_args=1, max_args=1,
            signature="HEX(value)", doc="Hexadecimal representation.",
            examples=["HEX('abc')", "HEX(255)"])
    @null_propagating("hex")
    def fn_hex(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..values import SQLInteger

        value = args[0]
        if isinstance(value, SQLInteger):
            return out_string(format(value.value, "X"), "hex")
        if isinstance(value, SQLBytes):
            return out_string(value.value.hex().upper(), "hex")
        return out_string(
            need_string(value, "hex").encode("utf-8", "replace").hex().upper(), "hex"
        )

    @define("unhex", "string", min_args=1, max_args=1,
            signature="UNHEX(hexstr)", doc="Decode a hexadecimal string.",
            examples=["UNHEX('414243')"])
    @null_propagating("unhex")
    def fn_unhex(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "unhex")
        try:
            return SQLBytes(bytes.fromhex(text))
        except ValueError:
            return NULL

    @define("md5", "string", min_args=1, max_args=1,
            signature="MD5(str)", doc="MD5 digest in hex.",
            examples=["MD5('abc')"])
    @null_propagating("md5")
    def fn_md5(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        data = need_string(args[0], "md5").encode("utf-8", "replace")
        return out_string(hashlib.md5(data).hexdigest(), "md5")

    @define("sha1", "string", min_args=1, max_args=1,
            signature="SHA1(str)", doc="SHA-1 digest in hex.",
            examples=["SHA1('abc')"])
    @null_propagating("sha1")
    def fn_sha1(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        data = need_string(args[0], "sha1").encode("utf-8", "replace")
        return out_string(hashlib.sha1(data).hexdigest(), "sha1")

    @define("sha2", "string", min_args=2, max_args=2,
            signature="SHA2(str, bits)", doc="SHA-2 digest in hex.",
            examples=["SHA2('abc', 256)"])
    @null_propagating("sha2")
    def fn_sha2(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        data = need_string(args[0], "sha2").encode("utf-8", "replace")
        bits = need_int(args[1], "sha2")
        algos = {224: hashlib.sha224, 256: hashlib.sha256,
                 384: hashlib.sha384, 512: hashlib.sha512, 0: hashlib.sha256}
        algo = algos.get(bits)
        if algo is None:
            return NULL
        return out_string(algo(data).hexdigest(), "sha2")

    @define("format", "string", min_args=2, max_args=3,
            signature="FORMAT(number, decimals[, locale])",
            doc="Format a number with thousand separators and fixed decimals.",
            examples=["FORMAT(1234.5678, 2)", "FORMAT('0', 5, 'de_DE')"])
    @null_propagating("format")
    def fn_format(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        number = need_decimal(args[0], "format")
        decimals = need_int(args[1], "format")
        locale = need_string(args[2], "format") if len(args) > 2 else "en_US"
        if decimals < 0:
            decimals = 0
        if decimals > 38:
            # the reference behaviour: clamp (the MariaDB bug MDEV-23415
            # came from *not* clamping before a fixed-size format buffer)
            decimals = 38
        quant = number.quantize(
            decimal.Decimal(1).scaleb(-decimals)
            if decimals
            else decimal.Decimal(1),
            context=decimal.Context(prec=100),
        )
        text = f"{quant:,f}"
        if locale.startswith("de"):
            text = text.replace(",", "\0").replace(".", ",").replace("\0", ".")
        return out_string(text, "format")

    @define("elt", "string", min_args=2,
            signature="ELT(n, str1, str2, ...)", doc="The n-th string argument.",
            examples=["ELT(2, 'a', 'b', 'c')"])
    def fn_elt(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from .helpers import reject_star

        reject_star(args, "elt")
        if args[0].is_null:
            return NULL
        index = need_int(args[0], "elt")
        if 1 <= index < len(args):
            return args[index]
        return NULL

    @define("field", "string", min_args=2,
            signature="FIELD(str, str1, ...)",
            doc="Index of str in the following arguments (0 if absent).",
            examples=["FIELD('b', 'a', 'b')"])
    def fn_field(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from .helpers import reject_star

        reject_star(args, "field")
        if args[0].is_null:
            return out_int(0)
        needle = need_string(args[0], "field")
        for idx, candidate in enumerate(args[1:], start=1):
            if not candidate.is_null and need_string(candidate, "field") == needle:
                return out_int(idx)
        return out_int(0)

    @define("insert", "string", min_args=4, max_args=4,
            signature="INSERT(str, pos, len, newstr)",
            doc="Replace len characters at pos with newstr.",
            examples=["INSERT('hello', 2, 2, 'XY')"])
    @null_propagating("insert")
    def fn_insert(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "insert")
        pos = need_int(args[1], "insert")
        length = need_int(args[2], "insert")
        newstr = need_string(args[3], "insert")
        if pos < 1 or pos > len(text):
            return out_string(text, "insert")
        if length < 0:
            length = len(text)
        return out_string(text[: pos - 1] + newstr + text[pos - 1 + length :], "insert")

    @define("quote", "string", min_args=1, max_args=1,
            signature="QUOTE(str)", doc="SQL-quote a string literal.",
            examples=["QUOTE('abc')"])
    def fn_quote(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from .helpers import reject_star

        reject_star(args, "quote")
        if args[0].is_null:
            return SQLString("NULL")
        text = need_string(args[0], "quote")
        return out_string("'" + text.replace("\\", "\\\\").replace("'", "''") + "'", "quote")

    @define("translate", "string", min_args=3, max_args=3,
            signature="TRANSLATE(str, from, to)",
            doc="Character-wise translation.",
            examples=["TRANSLATE('abc', 'ab', 'xy')"])
    @null_propagating("translate")
    def fn_translate(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "translate")
        source = need_string(args[1], "translate")
        target = need_string(args[2], "translate")
        table = {}
        for idx, ch in enumerate(source):
            table[ord(ch)] = target[idx] if idx < len(target) else None
        return out_string(text.translate(table), "translate")

    @define("initcap", "string", min_args=1, max_args=1,
            signature="INITCAP(str)", doc="Capitalise each word.",
            examples=["INITCAP('hello world')"])
    @null_propagating("initcap")
    def fn_initcap(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(need_string(args[0], "initcap").title(), "initcap")

    @define("split_part", "string", min_args=3, max_args=3,
            signature="SPLIT_PART(str, delim, n)",
            doc="The n-th field after splitting on delim.",
            examples=["SPLIT_PART('a,b,c', ',', 2)"])
    @null_propagating("split_part")
    def fn_split_part(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "split_part")
        delim = need_string(args[1], "split_part")
        index = need_int(args[2], "split_part")
        if not delim:
            raise ValueError_("SPLIT_PART delimiter must not be empty")
        parts = text.split(delim)
        if index < 0:
            index = len(parts) + index + 1
        if 1 <= index <= len(parts):
            return out_string(parts[index - 1], "split_part")
        return out_string("", "split_part")

    @define("starts_with", "string", min_args=2, max_args=2,
            signature="STARTS_WITH(str, prefix)", doc="Prefix test.",
            examples=["STARTS_WITH('hello', 'he')"])
    @null_propagating("starts_with")
    def fn_starts_with(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from .helpers import out_bool

        return out_bool(
            need_string(args[0], "starts_with").startswith(
                need_string(args[1], "starts_with")
            )
        )

    @define("ends_with", "string", min_args=2, max_args=2,
            signature="ENDS_WITH(str, suffix)", doc="Suffix test.",
            examples=["ENDS_WITH('hello', 'lo')"])
    @null_propagating("ends_with")
    def fn_ends_with(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from .helpers import out_bool

        return out_bool(
            need_string(args[0], "ends_with").endswith(
                need_string(args[1], "ends_with")
            )
        )

    @define("to_base64", "string", min_args=1, max_args=1,
            signature="TO_BASE64(str)", doc="Base64-encode.",
            examples=["TO_BASE64('abc')"])
    @null_propagating("to_base64")
    def fn_to_base64(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import base64

        data = need_string(args[0], "to_base64").encode("utf-8", "replace")
        return out_string(base64.b64encode(data).decode("ascii"), "to_base64")

    @define("from_base64", "string", min_args=1, max_args=1,
            signature="FROM_BASE64(str)", doc="Base64-decode.",
            examples=["FROM_BASE64('YWJj')"])
    @null_propagating("from_base64")
    def fn_from_base64(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import base64

        try:
            decoded = base64.b64decode(need_string(args[0], "from_base64"), validate=True)
        except Exception:
            return NULL
        return SQLBytes(decoded)

    @define("regexp_replace", "string", min_args=3, max_args=3,
            signature="REGEXP_REPLACE(str, pattern, replacement)",
            doc="Regex search-and-replace.",
            examples=["REGEXP_REPLACE('aaa', 'a', 'b')"])
    @null_propagating("regexp_replace")
    def fn_regexp_replace(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import re

        text = need_string(args[0], "regexp_replace")
        pattern = need_string(args[1], "regexp_replace")
        replacement = need_string(args[2], "regexp_replace")
        import warnings

        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return out_string(re.sub(pattern, replacement, text), "regexp_replace")
        except re.error as exc:
            raise ValueError_(f"invalid regular expression: {exc}")

    @define("regexp_matches", "string", min_args=2, max_args=2,
            signature="REGEXP_MATCHES(str, pattern)", doc="Regex match test.",
            examples=["REGEXP_MATCHES('abc', 'b+')"])
    @null_propagating("regexp_matches")
    def fn_regexp_matches(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import re

        from .helpers import out_bool

        text = need_string(args[0], "regexp_matches")
        pattern = need_string(args[1], "regexp_matches")
        import warnings

        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return out_bool(re.search(pattern, text) is not None)
        except re.error as exc:
            raise ValueError_(f"invalid regular expression: {exc}")

    @define("soundex", "string", min_args=1, max_args=1,
            signature="SOUNDEX(str)", doc="Soundex phonetic code.",
            examples=["SOUNDEX('Robert')"])
    @null_propagating("soundex")
    def fn_soundex(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        text = need_string(args[0], "soundex").upper()
        letters = [c for c in text if c.isalpha()]
        if not letters:
            return out_string("", "soundex")
        codes = {"B": "1", "F": "1", "P": "1", "V": "1",
                 "C": "2", "G": "2", "J": "2", "K": "2", "Q": "2",
                 "S": "2", "X": "2", "Z": "2",
                 "D": "3", "T": "3", "L": "4",
                 "M": "5", "N": "5", "R": "6"}
        head = letters[0]
        out = [head]
        previous = codes.get(head, "")
        for ch in letters[1:]:
            code = codes.get(ch, "")
            if code and code != previous:
                out.append(code)
            previous = code
        return out_string(("".join(out) + "000")[:4], "soundex")

    @define("bit_length", "string", min_args=1, max_args=1,
            signature="BIT_LENGTH(str)", doc="Length in bits.",
            examples=["BIT_LENGTH('abc')"])
    @null_propagating("bit_length")
    def fn_bit_length(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(8 * len(need_string(args[0], "bit_length").encode("utf-8", "replace")))

    @define("octet_length", "string", min_args=1, max_args=1,
            signature="OCTET_LENGTH(str)", doc="Length in bytes.",
            examples=["OCTET_LENGTH('abc')"])
    @null_propagating("octet_length")
    def fn_octet_length(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(len(need_string(args[0], "octet_length").encode("utf-8", "replace")))
