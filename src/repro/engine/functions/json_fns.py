"""Reference implementations of the JSON function family (plus MariaDB-style
dynamic columns, whose PoCs appear throughout the paper's study)."""

from __future__ import annotations

from typing import Any, List

from ..context import ExecutionContext
from ..errors import TypeError_, ValueError_
from ..json_impl import (
    eval_json_path,
    json_depth,
    json_parse,
    json_serialize,
    parse_json_path,
)
from ..values import (
    NULL,
    SQLJson,
    SQLMap,
    SQLString,
    SQLValue,
)
from .helpers import need_int, need_json, need_string, null_propagating, out_bool, out_int, out_string
from .registry import FunctionRegistry


def _doc_of(ctx: ExecutionContext, value: SQLValue, name: str) -> Any:
    return need_json(ctx, value, name)


def register_json(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("json_valid", "json", min_args=1, max_args=1,
            signature="JSON_VALID(str)", doc="True when the string parses as JSON.",
            examples=["JSON_VALID('{\"a\": 1}')"])
    @null_propagating("json_valid")
    def fn_json_valid(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        if isinstance(args[0], SQLJson):
            return out_bool(True)
        try:
            json_parse(need_string(args[0], "json_valid"), stack=ctx.stack,
                       max_depth=ctx.limits.json_max_depth, function="json_valid")
            return out_bool(True)
        except ValueError_:
            return out_bool(False)

    @define("json_length", "json", min_args=1, max_args=2,
            signature="JSON_LENGTH(json[, path])",
            doc="Number of elements at the document root or path.",
            examples=["JSON_LENGTH('[1, 2, 3]')", "JSON_LENGTH('{\"a\": 1}', '$.a')"])
    @null_propagating("json_length")
    def fn_json_length(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        document = _doc_of(ctx, args[0], "json_length")
        if len(args) > 1:
            steps = parse_json_path(need_string(args[1], "json_length"))
            matches = eval_json_path(document, steps)
            if not matches:
                return NULL
            document = matches[0]
        if isinstance(document, (list, dict)):
            return out_int(len(document))
        return out_int(1)

    @define("json_depth", "json", min_args=1, max_args=1,
            signature="JSON_DEPTH(json)", doc="Maximum nesting depth.",
            examples=["JSON_DEPTH('[[1]]')"])
    @null_propagating("json_depth")
    def fn_json_depth(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(json_depth(_doc_of(ctx, args[0], "json_depth")))

    @define("json_type", "json", min_args=1, max_args=1,
            signature="JSON_TYPE(json)", doc="Type name of the root value.",
            examples=["JSON_TYPE('[1]')"])
    @null_propagating("json_type")
    def fn_json_type(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        document = _doc_of(ctx, args[0], "json_type")
        if document is None:
            return out_string("NULL", "json_type")
        if document is True or document is False:
            return out_string("BOOLEAN", "json_type")
        if isinstance(document, int):
            return out_string("INTEGER", "json_type")
        if isinstance(document, float):
            return out_string("DOUBLE", "json_type")
        if isinstance(document, str):
            return out_string("STRING", "json_type")
        if isinstance(document, list):
            return out_string("ARRAY", "json_type")
        return out_string("OBJECT", "json_type")

    @define("json_extract", "json", min_args=2,
            signature="JSON_EXTRACT(json, path, ...)",
            doc="Extract values at the given paths.",
            examples=["JSON_EXTRACT('{\"a\": [1, 2]}', '$.a[1]')"])
    @null_propagating("json_extract")
    def fn_json_extract(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        document = _doc_of(ctx, args[0], "json_extract")
        results: List[Any] = []
        for path_arg in args[1:]:
            steps = parse_json_path(need_string(path_arg, "json_extract"))
            results.extend(eval_json_path(document, steps))
        if not results:
            return NULL
        if len(results) == 1 and len(args) == 2:
            return SQLJson(results[0])
        return SQLJson(results)

    reg.alias("json_extract", "json_query", "json_value")

    @define("json_keys", "json", min_args=1, max_args=2,
            signature="JSON_KEYS(json[, path])", doc="Keys of the object.",
            examples=["JSON_KEYS('{\"a\": 1, \"b\": 2}')",
                      "JSON_KEYS('{\"a\": {\"b\": 1}}', '$.a')"])
    @null_propagating("json_keys")
    def fn_json_keys(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        document = _doc_of(ctx, args[0], "json_keys")
        if len(args) > 1:
            steps = parse_json_path(need_string(args[1], "json_keys"))
            matches = eval_json_path(document, steps)
            if not matches:
                return NULL
            document = matches[0]
        if not isinstance(document, dict):
            return NULL
        return SQLJson(list(document.keys()))

    @define("json_array", "json", min_args=0,
            signature="JSON_ARRAY(v, ...)", doc="Build a JSON array.",
            examples=["JSON_ARRAY(1, 'a', NULL)"])
    def fn_json_array(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..casting import _json_doc
        from .helpers import reject_star

        reject_star(args, "json_array")
        return SQLJson([_json_doc(ctx, a) for a in args])

    @define("json_object", "json", min_args=0,
            signature="JSON_OBJECT(k, v, ...)", doc="Build a JSON object.",
            examples=["JSON_OBJECT('a', 1)"])
    def fn_json_object(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..casting import _json_doc
        from .helpers import reject_star

        reject_star(args, "json_object")
        if len(args) % 2:
            raise TypeError_("JSON_OBJECT expects an even number of arguments")
        document = {}
        for key, value in zip(args[::2], args[1::2]):
            if key.is_null:
                raise ValueError_("JSON_OBJECT key must not be NULL")
            document[key.render()] = _json_doc(ctx, value)
        return SQLJson(document)

    @define("json_quote", "json", min_args=1, max_args=1,
            signature="JSON_QUOTE(str)", doc="Quote a string as a JSON literal.",
            examples=["JSON_QUOTE('a\"b')"])
    @null_propagating("json_quote")
    def fn_json_quote(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_string(json_serialize(need_string(args[0], "json_quote")), "json_quote")

    @define("json_unquote", "json", min_args=1, max_args=1,
            signature="JSON_UNQUOTE(json)", doc="Unquote a JSON string value.",
            examples=["JSON_UNQUOTE('\"abc\"')"])
    @null_propagating("json_unquote")
    def fn_json_unquote(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        if isinstance(args[0], SQLJson):
            document = args[0].document
            return out_string(document if isinstance(document, str)
                              else json_serialize(document), "json_unquote")
        text = need_string(args[0], "json_unquote")
        try:
            document = json_parse(text, stack=ctx.stack,
                                  max_depth=ctx.limits.json_max_depth,
                                  function="json_unquote")
        except ValueError_:
            return out_string(text, "json_unquote")
        if isinstance(document, str):
            return out_string(document, "json_unquote")
        return out_string(text, "json_unquote")

    @define("json_contains", "json", min_args=2, max_args=3,
            signature="JSON_CONTAINS(json, candidate[, path])",
            doc="Containment test.",
            examples=["JSON_CONTAINS('[1, 2]', '1')"])
    @null_propagating("json_contains")
    def fn_json_contains(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        document = _doc_of(ctx, args[0], "json_contains")
        candidate = _doc_of(ctx, args[1], "json_contains")
        if len(args) > 2:
            steps = parse_json_path(need_string(args[2], "json_contains"))
            matches = eval_json_path(document, steps)
            if not matches:
                return NULL
            document = matches[0]

        def contains(haystack: Any, needle: Any) -> bool:
            if haystack == needle:
                return True
            if isinstance(haystack, list):
                return any(contains(item, needle) for item in haystack)
            if isinstance(haystack, dict) and isinstance(needle, dict):
                return all(
                    key in haystack and contains(haystack[key], value)
                    for key, value in needle.items()
                )
            return False

        return out_bool(contains(document, candidate))

    @define("json_merge", "json", min_args=2,
            signature="JSON_MERGE(json, json, ...)", doc="Merge documents.",
            examples=["JSON_MERGE('[1]', '[2]')"])
    @null_propagating("json_merge")
    def fn_json_merge(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        merged = _doc_of(ctx, args[0], "json_merge")
        for other_arg in args[1:]:
            other = _doc_of(ctx, other_arg, "json_merge")
            if isinstance(merged, list) and isinstance(other, list):
                merged = merged + other
            elif isinstance(merged, dict) and isinstance(other, dict):
                combined = dict(merged)
                combined.update(other)
                merged = combined
            else:
                first = merged if isinstance(merged, list) else [merged]
                second = other if isinstance(other, list) else [other]
                merged = first + second
        return SQLJson(merged)

    reg.alias("json_merge", "json_merge_preserve")

    @define("json_set", "json", min_args=3, max_args=3,
            signature="JSON_SET(json, path, value)",
            doc="Set the value at a path (top-level member or index only).",
            examples=["JSON_SET('{\"a\": 1}', '$.a', 2)"])
    @null_propagating("json_set")
    def fn_json_set(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import copy

        from ..casting import _json_doc

        document = copy.deepcopy(_doc_of(ctx, args[0], "json_set"))
        steps = parse_json_path(need_string(args[1], "json_set"))
        new_value = _json_doc(ctx, args[2])
        if not steps:
            return SQLJson(new_value)
        parent_matches = eval_json_path(document, steps[:-1])
        last = steps[-1]
        for parent in parent_matches:
            if isinstance(last, str) and isinstance(parent, dict):
                parent[last] = new_value
            elif isinstance(last, int) and isinstance(parent, list):
                if 0 <= last < len(parent):
                    parent[last] = new_value
                else:
                    parent.append(new_value)
        return SQLJson(document)

    @define("json_remove", "json", min_args=2, max_args=2,
            signature="JSON_REMOVE(json, path)", doc="Remove the value at a path.",
            examples=["JSON_REMOVE('{\"a\": 1}', '$.a')"])
    @null_propagating("json_remove")
    def fn_json_remove(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        import copy

        document = copy.deepcopy(_doc_of(ctx, args[0], "json_remove"))
        steps = parse_json_path(need_string(args[1], "json_remove"))
        if not steps:
            raise ValueError_("JSON_REMOVE cannot remove the document root")
        parent_matches = eval_json_path(document, steps[:-1])
        last = steps[-1]
        for parent in parent_matches:
            if isinstance(last, str) and isinstance(parent, dict):
                parent.pop(last, None)
            elif isinstance(last, int) and isinstance(parent, list):
                if 0 <= last < len(parent):
                    parent.pop(last)
        return SQLJson(document)

    @define("json_pretty", "json", min_args=1, max_args=1,
            signature="JSON_PRETTY(json)", doc="Indented rendering.",
            examples=["JSON_PRETTY('{\"a\": [1, 2]}')"])
    @null_propagating("json_pretty")
    def fn_json_pretty(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        document = _doc_of(ctx, args[0], "json_pretty")

        def render(value: Any, indent: int) -> str:
            pad = "  " * indent
            if isinstance(value, list):
                if not value:
                    return "[]"
                inner = ",\n".join(pad + "  " + render(v, indent + 1) for v in value)
                return "[\n" + inner + "\n" + pad + "]"
            if isinstance(value, dict):
                if not value:
                    return "{}"
                inner = ",\n".join(
                    f'{pad}  {json_serialize(str(k))}: {render(v, indent + 1)}'
                    for k, v in value.items()
                )
                return "{\n" + inner + "\n" + pad + "}"
            return json_serialize(value)

        return out_string(render(document, 0), "json_pretty")

    # -- MariaDB-style dynamic columns -----------------------------------
    @define("column_create", "json", min_args=2,
            signature="COLUMN_CREATE(name, value, ...)",
            doc="Create a dynamic-column blob (modelled as a map).",
            examples=["COLUMN_CREATE('x', 1)"])
    def fn_column_create(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from .helpers import reject_star

        reject_star(args, "column_create")
        if len(args) % 2:
            raise TypeError_("COLUMN_CREATE expects name/value pairs")
        keys = []
        values = []
        for key, value in zip(args[::2], args[1::2]):
            if key.is_null:
                raise ValueError_("COLUMN_CREATE name must not be NULL")
            keys.append(SQLString(key.render()))
            values.append(value)
        return SQLMap(tuple(keys), tuple(values))

    @define("column_json", "json", min_args=1, max_args=1,
            signature="COLUMN_JSON(dyncol)",
            doc="Render a dynamic-column blob as JSON.",
            examples=["COLUMN_JSON(COLUMN_CREATE('x', 1))"])
    @null_propagating("column_json")
    def fn_column_json(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        from ..casting import _json_doc

        value = args[0]
        if not isinstance(value, SQLMap):
            raise TypeError_("COLUMN_JSON expects a dynamic-column value")
        document = {
            k.render(): _json_doc(ctx, v) for k, v in zip(value.keys, value.values)
        }
        return out_string(json_serialize(document), "column_json")

    @define("column_get", "json", min_args=2, max_args=2,
            signature="COLUMN_GET(dyncol, name)", doc="Fetch a dynamic column.",
            examples=["COLUMN_GET(COLUMN_CREATE('x', 1), 'x')"])
    @null_propagating("column_get")
    def fn_column_get(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = args[0]
        if not isinstance(value, SQLMap):
            raise TypeError_("COLUMN_GET expects a dynamic-column value")
        found = value.lookup(SQLString(need_string(args[1], "column_get")))
        return found if found is not None else NULL
