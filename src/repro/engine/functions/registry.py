"""Built-in function registry.

Each simulated dialect owns a :class:`FunctionRegistry` populated from the
shared reference implementations (the other modules in this package) and
then *patched* with that dialect's flawed implementations (the injected
bugs).  The registry also carries the metadata SOFT's collection step
consumes: a documentation entry and example expressions per function —
standing in for the real DBMS's docs and regression suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from ..errors import NameError_, TypeError_

if TYPE_CHECKING:  # pragma: no cover
    from ..context import ExecutionContext
    from ..values import SQLValue

ScalarImpl = Callable[["ExecutionContext", List["SQLValue"]], "SQLValue"]
#: aggregates receive one list per argument, each holding that argument's
#: value for every row in the group
AggregateImpl = Callable[["ExecutionContext", List[List["SQLValue"]]], "SQLValue"]

#: function families used across the study, Table 4, and Figure 1
FAMILIES = (
    "string", "math", "aggregate", "date", "json", "xml", "array", "map",
    "spatial", "inet", "condition", "casting", "system", "sequence",
)


@dataclass
class FunctionDef:
    """Definition and metadata of one built-in SQL function."""

    name: str                    # canonical lower-case name
    family: str                  # one of FAMILIES
    impl: Callable               # ScalarImpl or AggregateImpl
    min_args: int = 0
    max_args: Optional[int] = None  # None = variadic
    is_aggregate: bool = False
    pure: bool = True            # safe to constant-fold at optimization
    doc: str = ""                # documentation sentence
    signature: str = ""          # e.g. "REPEAT(str, count)"
    examples: List[str] = field(default_factory=list)  # expression texts

    def check_arity(self, count: int) -> None:
        if count < self.min_args or (self.max_args is not None and count > self.max_args):
            expected = (
                f"{self.min_args}"
                if self.max_args == self.min_args
                else f"{self.min_args}..{'*' if self.max_args is None else self.max_args}"
            )
            raise TypeError_(
                f"{self.name.upper()} expects {expected} arguments, got {count}"
            )


class FunctionRegistry:
    """Name → definition mapping with dialect patch support."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionDef] = {}

    # -- registration ----------------------------------------------------
    def register(self, definition: FunctionDef) -> None:
        self._functions[definition.name.lower()] = definition

    def define(
        self,
        name: str,
        family: str,
        *,
        min_args: int = 0,
        max_args: Optional[int] = None,
        is_aggregate: bool = False,
        pure: bool = True,
        doc: str = "",
        signature: str = "",
        examples: Optional[List[str]] = None,
    ) -> Callable[[Callable], Callable]:
        """Decorator-style registration used by the implementation modules."""

        def wrap(impl: Callable) -> Callable:
            self.register(
                FunctionDef(
                    name=name.lower(),
                    family=family,
                    impl=impl,
                    min_args=min_args,
                    max_args=max_args,
                    is_aggregate=is_aggregate,
                    pure=pure,
                    doc=doc or f"The {name.upper()} function.",
                    signature=signature or f"{name.upper()}(...)",
                    examples=list(examples or []),
                )
            )
            return impl

        return wrap

    def alias(self, existing: str, *names: str) -> None:
        """Register *names* as aliases of an existing function."""
        base = self.lookup(existing)
        for name in names:
            self.register(replace(base, name=name.lower()))

    def patch(self, name: str, impl: Callable) -> None:
        """Replace a function's implementation (dialect bug injection or
        fix), keeping metadata."""
        base = self.lookup(name)
        self.register(replace(base, impl=impl))

    def remove(self, name: str) -> None:
        self._functions.pop(name.lower(), None)

    # -- lookup ------------------------------------------------------------
    def lookup(self, name: str) -> FunctionDef:
        definition = self._functions.get(name.lower())
        if definition is None:
            raise NameError_(f"unknown function {name.upper()}")
        return definition

    def contains(self, name: str) -> bool:
        return name.lower() in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)

    def by_family(self, family: str) -> List[FunctionDef]:
        return [d for d in self._functions.values() if d.family == family]

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self) -> Iterable[FunctionDef]:
        return iter(sorted(self._functions.values(), key=lambda d: d.name))

    def copy(self) -> "FunctionRegistry":
        """Shallow copy: dialects copy the shared base then patch."""
        out = FunctionRegistry()
        out._functions = dict(self._functions)
        return out
