"""Reference implementations of the math function family."""

from __future__ import annotations

import decimal
import math
from typing import List

from ..context import ExecutionContext
from ..errors import DivisionByZeroError_, TypeError_, ValueError_
from ..values import NULL, SQLDecimal, SQLDouble, SQLInteger, SQLValue, is_numeric
from .helpers import (
    need_decimal,
    need_double,
    need_int,
    null_propagating,
    out_decimal,
    out_double,
    out_int,
    reject_star,
)
from .registry import FunctionRegistry


def _check_finite(value: float, name: str) -> float:
    if math.isinf(value) or math.isnan(value):
        raise ValueError_(f"{name.upper()} result is not finite")
    return value


def register_math(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("abs", "math", min_args=1, max_args=1, signature="ABS(x)",
            doc="Absolute value.", examples=["ABS(-5)"])
    @null_propagating("abs")
    def fn_abs(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = args[0]
        if isinstance(value, SQLInteger):
            return out_int(abs(value.value))
        if isinstance(value, SQLDouble):
            return out_double(abs(value.value))
        return out_decimal(abs(need_decimal(value, "abs")))

    @define("sign", "math", min_args=1, max_args=1, signature="SIGN(x)",
            doc="Sign of x as -1, 0, or 1.", examples=["SIGN(-2.5)"])
    @null_propagating("sign")
    def fn_sign(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_decimal(args[0], "sign")
        return out_int((value > 0) - (value < 0))

    @define("ceil", "math", min_args=1, max_args=1, signature="CEIL(x)",
            doc="Smallest integer >= x.", examples=["CEIL(1.2)"])
    @null_propagating("ceil")
    def fn_ceil(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_decimal(args[0], "ceil")
        return out_int(int(value.to_integral_value(decimal.ROUND_CEILING)))

    reg.alias("ceil", "ceiling")

    @define("floor", "math", min_args=1, max_args=1, signature="FLOOR(x)",
            doc="Largest integer <= x.", examples=["FLOOR(1.8)"])
    @null_propagating("floor")
    def fn_floor(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_decimal(args[0], "floor")
        return out_int(int(value.to_integral_value(decimal.ROUND_FLOOR)))

    @define("round", "math", min_args=1, max_args=2, signature="ROUND(x[, d])",
            doc="Round to d decimal places.", examples=["ROUND(1.256, 2)"])
    @null_propagating("round")
    def fn_round(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_decimal(args[0], "round")
        places = need_int(args[1], "round") if len(args) > 1 else 0
        if abs(places) > 100:
            raise ValueError_(f"ROUND precision {places} out of range")
        quant = decimal.Decimal(1).scaleb(-places)
        try:
            result = value.quantize(quant, rounding=decimal.ROUND_HALF_UP,
                                    context=decimal.Context(prec=200))
        except decimal.InvalidOperation:
            raise ValueError_("ROUND result out of range")
        if places <= 0:
            return out_int(int(result))
        return out_decimal(result)

    @define("truncate", "math", min_args=2, max_args=2,
            signature="TRUNCATE(x, d)", doc="Truncate toward zero to d places.",
            examples=["TRUNCATE(1.999, 1)"])
    @null_propagating("truncate")
    def fn_truncate(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_decimal(args[0], "truncate")
        places = need_int(args[1], "truncate")
        if abs(places) > 100:
            raise ValueError_(f"TRUNCATE precision {places} out of range")
        quant = decimal.Decimal(1).scaleb(-places)
        result = value.quantize(quant, rounding=decimal.ROUND_DOWN,
                                context=decimal.Context(prec=200))
        return out_decimal(result)

    reg.alias("truncate", "trunc")

    @define("sqrt", "math", min_args=1, max_args=1, signature="SQRT(x)",
            doc="Square root.", examples=["SQRT(2)"])
    @null_propagating("sqrt")
    def fn_sqrt(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_double(args[0], "sqrt")
        if value < 0:
            return NULL
        return out_double(math.sqrt(value))

    @define("exp", "math", min_args=1, max_args=1, signature="EXP(x)",
            doc="e raised to x.", examples=["EXP(1)"])
    @null_propagating("exp")
    def fn_exp(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        try:
            return out_double(math.exp(need_double(args[0], "exp")))
        except OverflowError:
            raise ValueError_("EXP result out of range")

    @define("ln", "math", min_args=1, max_args=1, signature="LN(x)",
            doc="Natural logarithm.", examples=["LN(2.718)"])
    @null_propagating("ln")
    def fn_ln(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_double(args[0], "ln")
        if value <= 0:
            return NULL
        return out_double(math.log(value))

    @define("log", "math", min_args=1, max_args=2, signature="LOG([base,] x)",
            doc="Logarithm (natural or given base).", examples=["LOG(2, 8)"])
    @null_propagating("log")
    def fn_log(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        if len(args) == 1:
            value = need_double(args[0], "log")
            if value <= 0:
                return NULL
            return out_double(math.log(value))
        base = need_double(args[0], "log")
        value = need_double(args[1], "log")
        if base <= 0 or base == 1 or value <= 0:
            return NULL
        return out_double(math.log(value, base))

    @define("log10", "math", min_args=1, max_args=1, signature="LOG10(x)",
            doc="Base-10 logarithm.", examples=["LOG10(100)"])
    @null_propagating("log10")
    def fn_log10(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_double(args[0], "log10")
        if value <= 0:
            return NULL
        return out_double(math.log10(value))

    @define("log2", "math", min_args=1, max_args=1, signature="LOG2(x)",
            doc="Base-2 logarithm.", examples=["LOG2(8)"])
    @null_propagating("log2")
    def fn_log2(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_double(args[0], "log2")
        if value <= 0:
            return NULL
        return out_double(math.log2(value))

    @define("power", "math", min_args=2, max_args=2, signature="POWER(x, y)",
            doc="x raised to y.", examples=["POWER(2, 10)"])
    @null_propagating("power")
    def fn_power(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        base = need_double(args[0], "power")
        exponent = need_double(args[1], "power")
        try:
            result = base ** exponent
        except (OverflowError, ZeroDivisionError):
            raise ValueError_("POWER result out of range")
        if isinstance(result, complex):
            return NULL
        return out_double(_check_finite(result, "power"))

    reg.alias("power", "pow")

    @define("mod", "math", min_args=2, max_args=2, signature="MOD(a, b)",
            doc="Remainder of a / b.", examples=["MOD(10, 3)"])
    @null_propagating("mod")
    def fn_mod(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        a = need_decimal(args[0], "mod")
        b = need_decimal(args[1], "mod")
        if b == 0:
            raise DivisionByZeroError_("MOD by zero")
        result = a - b * (a / b).to_integral_value(decimal.ROUND_DOWN)
        if result == result.to_integral_value():
            return out_int(int(result))
        return out_decimal(result)

    @define("pi", "math", min_args=0, max_args=0, signature="PI()",
            doc="The constant pi.", examples=["PI()"])
    def fn_pi(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_double(math.pi)

    @define("degrees", "math", min_args=1, max_args=1, signature="DEGREES(x)",
            doc="Radians to degrees.", examples=["DEGREES(3.14159)"])
    @null_propagating("degrees")
    def fn_degrees(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_double(math.degrees(need_double(args[0], "degrees")))

    @define("radians", "math", min_args=1, max_args=1, signature="RADIANS(x)",
            doc="Degrees to radians.", examples=["RADIANS(180)"])
    @null_propagating("radians")
    def fn_radians(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_double(math.radians(need_double(args[0], "radians")))

    for trig_name, trig_fn in (("sin", math.sin), ("cos", math.cos),
                               ("tan", math.tan), ("asin", math.asin),
                               ("acos", math.acos), ("atan", math.atan),
                               ("sinh", math.sinh), ("cosh", math.cosh),
                               ("tanh", math.tanh)):
        def make_trig(fname: str, fun) -> None:
            @define(fname, "math", min_args=1, max_args=1,
                    signature=f"{fname.upper()}(x)",
                    doc=f"Trigonometric {fname}.",
                    examples=[f"{fname.upper()}(0.5)"])
            @null_propagating(fname)
            def fn_trig(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
                value = need_double(args[0], fname)
                try:
                    return out_double(fun(value))
                except (ValueError, OverflowError):
                    return NULL

        make_trig(trig_name, trig_fn)

    @define("atan2", "math", min_args=2, max_args=2, signature="ATAN2(y, x)",
            doc="Two-argument arctangent.", examples=["ATAN2(1, 1)"])
    @null_propagating("atan2")
    def fn_atan2(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_double(
            math.atan2(need_double(args[0], "atan2"), need_double(args[1], "atan2"))
        )

    @define("cot", "math", min_args=1, max_args=1, signature="COT(x)",
            doc="Cotangent.", examples=["COT(1)"])
    @null_propagating("cot")
    def fn_cot(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        value = need_double(args[0], "cot")
        tangent = math.tan(value)
        if tangent == 0:
            raise DivisionByZeroError_("COT of a multiple of pi")
        return out_double(1.0 / tangent)

    @define("greatest", "math", min_args=1, signature="GREATEST(a, b, ...)",
            doc="Largest argument.", examples=["GREATEST(1, 5, 3)"])
    def fn_greatest(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "greatest")
        if any(a.is_null for a in args):
            return NULL
        from ..evaluator import compare_values

        best = args[0]
        for candidate in args[1:]:
            if compare_values(ctx, candidate, best) > 0:
                best = candidate
        return best

    @define("least", "math", min_args=1, signature="LEAST(a, b, ...)",
            doc="Smallest argument.", examples=["LEAST(1, 5, 3)"])
    def fn_least(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "least")
        if any(a.is_null for a in args):
            return NULL
        from ..evaluator import compare_values

        best = args[0]
        for candidate in args[1:]:
            if compare_values(ctx, candidate, best) < 0:
                best = candidate
        return best

    @define("gcd", "math", min_args=2, max_args=2, signature="GCD(a, b)",
            doc="Greatest common divisor.", examples=["GCD(12, 18)"])
    @null_propagating("gcd")
    def fn_gcd(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        return out_int(math.gcd(need_int(args[0], "gcd"), need_int(args[1], "gcd")))

    @define("lcm", "math", min_args=2, max_args=2, signature="LCM(a, b)",
            doc="Least common multiple.", examples=["LCM(4, 6)"])
    @null_propagating("lcm")
    def fn_lcm(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        a = need_int(args[0], "lcm")
        b = need_int(args[1], "lcm")
        if a == 0 or b == 0:
            return out_int(0)
        return out_int(abs(a * b) // math.gcd(a, b))

    @define("factorial", "math", min_args=1, max_args=1,
            signature="FACTORIAL(n)", doc="n!.", examples=["FACTORIAL(5)"])
    @null_propagating("factorial")
    def fn_factorial(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        n = need_int(args[0], "factorial")
        if n < 0:
            raise ValueError_("FACTORIAL of a negative number")
        if n > 20:
            raise ValueError_("FACTORIAL argument too large for BIGINT")
        return out_int(math.factorial(n))

    @define("bit_count", "math", min_args=1, max_args=1,
            signature="BIT_COUNT(n)", doc="Number of set bits.",
            examples=["BIT_COUNT(7)"])
    @null_propagating("bit_count")
    def fn_bit_count(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        n = need_int(args[0], "bit_count")
        return out_int(bin(n & (2**64 - 1)).count("1"))

    @define("rand", "math", min_args=0, max_args=1, pure=False,
            signature="RAND([seed])", doc="Pseudo-random double in [0, 1).",
            examples=["RAND(42)"])
    def fn_rand(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        reject_star(args, "rand")
        if args and not args[0].is_null:
            import random

            return out_double(random.Random(need_int(args[0], "rand")).random())
        return out_double(ctx.rng.random())

    reg.alias("rand", "random")
