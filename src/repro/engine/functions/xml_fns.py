"""Reference implementations of the XML function family (MySQL-style)."""

from __future__ import annotations

from typing import List

from ..context import ExecutionContext
from ..errors import ValueError_
from ..values import NULL, SQLArray, SQLString, SQLValue, SQLXml
from ..xml_impl import XmlNode, eval_xpath, parse_xpath, xml_parse
from .helpers import need_string, null_propagating, out_bool, out_string
from .registry import FunctionRegistry


def _parse_doc(ctx: ExecutionContext, value: SQLValue, name: str):
    if isinstance(value, SQLXml):
        return value.root
    return xml_parse(
        need_string(value, name),
        stack=ctx.stack,
        max_depth=ctx.limits.xml_max_depth,
        function=name,
    )


def register_xml(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("extractvalue", "xml", min_args=2, max_args=2,
            signature="EXTRACTVALUE(xml, xpath)",
            doc="Text content of the first node matching the XPath.",
            examples=["EXTRACTVALUE('<a><b>x</b></a>', '/a/b')"])
    @null_propagating("extractvalue")
    def fn_extractvalue(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        doc = _parse_doc(ctx, args[0], "extractvalue")
        steps = parse_xpath(need_string(args[1], "extractvalue"))
        matches = eval_xpath(doc, steps)
        if not matches:
            return out_string("", "extractvalue")
        first = matches[0]
        if isinstance(first, str):
            return out_string(first, "extractvalue")
        return out_string(first.all_text(), "extractvalue")

    @define("updatexml", "xml", min_args=3, max_args=3,
            signature="UPDATEXML(xml, xpath, newxml)",
            doc="Replace the matched node with a new XML fragment.",
            examples=["UPDATEXML('<a><c></c></a>', '/a/c', '<b></b>')"])
    @null_propagating("updatexml")
    def fn_updatexml(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        doc = _parse_doc(ctx, args[0], "updatexml")
        steps = parse_xpath(need_string(args[1], "updatexml"))
        replacement_doc = xml_parse(
            need_string(args[2], "updatexml"),
            stack=ctx.stack,
            max_depth=ctx.limits.xml_max_depth,
            function="updatexml",
        )
        matches = eval_xpath(doc, steps)
        nodes = [m for m in matches if isinstance(m, XmlNode)]
        if len(nodes) != 1:
            return out_string(doc.serialize(), "updatexml")
        target = nodes[0]

        def replace_in(parent_children: List[XmlNode]) -> bool:
            for idx, child in enumerate(parent_children):
                if child is target:
                    parent_children[idx : idx + 1] = replacement_doc.roots
                    return True
                if replace_in(child.children):
                    return True
            return False

        replace_in(doc.roots)
        if target in doc.roots:
            idx = doc.roots.index(target)
            doc.roots[idx : idx + 1] = replacement_doc.roots
        return out_string(doc.serialize(), "updatexml")

    @define("xml_valid", "xml", min_args=1, max_args=1,
            signature="XML_VALID(str)", doc="True when the string parses as XML.",
            examples=["XML_VALID('<a></a>')"])
    @null_propagating("xml_valid")
    def fn_xml_valid(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        try:
            _parse_doc(ctx, args[0], "xml_valid")
            return out_bool(True)
        except ValueError_:
            return out_bool(False)

    @define("xpath", "xml", min_args=2, max_args=2,
            signature="XPATH(xpath, xml)",
            doc="All matches of the XPath as an array of serialised nodes.",
            examples=["XPATH('/a/b', '<a><b>1</b><b>2</b></a>')"])
    @null_propagating("xpath")
    def fn_xpath(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        steps = parse_xpath(need_string(args[0], "xpath"))
        doc = _parse_doc(ctx, args[1], "xpath")
        matches = eval_xpath(doc, steps)
        items = tuple(
            SQLString(m if isinstance(m, str) else m.serialize()) for m in matches
        )
        return SQLArray(items)

    @define("xmlconcat", "xml", min_args=1,
            signature="XMLCONCAT(xml, ...)", doc="Concatenate XML fragments.",
            examples=["XMLCONCAT('<a/>', '<b/>')"])
    @null_propagating("xmlconcat")
    def fn_xmlconcat(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        parts = []
        for arg in args:
            doc = _parse_doc(ctx, arg, "xmlconcat")
            parts.append(doc.serialize())
        return out_string("".join(parts), "xmlconcat")

    @define("xmlelement", "xml", min_args=1, max_args=2,
            signature="XMLELEMENT(name[, content])", doc="Build an element.",
            examples=["XMLELEMENT('a', 'text')"])
    @null_propagating("xmlelement")
    def fn_xmlelement(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
        tag = need_string(args[0], "xmlelement")
        if not tag or not all(c.isalnum() or c in "_-." for c in tag):
            raise ValueError_(f"invalid XML element name {tag!r}")
        content = need_string(args[1], "xmlelement") if len(args) > 1 else ""
        return out_string(f"<{tag}>{content}</{tag}>", "xmlelement")
