"""Argument-handling helpers shared by the built-in implementations.

The *reference* implementations are deliberately careful: they validate
argument counts, types, and ranges, and raise handled
:class:`~repro.engine.errors.SQLError` subclasses for anything off the rails
— this is the behaviour a fixed DBMS exhibits.  Dialects inject bugs by
replacing individual implementations with flawed variants that skip exactly
one of these checks.
"""

from __future__ import annotations

import decimal
from typing import Callable, List, Optional

from ..context import ExecutionContext
from ..errors import TypeError_, ValueError_
from ..values import (
    NULL,
    SQLArray,
    SQLBoolean,
    SQLBytes,
    SQLDate,
    SQLDateTime,
    SQLDecimal,
    SQLDouble,
    SQLInet,
    SQLInteger,
    SQLJson,
    SQLMap,
    SQLGeometry,
    SQLRow,
    SQLStarMarker,
    SQLString,
    SQLTime,
    SQLValue,
    SQLXml,
    is_numeric,
    numeric_as_decimal,
)

#: maximum string a well-behaved function will materialise
MAX_FUNC_STRING = 8 * 1024 * 1024


def reject_star(args: List[SQLValue], name: str) -> None:
    """Correct implementations refuse the smuggled ``*`` argument."""
    for arg in args:
        if isinstance(arg, SQLStarMarker):
            raise TypeError_(f"{name.upper()} does not accept '*' as an argument")


def any_null(args: List[SQLValue]) -> bool:
    return any(a.is_null for a in args)


def need_string(value: SQLValue, name: str) -> str:
    """Coerce to string the way most engines do for string functions."""
    if isinstance(value, SQLStarMarker):
        raise TypeError_(f"{name.upper()}: '*' is not a string")
    if isinstance(value, (SQLRow,)):
        raise TypeError_(f"{name.upper()}: ROW value where a string is expected")
    if value.is_null:
        raise TypeError_(f"{name.upper()}: NULL where a string is expected")
    if isinstance(value, SQLBytes):
        return value.value.decode("utf-8", "replace")
    return value.render()


def need_int(value: SQLValue, name: str) -> int:
    if isinstance(value, SQLStarMarker):
        raise TypeError_(f"{name.upper()}: '*' is not a number")
    if value.is_null:
        raise TypeError_(f"{name.upper()}: NULL where an integer is expected")
    if isinstance(value, SQLString):
        try:
            return int(decimal.Decimal(value.value.strip() or "0"))
        except decimal.InvalidOperation:
            raise ValueError_(f"{name.upper()}: invalid integer {value.value!r}")
    if not is_numeric(value):
        raise TypeError_(f"{name.upper()}: {value.type_name} where an integer is expected")
    return int(numeric_as_decimal(value).to_integral_value(decimal.ROUND_DOWN))


def need_decimal(value: SQLValue, name: str) -> decimal.Decimal:
    if isinstance(value, SQLStarMarker):
        raise TypeError_(f"{name.upper()}: '*' is not a number")
    if value.is_null:
        raise TypeError_(f"{name.upper()}: NULL where a number is expected")
    if isinstance(value, SQLString):
        try:
            return decimal.Decimal(value.value.strip() or "0")
        except decimal.InvalidOperation:
            return decimal.Decimal(0)
    return numeric_as_decimal(value)


def need_double(value: SQLValue, name: str) -> float:
    return float(need_decimal(value, name))


def need_bool(value: SQLValue, name: str) -> bool:
    if value.is_null:
        raise TypeError_(f"{name.upper()}: NULL where a boolean is expected")
    return value.as_bool()


def need_json(ctx: ExecutionContext, value: SQLValue, name: str):
    """Return the parsed JSON document for a JSON or string argument."""
    from ..json_impl import json_parse

    if isinstance(value, SQLJson):
        return value.document
    if isinstance(value, SQLString):
        return json_parse(
            value.value,
            stack=ctx.stack,
            max_depth=ctx.limits.json_max_depth,
            function=name,
        )
    raise TypeError_(f"{name.upper()}: {value.type_name} where JSON is expected")


def need_array(value: SQLValue, name: str) -> SQLArray:
    if isinstance(value, SQLArray):
        return value
    raise TypeError_(f"{name.upper()}: {value.type_name} where an array is expected")


def need_geometry(ctx: ExecutionContext, value: SQLValue, name: str):
    """Return the geometry shape for a geometry/WKT-string argument."""
    from ..geo import wkt_parse

    if isinstance(value, SQLGeometry):
        return value.shape
    if isinstance(value, SQLString):
        return wkt_parse(value.value)
    if isinstance(value, SQLBytes):
        from ..geo import geometry_from_bytes

        return geometry_from_bytes(value.value, validate=True)
    raise TypeError_(f"{name.upper()}: {value.type_name} where a geometry is expected")


def out_string(text: str, name: str) -> SQLString:
    """Wrap a produced string, enforcing the sane-size cap."""
    if len(text) > MAX_FUNC_STRING:
        from ..errors import ResourceError

        raise ResourceError(f"{name.upper()} result exceeds string size limit")
    return SQLString(text)


def out_int(value: int) -> SQLInteger:
    return SQLInteger(value)


def out_decimal(value: decimal.Decimal) -> SQLDecimal:
    return SQLDecimal(value)


def out_double(value: float) -> SQLDouble:
    if value != value:  # NaN
        return SQLDouble(float("nan"))
    return SQLDouble(value)


def out_bool(flag: bool) -> SQLBoolean:
    from ..values import FALSE, TRUE

    return TRUE if flag else FALSE


def null_propagating(name: str) -> Callable:
    """Decorator: return NULL when any argument is NULL (the common SQL
    convention), and reject the ``*`` marker before the body runs."""

    def wrapper(impl: Callable) -> Callable:
        def guarded(ctx: ExecutionContext, args: List[SQLValue]) -> SQLValue:
            reject_star(args, name)
            if any_null(args):
                return NULL
            return impl(ctx, args)

        guarded.__name__ = f"fn_{name}"
        guarded.__qualname__ = f"fn_{name}"
        return guarded

    return wrapper


def nonnull_values(column: List[SQLValue]) -> List[SQLValue]:
    """Aggregate helper: drop NULLs (and reject stray stars)."""
    return [v for v in column if not v.is_null and not isinstance(v, SQLStarMarker)]
