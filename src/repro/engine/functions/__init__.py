"""Shared reference implementations of built-in SQL functions.

:func:`build_base_registry` assembles the full (correct) function library;
each dialect copies it, renames/removes functions to match its inventory,
and patches in its injected bugs.
"""

from .registry import FAMILIES, FunctionDef, FunctionRegistry
from .aggregate_fns import register_aggregate
from .array_fns import register_array
from .date_fns import register_date
from .json_fns import register_json
from .map_fns import register_map
from .math_fns import register_math
from .misc_fns import (
    register_casting,
    register_condition,
    register_inet,
    register_sequence,
    register_system,
)
from .spatial_fns import register_spatial
from .string_fns import register_string
from .xml_fns import register_xml

__all__ = [
    "FAMILIES",
    "FunctionDef",
    "FunctionRegistry",
    "build_base_registry",
]


def build_base_registry() -> FunctionRegistry:
    """The complete reference function library (every family)."""
    registry = FunctionRegistry()
    register_string(registry)
    register_math(registry)
    register_aggregate(registry)
    register_date(registry)
    register_json(registry)
    register_xml(registry)
    register_array(registry)
    register_map(registry)
    register_spatial(registry)
    register_inet(registry)
    register_condition(registry)
    register_casting(registry)
    register_system(registry)
    register_sequence(registry)
    return registry
