"""Reference implementations of the aggregate function family.

Aggregate implementations receive one list per argument; each list holds
that argument's value for every row in the group (``COUNT(*)`` receives the
star marker once per row).  The paper singles aggregates out as the second
most bug-prone family (Figure 1) because they must accept every data type.
"""

from __future__ import annotations

import decimal
from typing import List

from ..context import ExecutionContext
from ..errors import TypeError_, ValueError_
from ..values import (
    NULL,
    SQLArray,
    SQLDecimal,
    SQLDouble,
    SQLInteger,
    SQLJson,
    SQLRow,
    SQLStarMarker,
    SQLString,
    SQLValue,
    is_numeric,
    numeric_as_decimal,
)
from .helpers import nonnull_values, out_bool, out_decimal, out_double, out_int, out_string
from .registry import FunctionRegistry

Columns = List[List[SQLValue]]


def _numeric_column(column: List[SQLValue], name: str) -> List[decimal.Decimal]:
    out: List[decimal.Decimal] = []
    for value in column:
        if value.is_null:
            continue
        if isinstance(value, SQLStarMarker):
            raise TypeError_(f"{name.upper()} cannot aggregate '*'")
        if isinstance(value, SQLString):
            try:
                out.append(decimal.Decimal(value.value.strip() or "0"))
            except decimal.InvalidOperation:
                out.append(decimal.Decimal(0))
            continue
        if not is_numeric(value):
            raise TypeError_(f"{name.upper()} cannot aggregate {value.type_name}")
        out.append(numeric_as_decimal(value))
    return out


def register_aggregate(reg: FunctionRegistry) -> None:
    define = reg.define

    @define("count", "aggregate", min_args=0, max_args=1, is_aggregate=True,
            signature="COUNT(*) | COUNT(expr)",
            doc="Row count (ignoring NULLs when given an expression).",
            examples=["COUNT(*)", "COUNT(1)"])
    def fn_count(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        if not columns:
            return out_int(0)
        column = columns[0]
        if column and isinstance(column[0], SQLStarMarker):
            return out_int(len(column))
        return out_int(len(nonnull_values(column)))

    @define("sum", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="SUM(expr)", doc="Sum of non-NULL values.",
            examples=["SUM(2)"])
    def fn_sum(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = _numeric_column(columns[0], "sum")
        if not values:
            return NULL
        total = sum(values, decimal.Decimal(0))
        if total == total.to_integral_value() and all(
            v == v.to_integral_value() for v in values
        ):
            return out_int(int(total))
        return out_decimal(total)

    @define("avg", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="AVG(expr)", doc="Average of non-NULL values.",
            examples=["AVG(1.5)"])
    def fn_avg(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = _numeric_column(columns[0], "avg")
        if not values:
            return NULL
        total = sum(values, decimal.Decimal(0))
        try:
            return out_decimal(
                decimal.Context(prec=65).divide(total, decimal.Decimal(len(values)))
            )
        except decimal.InvalidOperation:
            raise ValueError_("AVG result out of range")

    @define("min", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="MIN(expr)", doc="Minimum of non-NULL values.",
            examples=["MIN(3)"])
    def fn_min(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        from ..evaluator import compare_values

        values = nonnull_values(columns[0])
        if not values:
            return NULL
        best = values[0]
        for candidate in values[1:]:
            if compare_values(ctx, candidate, best) < 0:
                best = candidate
        return best

    @define("max", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="MAX(expr)", doc="Maximum of non-NULL values.",
            examples=["MAX(3)", "MAX('FF')"])
    def fn_max(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        from ..evaluator import compare_values

        values = nonnull_values(columns[0])
        if not values:
            return NULL
        best = values[0]
        for candidate in values[1:]:
            if compare_values(ctx, candidate, best) > 0:
                best = candidate
        return best

    @define("group_concat", "aggregate", min_args=1, max_args=2, is_aggregate=True,
            signature="GROUP_CONCAT(expr[, sep])",
            doc="Concatenate non-NULL values with a separator.",
            examples=["GROUP_CONCAT('a')"])
    def fn_group_concat(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = nonnull_values(columns[0])
        if not values:
            return NULL
        separator = ","
        if len(columns) > 1 and columns[1] and not columns[1][0].is_null:
            separator = columns[1][0].render()
        return out_string(separator.join(v.render() for v in values), "group_concat")

    reg.alias("group_concat", "string_agg", "listagg")

    @define("stddev", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="STDDEV(expr)", doc="Population standard deviation.",
            examples=["STDDEV(1)"])
    def fn_stddev(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = [float(v) for v in _numeric_column(columns[0], "stddev")]
        if not values:
            return NULL
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return out_double(variance ** 0.5)

    reg.alias("stddev", "stddev_pop", "std")

    @define("variance", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="VARIANCE(expr)", doc="Population variance.",
            examples=["VARIANCE(1)"])
    def fn_variance(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = [float(v) for v in _numeric_column(columns[0], "variance")]
        if not values:
            return NULL
        mean = sum(values) / len(values)
        return out_double(sum((v - mean) ** 2 for v in values) / len(values))

    reg.alias("variance", "var_pop")

    @define("median", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="MEDIAN(expr)", doc="Median of non-NULL values.",
            examples=["MEDIAN(2)"])
    def fn_median(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = sorted(float(v) for v in _numeric_column(columns[0], "median"))
        if not values:
            return NULL
        mid = len(values) // 2
        if len(values) % 2:
            return out_double(values[mid])
        return out_double((values[mid - 1] + values[mid]) / 2)

    @define("bit_and", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="BIT_AND(expr)", doc="Bitwise AND of all values.",
            examples=["BIT_AND(7)"])
    def fn_bit_and(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = _numeric_column(columns[0], "bit_and")
        if not values:
            return out_int((1 << 64) - 1)
        acc = (1 << 64) - 1
        for value in values:
            acc &= int(value)
        return out_int(acc)

    @define("bit_or", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="BIT_OR(expr)", doc="Bitwise OR of all values.",
            examples=["BIT_OR(1)"])
    def fn_bit_or(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = _numeric_column(columns[0], "bit_or")
        acc = 0
        for value in values:
            acc |= int(value)
        return out_int(acc)

    @define("bit_xor", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="BIT_XOR(expr)", doc="Bitwise XOR of all values.",
            examples=["BIT_XOR(3)"])
    def fn_bit_xor(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = _numeric_column(columns[0], "bit_xor")
        acc = 0
        for value in values:
            acc ^= int(value)
        return out_int(acc)

    @define("bool_and", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="BOOL_AND(expr)", doc="TRUE when every value is true.",
            examples=["BOOL_AND(TRUE)"])
    def fn_bool_and(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = nonnull_values(columns[0])
        if not values:
            return NULL
        return out_bool(all(v.as_bool() for v in values))

    reg.alias("bool_and", "every")

    @define("bool_or", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="BOOL_OR(expr)", doc="TRUE when any value is true.",
            examples=["BOOL_OR(FALSE)"])
    def fn_bool_or(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = nonnull_values(columns[0])
        if not values:
            return NULL
        return out_bool(any(v.as_bool() for v in values))

    @define("array_agg", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="ARRAY_AGG(expr)", doc="Collect values into an array.",
            examples=["ARRAY_AGG(1)"])
    def fn_array_agg(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = [v for v in columns[0] if not isinstance(v, SQLStarMarker)]
        return SQLArray(tuple(values))

    reg.alias("array_agg", "grouparray")

    @define("json_arrayagg", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="JSON_ARRAYAGG(expr)", doc="Collect values into a JSON array.",
            examples=["JSON_ARRAYAGG(1)"])
    def fn_json_arrayagg(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        from ..casting import _json_doc

        docs = [_json_doc(ctx, v) for v in columns[0] if not isinstance(v, SQLStarMarker)]
        return SQLJson(docs)

    @define("json_objectagg", "aggregate", min_args=2, max_args=2, is_aggregate=True,
            signature="JSON_OBJECTAGG(key, value)",
            doc="Collect key/value pairs into a JSON object.",
            examples=["JSON_OBJECTAGG('k', 1)"])
    def fn_json_objectagg(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        from ..casting import _json_doc

        keys, values = columns[0], columns[1]
        document = {}
        for key, value in zip(keys, values):
            if key.is_null or isinstance(key, SQLStarMarker):
                raise ValueError_("JSON_OBJECTAGG key must not be NULL")
            document[key.render()] = _json_doc(ctx, value)
        return SQLJson(document)

    reg.alias("json_objectagg", "jsonb_object_agg", "json_object_agg")

    @define("any_value", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="ANY_VALUE(expr)", doc="An arbitrary value from the group.",
            examples=["ANY_VALUE(1)"])
    def fn_any_value(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = nonnull_values(columns[0])
        return values[0] if values else NULL

    @define("count_distinct", "aggregate", min_args=1, max_args=1, is_aggregate=True,
            signature="COUNT_DISTINCT(expr)", doc="Count of distinct non-NULL values.",
            examples=["COUNT_DISTINCT(1)"])
    def fn_count_distinct(ctx: ExecutionContext, columns: Columns) -> SQLValue:
        values = nonnull_values(columns[0])
        return out_int(len({v.sort_key() for v in values}))
