"""Runtime value model for the simulated DBMS engines.

Every value flowing through the evaluator is a :class:`SQLValue`.  The model
covers the data types the paper's bugs exercise: fixed-width integers,
arbitrary-precision decimals, doubles, strings, bytes, booleans, dates and
times (hand-rolled proleptic-Gregorian arithmetic — no reliance on Python's
``datetime`` range), intervals, arrays, maps, rows, JSON and XML documents,
IPv4/IPv6 addresses, and WKT geometries.

Conversions that SQL performs implicitly live in
:mod:`repro.engine.casting`; this module only defines the values, their
rendering, and their comparison semantics.
"""

from __future__ import annotations

import decimal
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from .errors import TypeError_, ValueError_

#: Arbitrary-precision context for decimal computation.  Real DBMSs cap
#: decimal precision (MySQL: 65 digits); dialects enforce their own caps in
#: casting — the engine context is simply "wide enough".
DECIMAL_CONTEXT = decimal.Context(prec=200)


class SQLValue:
    """Base class for all runtime values."""

    type_name = "unknown"

    @property
    def is_null(self) -> bool:
        return False

    # -- conversions used by the evaluator --------------------------------
    def as_bool(self) -> bool:
        raise TypeError_(f"cannot use {self.type_name} as a boolean")

    def render(self) -> str:
        """Client-visible textual rendering (what a result row shows)."""
        raise NotImplementedError

    def sort_key(self) -> Tuple:
        """A tuple usable to order/group heterogeneous values."""
        return (self.type_name, self.render())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SQLValue) and self.sort_key() == other.sort_key()

    def __hash__(self) -> int:
        return hash(self.sort_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.render()!r}>"


class SQLNull(SQLValue):
    """The SQL NULL value (one per engine is fine; identity not required)."""

    type_name = "null"

    @property
    def is_null(self) -> bool:
        return True

    def as_bool(self) -> bool:
        return False

    def render(self) -> str:
        return "NULL"

    def sort_key(self) -> Tuple:
        return ("\x00null",)


NULL = SQLNull()


@dataclass(frozen=True, eq=False)
class SQLBoolean(SQLValue):
    value: bool
    type_name = "boolean"

    def as_bool(self) -> bool:
        return self.value

    def render(self) -> str:
        return "true" if self.value else "false"

    def sort_key(self) -> Tuple:
        return ("bool", self.value)


TRUE = SQLBoolean(True)
FALSE = SQLBoolean(False)


@dataclass(frozen=True, eq=False)
class SQLInteger(SQLValue):
    """A 64-bit-style integer.  Width enforcement happens in casting."""

    value: int
    type_name = "integer"

    def as_bool(self) -> bool:
        return self.value != 0

    def render(self) -> str:
        return str(self.value)

    def sort_key(self) -> Tuple:
        return ("num", decimal.Decimal(self.value))


@dataclass(frozen=True, eq=False)
class SQLDecimal(SQLValue):
    """Arbitrary-precision decimal."""

    value: decimal.Decimal
    type_name = "decimal"

    @classmethod
    def from_text(cls, text: str) -> "SQLDecimal":
        try:
            return cls(DECIMAL_CONTEXT.create_decimal(text))
        except decimal.InvalidOperation as exc:
            raise ValueError_(f"invalid decimal literal {text!r}") from exc

    @property
    def integer_digits(self) -> int:
        """Digits left of the decimal point (at least 1 for '0')."""
        sign, digits, exponent = self.value.as_tuple()
        if isinstance(exponent, str):  # NaN / Inf
            return 1
        return max(len(digits) + exponent, 1)

    @property
    def fraction_digits(self) -> int:
        _, _, exponent = self.value.as_tuple()
        if isinstance(exponent, str):
            return 0
        return max(-exponent, 0)

    @property
    def total_digits(self) -> int:
        return self.integer_digits + self.fraction_digits

    def as_bool(self) -> bool:
        return self.value != 0

    def render(self) -> str:
        return format(self.value, "f")

    def sort_key(self) -> Tuple:
        return ("num", self.value)


@dataclass(frozen=True, eq=False)
class SQLDouble(SQLValue):
    value: float
    type_name = "double"

    def as_bool(self) -> bool:
        return self.value != 0.0

    def render(self) -> str:
        return repr(self.value)

    def sort_key(self) -> Tuple:
        try:
            return ("num", decimal.Decimal(self.value))
        except (decimal.InvalidOperation, OverflowError, ValueError):
            return ("num-special", repr(self.value))


@dataclass(frozen=True, eq=False)
class SQLString(SQLValue):
    value: str
    type_name = "string"

    def as_bool(self) -> bool:
        return bool(self.value) and self.value not in ("0", "false", "FALSE")

    def render(self) -> str:
        return self.value

    def sort_key(self) -> Tuple:
        return ("str", self.value)


@dataclass(frozen=True, eq=False)
class SQLBytes(SQLValue):
    value: bytes
    type_name = "bytes"

    def as_bool(self) -> bool:
        return bool(self.value)

    def render(self) -> str:
        return "0x" + self.value.hex().upper()

    def sort_key(self) -> Tuple:
        return ("bytes", self.value)


# ---------------------------------------------------------------------------
# temporal values — hand-rolled civil calendar (Howard Hinnant's algorithms)
# ---------------------------------------------------------------------------
def days_from_civil(year: int, month: int, day: int) -> int:
    """Days since 1970-01-01 for a proleptic-Gregorian civil date."""
    year -= month <= 2
    era = (year if year >= 0 else year - 399) // 400
    yoe = year - era * 400
    doy = (153 * (month + (-3 if month > 2 else 9)) + 2) // 5 + day - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    return era * 146097 + doe - 719468


def civil_from_days(days: int) -> Tuple[int, int, int]:
    """Inverse of :func:`days_from_civil`."""
    days += 719468
    era = (days if days >= 0 else days - 146096) // 146097
    doe = days - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    year = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    day = doy - (153 * mp + 2) // 5 + 1
    month = mp + (3 if mp < 10 else -9)
    return year + (month <= 2), month, day


def is_leap_year(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def days_in_month(year: int, month: int) -> int:
    if month == 2 and is_leap_year(year):
        return 29
    return DAYS_IN_MONTH[month - 1]


def validate_civil(year: int, month: int, day: int) -> None:
    if not 1 <= month <= 12:
        raise ValueError_(f"month {month} out of range")
    if not 1 <= day <= days_in_month(year, month):
        raise ValueError_(f"day {day} out of range for {year}-{month:02d}")
    if not -9999 <= year <= 9999:
        raise ValueError_(f"year {year} out of range")


@dataclass(frozen=True, eq=False)
class SQLDate(SQLValue):
    year: int
    month: int
    day: int
    type_name = "date"

    @classmethod
    def from_days(cls, days: int) -> "SQLDate":
        y, m, d = civil_from_days(days)
        if not -9999 <= y <= 9999:
            raise ValueError_(f"date out of range ({days} days from epoch)")
        return cls(y, m, d)

    def to_days(self) -> int:
        return days_from_civil(self.year, self.month, self.day)

    def as_bool(self) -> bool:
        return True

    def render(self) -> str:
        return f"{self.year:04d}-{self.month:02d}-{self.day:02d}"

    def sort_key(self) -> Tuple:
        return ("date", self.to_days(), 0)


@dataclass(frozen=True, eq=False)
class SQLTime(SQLValue):
    hour: int
    minute: int
    second: int
    microsecond: int = 0
    type_name = "time"

    def total_microseconds(self) -> int:
        return ((self.hour * 60 + self.minute) * 60 + self.second) * 1_000_000 + self.microsecond

    def as_bool(self) -> bool:
        return True

    def render(self) -> str:
        base = f"{self.hour:02d}:{self.minute:02d}:{self.second:02d}"
        if self.microsecond:
            base += f".{self.microsecond:06d}".rstrip("0")
        return base

    def sort_key(self) -> Tuple:
        return ("time", self.total_microseconds())


@dataclass(frozen=True, eq=False)
class SQLDateTime(SQLValue):
    date: SQLDate
    time: SQLTime
    type_name = "datetime"

    def as_bool(self) -> bool:
        return True

    def render(self) -> str:
        return f"{self.date.render()} {self.time.render()}"

    def sort_key(self) -> Tuple:
        return ("date", self.date.to_days(), self.time.total_microseconds())


@dataclass(frozen=True, eq=False)
class SQLInterval(SQLValue):
    """Mixed-unit interval: months are kept separate because a month has no
    fixed length in days."""

    months: int = 0
    days: int = 0
    microseconds: int = 0
    type_name = "interval"

    def as_bool(self) -> bool:
        return bool(self.months or self.days or self.microseconds)

    def render(self) -> str:
        parts = []
        if self.months:
            parts.append(f"{self.months} mon")
        if self.days:
            parts.append(f"{self.days} day")
        if self.microseconds or not parts:
            parts.append(f"{self.microseconds / 1_000_000:g} sec")
        return " ".join(parts)

    def sort_key(self) -> Tuple:
        approx = (self.months * 30 + self.days) * 86_400_000_000 + self.microseconds
        return ("interval", approx)


# ---------------------------------------------------------------------------
# containers
# ---------------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class SQLArray(SQLValue):
    items: Tuple[SQLValue, ...]
    type_name = "array"

    @classmethod
    def of(cls, items: Sequence[SQLValue]) -> "SQLArray":
        return cls(tuple(items))

    def as_bool(self) -> bool:
        return bool(self.items)

    def render(self) -> str:
        return "[" + ", ".join(render_quoted(v) for v in self.items) + "]"

    def sort_key(self) -> Tuple:
        return ("array", tuple(v.sort_key() for v in self.items))


@dataclass(frozen=True, eq=False)
class SQLMap(SQLValue):
    keys: Tuple[SQLValue, ...]
    values: Tuple[SQLValue, ...]
    type_name = "map"

    def as_bool(self) -> bool:
        return bool(self.keys)

    def lookup(self, key: SQLValue) -> Optional[SQLValue]:
        for k, v in zip(self.keys, self.values):
            if k == key:
                return v
        return None

    def render(self) -> str:
        pairs = ", ".join(
            f"{render_quoted(k)}: {render_quoted(v)}"
            for k, v in zip(self.keys, self.values)
        )
        return "{" + pairs + "}"

    def sort_key(self) -> Tuple:
        return (
            "map",
            tuple(k.sort_key() for k in self.keys),
            tuple(v.sort_key() for v in self.values),
        )


@dataclass(frozen=True, eq=False)
class SQLRow(SQLValue):
    """The ROW composite type.

    Note: most dialects do *not* define ordering for rows — the paper's
    MDEV-14596 crash came from comparing ROWs.  Comparison helpers in the
    evaluator must check :attr:`comparable` explicitly; the reference
    implementations raise :class:`TypeError_` when it is False.
    """

    items: Tuple[SQLValue, ...]
    type_name = "row"
    comparable = False

    def as_bool(self) -> bool:
        raise TypeError_("cannot use a ROW value as a boolean")

    def render(self) -> str:
        return "(" + ", ".join(render_quoted(v) for v in self.items) + ")"

    def sort_key(self) -> Tuple:
        return ("row", tuple(v.sort_key() for v in self.items))


# ---------------------------------------------------------------------------
# documents
# ---------------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class SQLJson(SQLValue):
    """A parsed JSON document (Python structure of dict/list/str/num/bool/None)."""

    document: Any
    type_name = "json"

    def as_bool(self) -> bool:
        return bool(self.document)

    def render(self) -> str:
        from .json_impl import json_serialize

        return json_serialize(self.document)

    def sort_key(self) -> Tuple:
        return ("json", self.render())


@dataclass(frozen=True, eq=False)
class SQLXml(SQLValue):
    """A parsed XML document (root :class:`repro.engine.xml_impl.XmlNode`)."""

    root: Any
    type_name = "xml"

    def as_bool(self) -> bool:
        return True

    def render(self) -> str:
        return self.root.serialize()

    def sort_key(self) -> Tuple:
        return ("xml", self.render())


@dataclass(frozen=True, eq=False)
class SQLInet(SQLValue):
    """An IPv4 or IPv6 address held as its packed byte form."""

    packed: bytes  # 4 or 16 bytes
    type_name = "inet"

    @property
    def is_v6(self) -> bool:
        return len(self.packed) == 16

    def as_bool(self) -> bool:
        return True

    def render(self) -> str:
        if not self.is_v6:
            return ".".join(str(b) for b in self.packed)
        groups = [
            f"{(self.packed[i] << 8) | self.packed[i + 1]:x}" for i in range(0, 16, 2)
        ]
        return ":".join(groups)

    def sort_key(self) -> Tuple:
        return ("inet", self.packed)


@dataclass(frozen=True, eq=False)
class SQLGeometry(SQLValue):
    """A geometry value (see :mod:`repro.engine.geo`)."""

    shape: Any
    type_name = "geometry"

    def as_bool(self) -> bool:
        return True

    def render(self) -> str:
        return self.shape.to_wkt()

    def sort_key(self) -> Tuple:
        return ("geometry", self.render())


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def render_quoted(value: SQLValue) -> str:
    """Render nested values the way container renderings quote strings."""
    if isinstance(value, SQLString):
        return "'" + value.value.replace("'", "''") + "'"
    return value.render()


def is_numeric(value: SQLValue) -> bool:
    return isinstance(value, (SQLInteger, SQLDecimal, SQLDouble, SQLBoolean))


def numeric_as_decimal(value: SQLValue) -> decimal.Decimal:
    """Widen any numeric value to Decimal for mixed arithmetic."""
    if isinstance(value, SQLInteger):
        return decimal.Decimal(value.value)
    if isinstance(value, SQLDecimal):
        return value.value
    if isinstance(value, SQLDouble):
        try:
            return decimal.Decimal(repr(value.value))
        except decimal.InvalidOperation as exc:
            raise ValueError_(f"non-finite double {value.value!r}") from exc
    if isinstance(value, SQLBoolean):
        return decimal.Decimal(1 if value.value else 0)
    raise TypeError_(f"{value.type_name} is not numeric")


class SQLStarMarker(SQLValue):
    """The bare ``*`` smuggled into an argument position.

    ``COUNT(*)`` consumes the star before evaluation; any other function
    receiving one must reject it (``TypeError_``).  The paper's Virtuoso
    CONTAINS crash (Listing 7) is exactly a function that forgot to."""

    type_name = "star"

    def as_bool(self) -> bool:
        raise TypeError_("'*' is not a value")

    def render(self) -> str:
        return "*"

    def sort_key(self) -> Tuple:
        return ("star",)


STAR_MARKER = SQLStarMarker()
