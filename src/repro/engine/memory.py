"""Simulated process-memory model.

The paper's bugs are C/C++ memory-safety defects: miscomputed allocation
sizes, missing NULL checks, dangling pointers, unbounded recursion.  To make
the injected bugs *behave* like the originals (rather than being bare
``raise`` statements), the dialect implementations manipulate this model:

* :class:`Heap` hands out bounded :class:`Buffer` objects; writing or
  reading past a buffer's end raises :class:`HeapBufferOverflow`.
* :class:`GlobalBuffer` models fixed-size static arrays; overruns raise
  :class:`GlobalBufferOverflow`.
* :class:`Pointer` models nullable / freeable pointers; dereferencing NULL
  raises :class:`NullPointerDereference`, dereferencing a freed pointer
  raises :class:`UseAfterFree`, and a wild pointer raises
  :class:`SegmentationViolation`.
* :class:`CallStack` models the thread stack; exceeding its depth raises
  :class:`StackOverflow`.

A bug injection therefore reads like the original defect: e.g. MariaDB's
MDEV-8407 miscalculates the string length for >40-digit decimals — our
flawed ``decimal2string`` allocates the miscalculated size and then writes
the true digits, so the overflow *emerges* from the boundary input.
"""

from __future__ import annotations

from typing import Any, Generic, List, Optional, TypeVar

from .errors import (
    AssertionFailure,
    GlobalBufferOverflow,
    HeapBufferOverflow,
    NullPointerDereference,
    ResourceError,
    SegmentationViolation,
    StackOverflow,
    UseAfterFree,
)

T = TypeVar("T")

#: Allocations above this size are refused by the simulated allocator, the
#: way a container with a memory cgroup kills oversized queries.  This is
#: the source of the paper's false-positive class (§7.3).
MAX_ALLOCATION = 64 * 1024 * 1024


class Buffer:
    """A bounded, heap-allocated byte/char buffer."""

    def __init__(self, size: int, owner: Optional["Heap"], label: str = "") -> None:
        if size < 0:
            # A negative size reaching malloc is itself the symptom of an
            # upstream integer bug; model as a huge unsigned request.
            raise ResourceError(f"allocation of negative size {size}")
        if size > MAX_ALLOCATION:
            raise ResourceError(f"allocation of {size} bytes exceeds memory limit")
        self.size = size
        self.label = label
        self._data: List[str] = ["\0"] * size
        self._freed = False
        self._owner = owner

    # -- lifetime -------------------------------------------------------
    def free(self) -> None:
        self._freed = True

    def _check_alive(self, function: Optional[str]) -> None:
        if self._freed:
            raise UseAfterFree(
                f"access to freed buffer {self.label!r}", function=function
            )

    # -- access ---------------------------------------------------------
    def write(self, offset: int, data: str, function: Optional[str] = None) -> None:
        """Write *data* starting at *offset*; overruns crash."""
        self._check_alive(function)
        if offset < 0 or offset + len(data) > self.size:
            raise HeapBufferOverflow(
                f"write of {len(data)} bytes at offset {offset} into "
                f"{self.size}-byte buffer {self.label!r}",
                function=function,
            )
        for i, ch in enumerate(data):
            self._data[offset + i] = ch

    def read(self, offset: int, length: int, function: Optional[str] = None) -> str:
        """Read *length* bytes from *offset*; overruns crash (disclosure)."""
        self._check_alive(function)
        if offset < 0 or length < 0 or offset + length > self.size:
            raise HeapBufferOverflow(
                f"read of {length} bytes at offset {offset} from "
                f"{self.size}-byte buffer {self.label!r}",
                function=function,
            )
        return "".join(self._data[offset : offset + length])

    def contents(self) -> str:
        """The written prefix up to the first NUL (C-string view)."""
        joined = "".join(self._data)
        nul = joined.find("\0")
        return joined if nul == -1 else joined[:nul]


class GlobalBuffer:
    """A fixed-size static array (``static char buf[N]`` in C)."""

    def __init__(self, size: int, label: str = "") -> None:
        self.size = size
        self.label = label
        self._data: List[str] = ["\0"] * size

    def write(self, offset: int, data: str, function: Optional[str] = None) -> None:
        if offset < 0 or offset + len(data) > self.size:
            raise GlobalBufferOverflow(
                f"write of {len(data)} bytes at offset {offset} into global "
                f"{self.size}-byte buffer {self.label!r}",
                function=function,
            )
        for i, ch in enumerate(data):
            self._data[offset + i] = ch

    def read(self, offset: int, length: int, function: Optional[str] = None) -> str:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise GlobalBufferOverflow(
                f"read of {length} bytes at offset {offset} from global "
                f"{self.size}-byte buffer {self.label!r}",
                function=function,
            )
        return "".join(self._data[offset : offset + length])


class Heap:
    """Simulated allocator.  Tracks live buffers for leak accounting."""

    def __init__(self) -> None:
        self.allocated = 0
        self.live: List[Buffer] = []
        #: optional resource governor (installed by the harness); charged
        #: before the buffer exists so a budget below MAX_ALLOCATION fires
        #: as ``resource_exhausted`` rather than the engine's own limit
        self.governor = None

    def alloc(self, size: int, label: str = "") -> Buffer:
        if self.governor is not None:
            self.governor.on_alloc(size)
        buf = Buffer(size, self, label=label)
        self.allocated += max(size, 0)
        self.live.append(buf)
        return buf

    def free(self, buf: Buffer) -> None:
        buf.free()
        if buf in self.live:
            self.live.remove(buf)

    def reset(self) -> None:
        self.live.clear()
        self.allocated = 0


class Pointer(Generic[T]):
    """A nullable, freeable pointer to an arbitrary payload."""

    __slots__ = ("_value", "_state", "label")

    _VALID, _NULL, _FREED, _WILD = "valid", "null", "freed", "wild"

    def __init__(self, value: Optional[T], state: str = "valid", label: str = "") -> None:
        self._value = value
        self._state = state
        self.label = label

    # -- constructors -----------------------------------------------------
    @classmethod
    def to(cls, value: T, label: str = "") -> "Pointer[T]":
        return cls(value, cls._VALID, label)

    @classmethod
    def null(cls, label: str = "") -> "Pointer[T]":
        return cls(None, cls._NULL, label)

    @classmethod
    def wild(cls, label: str = "") -> "Pointer[T]":
        """A pointer into unmapped memory (e.g. produced by arithmetic on a
        corrupted offset)."""
        return cls(None, cls._WILD, label)

    # -- state ------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        return self._state == self._NULL

    def free(self) -> None:
        self._state = self._FREED

    def deref(self, function: Optional[str] = None) -> T:
        """Dereference; crashes according to pointer state."""
        if self._state == self._VALID:
            return self._value  # type: ignore[return-value]
        if self._state == self._NULL:
            raise NullPointerDereference(
                f"dereference of NULL pointer {self.label!r}", function=function
            )
        if self._state == self._FREED:
            raise UseAfterFree(
                f"dereference of freed pointer {self.label!r}", function=function
            )
        raise SegmentationViolation(
            f"dereference of wild pointer {self.label!r}", function=function
        )


class CallStack:
    """Bounded call stack used by recursive parsers and evaluators."""

    def __init__(self, max_depth: int = 256) -> None:
        self.max_depth = max_depth
        self.frames: List[str] = []
        #: optional resource governor; a depth budget below ``max_depth``
        #: terminates runaway recursion before it becomes a crash signal
        self.governor = None

    @property
    def depth(self) -> int:
        return len(self.frames)

    def push(self, frame: str, function: Optional[str] = None) -> None:
        if self.governor is not None:
            self.governor.on_stack_push(len(self.frames))
        if len(self.frames) >= self.max_depth:
            raise StackOverflow(
                f"recursion depth {len(self.frames)} exceeded in {frame}",
                function=function or frame,
            )
        self.frames.append(frame)

    def pop(self) -> None:
        if self.frames:
            self.frames.pop()

    def reset(self) -> None:
        self.frames.clear()

    # -- context-manager sugar ---------------------------------------------
    class _Frame:
        def __init__(self, stack: "CallStack", name: str) -> None:
            self.stack = stack
            self.name = name

        def __enter__(self) -> None:
            self.stack.push(self.name)

        def __exit__(self, *exc: Any) -> None:
            self.stack.pop()

    def frame(self, name: str) -> "_Frame":
        return self._Frame(self, name)


def sql_assert(condition: bool, message: str, function: Optional[str] = None) -> None:
    """Engine-internal assertion.  A failed assertion aborts the process
    (``assert()`` in a debug build), matching the paper's AF crash class."""
    if not condition:
        raise AssertionFailure(f"assertion failed: {message}", function=function)


# -- fixed-width integer helpers (C semantics) ------------------------------
INT32_MIN, INT32_MAX = -(2**31), 2**31 - 1
INT64_MIN, INT64_MAX = -(2**63), 2**63 - 1
UINT64_MAX = 2**64 - 1


def wrap_int32(value: int) -> int:
    """Two's-complement wrap to 32 bits (what a C int does on overflow)."""
    return ((value + 2**31) % 2**32) - 2**31


def wrap_int64(value: int) -> int:
    return ((value + 2**63) % 2**64) - 2**63


def fits_int32(value: int) -> bool:
    return INT32_MIN <= value <= INT32_MAX


def fits_int64(value: int) -> bool:
    return INT64_MIN <= value <= INT64_MAX
