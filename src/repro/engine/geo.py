"""Tiny geometry substrate (WKT subset) for spatial SQL functions.

Supports POINT, LINESTRING, POLYGON, MULTIPOINT, and GEOMETRYCOLLECTION —
enough surface for the spatial functions the paper's bugs touch
(``ST_ASTEXT``, ``BOUNDARY``, ``ST_X``, centroid/length/area helpers) and
for MariaDB-style crashes where non-geometry byte blobs (e.g. the output of
``INET6_ATON``) are fed into geometry code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .errors import ValueError_


class Geometry:
    """Base geometry class."""

    kind = "GEOMETRY"

    def to_wkt(self) -> str:
        raise NotImplementedError

    def boundary(self) -> "Geometry":
        """Topological boundary (simplified semantics)."""
        raise ValueError_(f"boundary not defined for {self.kind}")


@dataclass(frozen=True)
class Point(Geometry):
    x: float
    y: float
    kind = "POINT"

    def to_wkt(self) -> str:
        return f"POINT({_fmt(self.x)} {_fmt(self.y)})"

    def boundary(self) -> Geometry:
        return GeometryCollection(())  # a point's boundary is empty


@dataclass(frozen=True)
class LineString(Geometry):
    points: Tuple[Point, ...]
    kind = "LINESTRING"

    def to_wkt(self) -> str:
        inner = ", ".join(f"{_fmt(p.x)} {_fmt(p.y)}" for p in self.points)
        return f"LINESTRING({inner})"

    def length(self) -> float:
        total = 0.0
        for a, b in zip(self.points, self.points[1:]):
            total += math.hypot(b.x - a.x, b.y - a.y)
        return total

    @property
    def is_closed(self) -> bool:
        return len(self.points) >= 2 and self.points[0] == self.points[-1]

    def boundary(self) -> Geometry:
        if self.is_closed or not self.points:
            return GeometryCollection(())
        return MultiPoint((self.points[0], self.points[-1]))


@dataclass(frozen=True)
class Polygon(Geometry):
    rings: Tuple[Tuple[Point, ...], ...]
    kind = "POLYGON"

    def to_wkt(self) -> str:
        rings = ", ".join(
            "(" + ", ".join(f"{_fmt(p.x)} {_fmt(p.y)}" for p in ring) + ")"
            for ring in self.rings
        )
        return f"POLYGON({rings})"

    def area(self) -> float:
        """Shoelace area of the exterior ring minus interior rings."""
        def ring_area(ring: Tuple[Point, ...]) -> float:
            total = 0.0
            for a, b in zip(ring, ring[1:]):
                total += a.x * b.y - b.x * a.y
            return abs(total) / 2.0

        if not self.rings:
            return 0.0
        return ring_area(self.rings[0]) - sum(ring_area(r) for r in self.rings[1:])

    def boundary(self) -> Geometry:
        if not self.rings:
            return GeometryCollection(())
        return LineString(self.rings[0])


@dataclass(frozen=True)
class MultiPoint(Geometry):
    points: Tuple[Point, ...]
    kind = "MULTIPOINT"

    def to_wkt(self) -> str:
        inner = ", ".join(f"{_fmt(p.x)} {_fmt(p.y)}" for p in self.points)
        return f"MULTIPOINT({inner})"

    def boundary(self) -> Geometry:
        return GeometryCollection(())


@dataclass(frozen=True)
class GeometryCollection(Geometry):
    members: Tuple[Geometry, ...] = ()
    kind = "GEOMETRYCOLLECTION"

    def to_wkt(self) -> str:
        if not self.members:
            return "GEOMETRYCOLLECTION EMPTY"
        inner = ", ".join(m.to_wkt() for m in self.members)
        return f"GEOMETRYCOLLECTION({inner})"

    def boundary(self) -> Geometry:
        return GeometryCollection(())


def _fmt(value: float) -> str:
    return f"{value:g}"


# ---------------------------------------------------------------------------
# WKT parsing
# ---------------------------------------------------------------------------
class _WktScanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def word(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isalpha():
            self.pos += 1
        return self.text[start : self.pos].upper()

    def expect(self, ch: str) -> None:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            raise ValueError_(f"invalid WKT: expected {ch!r} at {self.pos}")
        self.pos += 1

    def accept(self, ch: str) -> bool:
        self.skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == ch:
            self.pos += 1
            return True
        return False

    def number(self) -> float:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isdigit() or self.text[self.pos] in "+-.eE"
        ):
            self.pos += 1
        try:
            return float(self.text[start : self.pos])
        except ValueError:
            raise ValueError_(f"invalid WKT number at offset {start}")

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


def wkt_parse(text: str) -> Geometry:
    """Parse a WKT string into a :class:`Geometry`."""
    scanner = _WktScanner(text)
    geometry = _parse_geometry(scanner)
    if not scanner.at_end():
        raise ValueError_("trailing characters after WKT geometry")
    return geometry


def _parse_geometry(scanner: _WktScanner) -> Geometry:
    kind = scanner.word()
    if kind == "POINT":
        scanner.expect("(")
        point = Point(scanner.number(), scanner.number())
        scanner.expect(")")
        return point
    if kind == "LINESTRING":
        return LineString(tuple(_parse_point_list(scanner)))
    if kind == "POLYGON":
        scanner.expect("(")
        rings: List[Tuple[Point, ...]] = []
        while True:
            rings.append(tuple(_parse_point_list(scanner)))
            if not scanner.accept(","):
                break
        scanner.expect(")")
        return Polygon(tuple(rings))
    if kind == "MULTIPOINT":
        return MultiPoint(tuple(_parse_point_list(scanner)))
    if kind == "GEOMETRYCOLLECTION":
        scanner.skip_ws()
        if scanner.text[scanner.pos :].upper().startswith("EMPTY"):
            scanner.pos += len("EMPTY")
            return GeometryCollection(())
        scanner.expect("(")
        members: List[Geometry] = []
        while True:
            members.append(_parse_geometry(scanner))
            if not scanner.accept(","):
                break
        scanner.expect(")")
        return GeometryCollection(tuple(members))
    raise ValueError_(f"unknown WKT geometry type {kind!r}")


def _parse_point_list(scanner: _WktScanner) -> List[Point]:
    scanner.expect("(")
    points: List[Point] = []
    while True:
        if scanner.accept("("):
            points.append(Point(scanner.number(), scanner.number()))
            scanner.expect(")")
        else:
            points.append(Point(scanner.number(), scanner.number()))
        if not scanner.accept(","):
            break
    scanner.expect(")")
    return points


# ---------------------------------------------------------------------------
# binary (WKB-ish) form — deliberately *weakly validated*, because real
# DBMS spatial bugs (MariaDB case 6 in the paper) arise from feeding
# non-geometry byte blobs into geometry readers.
# ---------------------------------------------------------------------------
def geometry_from_bytes(blob: bytes, validate: bool = True) -> Optional[Geometry]:
    """Decode our toy binary form: 1-byte tag + 8-byte doubles.

    With ``validate=False`` (the flawed configuration several injected bugs
    use), unknown tags return ``None`` instead of raising — a NULL geometry
    pointer that downstream code may dereference.
    """
    import struct

    if len(blob) < 1:
        if validate:
            raise ValueError_("empty geometry blob")
        return None
    tag = blob[0]
    body = blob[1:]
    if tag == 1 and len(body) >= 16:
        x, y = struct.unpack("<dd", body[:16])
        return Point(x, y)
    if tag == 2 and len(body) % 16 == 0 and body:
        coords = struct.iter_unpack("<dd", body)
        return LineString(tuple(Point(x, y) for x, y in coords))
    if validate:
        raise ValueError_(f"invalid geometry blob (tag {tag})")
    return None


def geometry_to_bytes(geometry: Geometry) -> bytes:
    import struct

    if isinstance(geometry, Point):
        return bytes([1]) + struct.pack("<dd", geometry.x, geometry.y)
    if isinstance(geometry, LineString):
        body = b"".join(struct.pack("<dd", p.x, p.y) for p in geometry.points)
        return bytes([2]) + body
    raise ValueError_(f"cannot encode {geometry.kind} to binary")
