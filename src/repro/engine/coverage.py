"""Line-arc coverage tracker for SQL-function component code.

Table 6 of the paper counts *branches covered in the DBMSs' built-in SQL
function modules*.  Our analogue: distinct ``(file, from_line, to_line)``
arcs executed inside the engine's function-implementation modules and the
dialects' flawed overrides.  An arc is a control-flow transfer between two
lines of the same code object — the classic branch proxy used by
coverage.py.

The tracker is scoped by filename predicate so evaluator overhead stays
bounded; the evaluator enables it only around function-implementation
invocations (see :meth:`Evaluator.call_function`).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Set, Tuple

Arc = Tuple[str, int, int]


def default_scope(filename: str) -> bool:
    """Cover the shared function library and every dialect module."""
    normalized = filename.replace("\\", "/")
    return (
        "/repro/engine/functions/" in normalized
        or "/repro/dialects/" in normalized
        or "/repro/engine/json_impl" in normalized
        or "/repro/engine/xml_impl" in normalized
        or "/repro/engine/geo" in normalized
        or "/repro/engine/casting" in normalized
    )


class CoverageTracker:
    """Collects line arcs via ``sys.settrace`` within a filename scope."""

    def __init__(self, scope: Optional[Callable[[str], bool]] = None) -> None:
        self.scope = scope or default_scope
        self.arcs: Set[Arc] = set()
        self.lines: Set[Tuple[str, int]] = set()
        self._active = False
        self._last_line = {}  # id(frame) -> last line seen in that frame

    # ------------------------------------------------------------------
    def _local_trace(self, frame, event, arg):  # pragma: no cover - hot path
        if event == "line":
            filename = frame.f_code.co_filename
            key = id(frame)
            last = self._last_line.get(key)
            line = frame.f_lineno
            self.lines.add((filename, line))
            if last is not None:
                self.arcs.add((filename, last, line))
            self._last_line[key] = line
        elif event == "return":
            self._last_line.pop(id(frame), None)
        return self._local_trace

    def _global_trace(self, frame, event, arg):  # pragma: no cover - hot path
        if event == "call" and self.scope(frame.f_code.co_filename):
            return self._local_trace
        return None

    # ------------------------------------------------------------------
    @contextmanager
    def tracking(self) -> Iterator[None]:
        """Enable tracing for the duration of the block (re-entrant)."""
        if self._active:
            yield
            return
        self._active = True
        previous = sys.gettrace()
        sys.settrace(self._global_trace)
        try:
            yield
        finally:
            sys.settrace(previous)
            self._active = False

    # ------------------------------------------------------------------
    @property
    def branch_count(self) -> int:
        """Distinct arcs observed — the Table 6 metric."""
        return len(self.arcs)

    @property
    def line_count(self) -> int:
        return len(self.lines)

    def merge(self, other: "CoverageTracker") -> None:
        self.arcs |= other.arcs
        self.lines |= other.lines

    def reset(self) -> None:
        self.arcs.clear()
        self.lines.clear()
