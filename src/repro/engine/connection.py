"""Client-facing connection and simulated server-process model.

The paper's harness talks to DBMSs through their Python clients and treats
"the server died" as the bug signal.  We model the same contract:

* :class:`Server` owns the process state (execution context, catalog).  A
  :class:`CrashSignal` escaping the query pipeline kills the process.
* :class:`Connection.execute` returns a :class:`Result`, raises
  :class:`repro.engine.errors.SQLError` for handled errors, or raises
  :class:`ServerCrashed` (carrying the crash) when the process dies.
* After a crash every call raises :class:`ConnectionClosed` until the
  harness calls :meth:`Server.restart` — the Docker-restart analogue.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional

from ..perf.stmtcache import StatementCache
from ..sqlast import ParseError, parse_statements
from ..sqlast import nodes as n
from .catalog import Database
from .errors import CrashSignal, SQLError, SyntaxError_
from .executor import Executor, Result
from .optimizer import optimize_statement

#: statement shapes eligible for the parse/plan cache — read-only queries
#: whose execution cannot change catalog or session state
_CACHEABLE_STATEMENTS = (n.Select, n.SetOp)

if TYPE_CHECKING:  # pragma: no cover
    from ..dialects.base import Dialect
    from .context import ExecutionContext


class ServerCrashed(Exception):
    """The simulated server process aborted while executing a statement."""

    def __init__(self, crash: CrashSignal, sql: str) -> None:
        super().__init__(crash.describe())
        self.crash = crash
        self.sql = sql


class ConnectionClosed(Exception):
    """The server is down (a previous statement crashed it)."""


class ConnectionDropped(ConnectionClosed):
    """The client connection was lost transiently; the server is still up.

    The real-world analogue is a reset TCP connection between harness and
    container — reconnecting (no restart) recovers.  Raised by the fault
    hook; the runner's retry policy handles it.
    """


class RestartFailed(Exception):
    """The server process failed to come back up after a restart attempt.

    The real-world analogue is a Docker restart that wedges.  The server
    stays dead; callers retry with backoff and eventually quarantine the
    server through the circuit breaker.
    """


class FaultHook:
    """Injection points the harness can install on a :class:`Server`.

    The engine calls these at the same places real infrastructure noise
    strikes: at the start of every statement (``on_execute``) and on every
    process restart (``on_restart``).  The default hooks do nothing; the
    ``repro.robustness`` fault injector overrides them.
    """

    def on_execute(self, connection: "Connection", sql: str) -> None:
        """May raise a transient fault or a :class:`CrashSignal`."""

    def on_restart(self, server: "Server") -> None:
        """May raise :class:`RestartFailed` before any state is touched."""


class Server:
    """One simulated DBMS server process."""

    def __init__(self, dialect: "Dialect") -> None:
        self.dialect = dialect
        self.database = Database()
        self.ctx: "ExecutionContext" = dialect.make_context()
        self.alive = True
        self.crash_count = 0
        self.queries_executed = 0
        self.restart_failures = 0
        #: optional fault-injection hook (see :class:`FaultHook`)
        self.fault_hook: Optional[FaultHook] = None
        #: parse/plan cache; set to None to bypass caching entirely
        self.stmt_cache: Optional[StatementCache] = StatementCache()
        #: optional resource governor (duck-typed; see attach_governor)
        self.governor = None

    def attach_governor(self, governor) -> None:
        """Install a resource governor; it survives restarts like the cache."""
        self.governor = governor
        self.ctx.attach_governor(governor)

    def restart(self, keep_coverage: bool = True) -> None:
        """Restart the process: fresh memory and catalog, same binary.

        Exception-safe: a failed restart (:class:`RestartFailed` from the
        fault hook, or any error while building the new context) leaves the
        server dead but otherwise untouched, so the caller can retry.
        """
        hook = self.fault_hook
        if hook is not None:
            try:
                hook.on_restart(self)
            except RestartFailed:
                self.restart_failures += 1
                self.alive = False
                raise
        coverage = self.ctx.coverage if keep_coverage else None
        triggered = set(self.ctx.triggered_functions)
        stats = self.ctx.stats
        ctx = self.dialect.make_context()
        ctx.coverage = coverage
        # function-trigger/coverage metrics are campaign-level, keep them
        ctx.triggered_functions |= triggered
        ctx.stats.update(stats)
        # commit only once the replacement state is fully built
        self.ctx = ctx
        if self.governor is not None:
            ctx.attach_governor(self.governor)
        self.database = Database()
        if self.stmt_cache is not None:
            # plans may embed optimize-stage decisions tied to the dead
            # process's config; a fresh process re-derives them
            self.stmt_cache.invalidate_all("restart")
        self.alive = True

    def connect(self) -> "Connection":
        return Connection(self)


class Connection:
    """A client connection to a :class:`Server`."""

    def __init__(self, server: Server) -> None:
        self.server = server

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> Result:
        """Execute all statements in *sql*; returns the last result."""
        server = self.server
        if not server.alive:
            raise ConnectionClosed("server is not running")
        ctx = server.ctx
        ctx.reset_query_state()
        # RAND()/UUID() draws are keyed to the statement text so results do
        # not depend on what executed before (cache hits, retries, and
        # parallel shard workers all see the serial run's values)
        ctx.reseed_statement_rng(sql)
        if ctx.governor is not None:
            # re-arm per-statement budgets (and the wall deadline)
            ctx.governor.begin_statement()
        server.queries_executed += 1
        ctx.stats["queries"] += 1
        cache = server.stmt_cache
        try:
            hook = server.fault_hook
            if hook is not None:
                # infrastructure faults strike before the statement reaches
                # the pipeline: hangs/drops escape as-is (server stays up),
                # spurious CrashSignals fall through to the handler below
                hook.on_execute(self, sql)
            if cache is not None:
                plan = cache.fetch(server.dialect.name, sql, ctx)
                if plan is not None:
                    compiled = plan.compiled
                    if compiled is not None:
                        # closure program emitted by repro.perf.compiler:
                        # semantically the interpreter minus dispatch
                        ctx.stage = "execute"
                        return compiled(ctx)
                    stmt = plan.stmt
                    if plan.needs_optimize:
                        stmt = optimize_statement(ctx, stmt)
                    ctx.stage = "execute"
                    return Executor(ctx, server.database).execute(stmt)
            probe = cache.probe_tokens(sql) if cache is not None else None
            statements = self._parse(sql, tokens=probe)
            result = Result()
            executor = Executor(ctx, server.database)
            # only single read-only statements are cacheable: caching part
            # of a multi-statement batch would reorder its optimize/execute
            # interleaving on replay
            cacheable = (
                cache is not None
                and len(statements) == 1
                and isinstance(statements[0], _CACHEABLE_STATEMENTS)
            )
            for stmt in statements:
                if cache is not None and not isinstance(stmt, _CACHEABLE_STATEMENTS):
                    # DDL/DML/SET may change what any cached plan means
                    # (catalog contents, fold_functions); drop everything
                    # before it runs so even a crash leaves the cache safe
                    cache.invalidate_all("non-select statement")
                optimized = optimize_statement(ctx, stmt)
                if cacheable:
                    # insert *before* execution: an execute-stage crash must
                    # leave the plan behind so reconfirmation replays it
                    cache.insert(server.dialect.name, sql, stmt, optimized, ctx)
                ctx.stage = "execute"
                result = executor.execute(optimized)
            return result
        except CrashSignal as crash:
            if crash.stage is None:
                crash.stage = ctx.stage
            if crash.function is None:
                crash.function = ctx.current_function
            server.alive = False
            server.crash_count += 1
            raise ServerCrashed(crash, sql) from None

    def _parse(self, sql: str, tokens=None) -> List[n.Statement]:
        ctx = self.server.ctx
        ctx.stage = "parse"
        try:
            statements = parse_statements(sql, tokens=tokens)
        except ParseError as exc:
            raise SyntaxError_(str(exc)) from None
        except RecursionError:
            raise SyntaxError_("statement too deeply nested") from None
        hook = getattr(self.server.dialect, "parse_hook", None)
        if hook is not None:
            hook(ctx, sql, statements)
        return statements

    def close(self) -> None:  # symmetry with DB-API clients
        pass
