"""Client-facing connection and simulated server-process model.

The paper's harness talks to DBMSs through their Python clients and treats
"the server died" as the bug signal.  We model the same contract:

* :class:`Server` owns the process state (execution context, catalog).  A
  :class:`CrashSignal` escaping the query pipeline kills the process.
* :class:`Connection.execute` returns a :class:`Result`, raises
  :class:`repro.engine.errors.SQLError` for handled errors, or raises
  :class:`ServerCrashed` (carrying the crash) when the process dies.
* After a crash every call raises :class:`ConnectionClosed` until the
  harness calls :meth:`Server.restart` — the Docker-restart analogue.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional

from ..sqlast import ParseError, parse_statements
from ..sqlast import nodes as n
from .catalog import Database
from .errors import CrashSignal, SQLError, SyntaxError_
from .executor import Executor, Result
from .optimizer import optimize_statement

if TYPE_CHECKING:  # pragma: no cover
    from ..dialects.base import Dialect
    from .context import ExecutionContext


class ServerCrashed(Exception):
    """The simulated server process aborted while executing a statement."""

    def __init__(self, crash: CrashSignal, sql: str) -> None:
        super().__init__(crash.describe())
        self.crash = crash
        self.sql = sql


class ConnectionClosed(Exception):
    """The server is down (a previous statement crashed it)."""


class Server:
    """One simulated DBMS server process."""

    def __init__(self, dialect: "Dialect") -> None:
        self.dialect = dialect
        self.database = Database()
        self.ctx: "ExecutionContext" = dialect.make_context()
        self.alive = True
        self.crash_count = 0
        self.queries_executed = 0

    def restart(self, keep_coverage: bool = True) -> None:
        """Restart the process: fresh memory and catalog, same binary."""
        coverage = self.ctx.coverage if keep_coverage else None
        triggered = set(self.ctx.triggered_functions)
        stats = self.ctx.stats
        self.ctx = self.dialect.make_context()
        self.ctx.coverage = coverage
        # function-trigger/coverage metrics are campaign-level, keep them
        self.ctx.triggered_functions |= triggered
        self.ctx.stats.update(stats)
        self.database = Database()
        self.alive = True

    def connect(self) -> "Connection":
        return Connection(self)


class Connection:
    """A client connection to a :class:`Server`."""

    def __init__(self, server: Server) -> None:
        self.server = server

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> Result:
        """Execute all statements in *sql*; returns the last result."""
        server = self.server
        if not server.alive:
            raise ConnectionClosed("server is not running")
        ctx = server.ctx
        ctx.reset_query_state()
        server.queries_executed += 1
        ctx.stats["queries"] += 1
        try:
            statements = self._parse(sql)
            result = Result()
            executor = Executor(ctx, server.database)
            for stmt in statements:
                optimized = optimize_statement(ctx, stmt)
                ctx.stage = "execute"
                result = executor.execute(optimized)
            return result
        except CrashSignal as crash:
            if crash.stage is None:
                crash.stage = ctx.stage
            if crash.function is None:
                crash.function = ctx.current_function
            server.alive = False
            server.crash_count += 1
            raise ServerCrashed(crash, sql) from None

    def _parse(self, sql: str) -> List[n.Statement]:
        ctx = self.server.ctx
        ctx.stage = "parse"
        try:
            statements = parse_statements(sql)
        except ParseError as exc:
            raise SyntaxError_(str(exc)) from None
        except RecursionError:
            raise SyntaxError_("statement too deeply nested") from None
        hook = getattr(self.server.dialect, "parse_hook", None)
        if hook is not None:
            hook(ctx, sql, statements)
        return statements

    def close(self) -> None:  # symmetry with DB-API clients
        pass
