"""From-scratch JSON implementation used by the engines' JSON functions.

A hand-rolled recursive-descent parser (not :mod:`json`) because the paper's
JSON bugs live in exactly this code: CVE-2015-5289 is PostgreSQL's
``parse_array`` recursing once per ``[`` until the stack dies.  The parser
therefore recurses *through the engine's simulated call stack* — a
:class:`repro.engine.memory.CallStack` passed by the caller — so dialects
that forget a depth check crash with :class:`StackOverflow`, and dialects
that add one (as PostgreSQL did in the fix) raise a clean ``ValueError_``.

Also provides JSON-path evaluation for ``$.a[0].b``-style paths used by
JSON_LENGTH / JSON_EXTRACT and friends.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, Union

from .errors import ValueError_
from .memory import CallStack

#: depth guard used by dialects that *did* fix the recursion bug
DEFAULT_MAX_DEPTH = 128

_WHITESPACE = " \t\r\n"


class JsonParser:
    """Recursive-descent JSON parser over a simulated call stack."""

    def __init__(
        self,
        text: str,
        stack: Optional[CallStack] = None,
        max_depth: Optional[int] = DEFAULT_MAX_DEPTH,
        function: Optional[str] = None,
    ) -> None:
        self.text = text
        self.pos = 0
        self.stack = stack if stack is not None else CallStack()
        self.max_depth = max_depth
        self.depth = 0
        self.function = function

    # ------------------------------------------------------------------
    def parse(self) -> Any:
        value = self._parse_value()
        self._skip_ws()
        if self.pos != len(self.text):
            raise ValueError_(f"trailing characters in JSON at offset {self.pos}")
        return value

    # ------------------------------------------------------------------
    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def _fail(self, message: str) -> ValueError_:
        return ValueError_(f"invalid JSON: {message} at offset {self.pos}")

    def _enter(self, what: str) -> None:
        """One recursion step.  The depth check is the *fix* for the
        CVE-2015-5289 class of bug; callers who pass ``max_depth=None``
        reproduce the unfixed behaviour and rely on the simulated stack."""
        self.depth += 1
        if self.max_depth is not None and self.depth > self.max_depth:
            raise ValueError_(f"JSON nested too deeply (> {self.max_depth})")
        self.stack.push(f"json_parse_{what}", function=self.function)

    def _leave(self) -> None:
        self.depth -= 1
        self.stack.pop()

    # ------------------------------------------------------------------
    def _parse_value(self) -> Any:
        self._skip_ws()
        if self.pos >= len(self.text):
            raise self._fail("unexpected end of input")
        ch = self.text[self.pos]
        if ch == "{":
            return self._parse_object()
        if ch == "[":
            return self._parse_array()
        if ch == '"':
            return self._parse_string()
        if ch in "-0123456789":
            return self._parse_number()
        for word, value in (("true", True), ("false", False), ("null", None)):
            if self.text.startswith(word, self.pos):
                self.pos += len(word)
                return value
        raise self._fail(f"unexpected character {ch!r}")

    def _parse_object(self) -> dict:
        self._enter("object")
        try:
            self.pos += 1  # '{'
            obj: dict = {}
            self._skip_ws()
            if self.pos < len(self.text) and self.text[self.pos] == "}":
                self.pos += 1
                return obj
            while True:
                self._skip_ws()
                if self.pos >= len(self.text) or self.text[self.pos] != '"':
                    raise self._fail("expected object key")
                key = self._parse_string()
                self._skip_ws()
                if self.pos >= len(self.text) or self.text[self.pos] != ":":
                    raise self._fail("expected ':'")
                self.pos += 1
                obj[key] = self._parse_value()
                self._skip_ws()
                if self.pos >= len(self.text):
                    raise self._fail("unterminated object")
                if self.text[self.pos] == ",":
                    self.pos += 1
                    continue
                if self.text[self.pos] == "}":
                    self.pos += 1
                    return obj
                raise self._fail("expected ',' or '}'")
        finally:
            self._leave()

    def _parse_array(self) -> list:
        self._enter("array")
        try:
            self.pos += 1  # '['
            arr: list = []
            self._skip_ws()
            if self.pos < len(self.text) and self.text[self.pos] == "]":
                self.pos += 1
                return arr
            while True:
                arr.append(self._parse_value())
                self._skip_ws()
                if self.pos >= len(self.text):
                    raise self._fail("unterminated array")
                if self.text[self.pos] == ",":
                    self.pos += 1
                    continue
                if self.text[self.pos] == "]":
                    self.pos += 1
                    return arr
                raise self._fail("expected ',' or ']'")
        finally:
            self._leave()

    def _parse_string(self) -> str:
        assert self.text[self.pos] == '"'
        self.pos += 1
        out: List[str] = []
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == '"':
                self.pos += 1
                return "".join(out)
            if ch == "\\":
                self.pos += 1
                if self.pos >= len(self.text):
                    break
                esc = self.text[self.pos]
                simple = {'"': '"', "\\": "\\", "/": "/", "b": "\b",
                          "f": "\f", "n": "\n", "r": "\r", "t": "\t"}
                if esc in simple:
                    out.append(simple[esc])
                    self.pos += 1
                elif esc == "u":
                    hex_digits = self.text[self.pos + 1 : self.pos + 5]
                    if len(hex_digits) != 4:
                        raise self._fail("truncated \\u escape")
                    try:
                        out.append(chr(int(hex_digits, 16)))
                    except ValueError:
                        raise self._fail("invalid \\u escape")
                    self.pos += 5
                else:
                    raise self._fail(f"invalid escape \\{esc}")
            else:
                out.append(ch)
                self.pos += 1
        raise self._fail("unterminated string")

    def _parse_number(self) -> Union[int, float]:
        start = self.pos
        if self.text[self.pos] == "-":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        is_float = False
        if self.pos < len(self.text) and self.text[self.pos] == ".":
            is_float = True
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
        if self.pos < len(self.text) and self.text[self.pos] in "eE":
            is_float = True
            self.pos += 1
            if self.pos < len(self.text) and self.text[self.pos] in "+-":
                self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
        literal = self.text[start : self.pos]
        if literal in ("", "-"):
            raise self._fail("invalid number")
        try:
            return float(literal) if is_float else int(literal)
        except (ValueError, OverflowError):
            raise self._fail(f"invalid number {literal!r}")


def json_parse(
    text: str,
    stack: Optional[CallStack] = None,
    max_depth: Optional[int] = DEFAULT_MAX_DEPTH,
    function: Optional[str] = None,
) -> Any:
    """Parse JSON text into a Python structure.  See :class:`JsonParser`."""
    return JsonParser(text, stack=stack, max_depth=max_depth, function=function).parse()


def json_serialize(document: Any) -> str:
    """Serialise a document back to compact JSON text."""
    if document is None:
        return "null"
    if document is True:
        return "true"
    if document is False:
        return "false"
    if isinstance(document, (int, float)):
        if isinstance(document, float) and document == int(document) and abs(document) < 1e15:
            return str(document)
        return repr(document) if isinstance(document, float) else str(document)
    if isinstance(document, str):
        out = ['"']
        for ch in document:
            if ch == '"':
                out.append('\\"')
            elif ch == "\\":
                out.append("\\\\")
            elif ch == "\n":
                out.append("\\n")
            elif ch == "\t":
                out.append("\\t")
            elif ch == "\r":
                out.append("\\r")
            elif ord(ch) < 0x20:
                out.append(f"\\u{ord(ch):04x}")
            else:
                out.append(ch)
        out.append('"')
        return "".join(out)
    if isinstance(document, list):
        return "[" + ", ".join(json_serialize(v) for v in document) + "]"
    if isinstance(document, dict):
        pairs = ", ".join(
            f"{json_serialize(str(k))}: {json_serialize(v)}" for k, v in document.items()
        )
        return "{" + pairs + "}"
    raise ValueError_(f"cannot serialise {type(document).__name__} to JSON")


# ---------------------------------------------------------------------------
# JSON path  ($, .key, [index], [*])
# ---------------------------------------------------------------------------
PathStep = Union[str, int, None]  # None encodes the wildcard '*'


def parse_json_path(path: str) -> List[PathStep]:
    """Parse a ``$.a.b[0][*]`` path into a list of steps."""
    if not path.startswith("$"):
        raise ValueError_(f"JSON path must start with '$': {path!r}")
    steps: List[PathStep] = []
    pos = 1
    while pos < len(path):
        ch = path[pos]
        if ch == ".":
            pos += 1
            start = pos
            if pos < len(path) and path[pos] == '"':
                pos += 1
                start = pos
                while pos < len(path) and path[pos] != '"':
                    pos += 1
                if pos >= len(path):
                    raise ValueError_("unterminated quoted member in JSON path")
                steps.append(path[start:pos])
                pos += 1
                continue
            if pos < len(path) and path[pos] == "*":
                steps.append(None)
                pos += 1
                continue
            while pos < len(path) and (path[pos].isalnum() or path[pos] == "_"):
                pos += 1
            if pos == start:
                raise ValueError_(f"empty member name in JSON path at {pos}")
            steps.append(path[start:pos])
        elif ch == "[":
            end = path.find("]", pos)
            if end == -1:
                raise ValueError_("unterminated '[' in JSON path")
            inner = path[pos + 1 : end].strip()
            if inner == "*":
                steps.append(None)
            else:
                try:
                    steps.append(int(inner))
                except ValueError:
                    raise ValueError_(f"invalid array index {inner!r} in JSON path")
            pos = end + 1
        else:
            raise ValueError_(f"unexpected character {ch!r} in JSON path")
    return steps


def eval_json_path(document: Any, steps: List[PathStep]) -> List[Any]:
    """Evaluate parsed path steps; returns all matches (wildcards fan out)."""
    current = [document]
    for step in steps:
        next_values: List[Any] = []
        for value in current:
            if step is None:  # wildcard
                if isinstance(value, list):
                    next_values.extend(value)
                elif isinstance(value, dict):
                    next_values.extend(value.values())
            elif isinstance(step, int):
                if isinstance(value, list) and -len(value) <= step < len(value):
                    next_values.append(value[step])
            else:
                if isinstance(value, dict) and step in value:
                    next_values.append(value[step])
        current = next_values
    return current


def json_depth(document: Any) -> int:
    """Nesting depth (scalars are depth 1, like MySQL's JSON_DEPTH)."""
    if isinstance(document, dict):
        if not document:
            return 1
        return 1 + max(json_depth(v) for v in document.values())
    if isinstance(document, list):
        if not document:
            return 1
        return 1 + max(json_depth(v) for v in document)
    return 1
