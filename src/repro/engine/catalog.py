"""Catalog: databases, tables, and rows for the simulated engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sqlast import ColumnDef, TypeName
from .errors import NameError_, ValueError_
from .values import SQLValue


@dataclass
class Column:
    name: str
    type_name: TypeName
    not_null: bool = False


class Table:
    """An in-memory heap table."""

    def __init__(self, name: str, columns: List[Column]) -> None:
        self.name = name
        self.columns = columns
        self.rows: List[List[SQLValue]] = []

    def column_index(self, name: str) -> int:
        key = name.lower()
        for idx, column in enumerate(self.columns):
            if column.name.lower() == key:
                return idx
        raise NameError_(f"unknown column {name!r} in table {self.name!r}")

    def insert_row(self, values: List[SQLValue]) -> None:
        if len(values) != len(self.columns):
            raise ValueError_(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        for column, value in zip(self.columns, values):
            if column.not_null and value.is_null:
                raise ValueError_(f"column {column.name!r} is NOT NULL")
        self.rows.append(list(values))


class Database:
    """A single-schema database instance."""

    def __init__(self, name: str = "main") -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}

    def create_table(
        self, name: str, columns: List[ColumnDef], if_not_exists: bool = False
    ) -> Table:
        key = name.lower()
        if key in self.tables:
            if if_not_exists:
                return self.tables[key]
            raise NameError_(f"table {name!r} already exists")
        cols = [
            Column(c.name, c.type_name, not_null="NOT NULL" in c.constraints)
            for c in columns
        ]
        table = Table(name, cols)
        self.tables[key] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise NameError_(f"unknown table {name!r}")
        del self.tables[key]

    def get_table(self, name: str) -> Table:
        table = self.tables.get(name.lower())
        if table is None:
            raise NameError_(f"unknown table {name!r}")
        return table

    def reset(self) -> None:
        self.tables.clear()
