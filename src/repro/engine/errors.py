"""Error and crash taxonomy for the simulated DBMS engines.

Two disjoint families model the two outcomes the paper distinguishes:

* :class:`SQLError` — a *handled* error.  The real DBMS would return an
  error message to the client and keep serving; our engines raise it and the
  connection catches it.  These are never bugs.

* :class:`CrashSignal` — a *memory-safety violation*.  The real DBMS process
  would abort (SIGSEGV, SIGABRT, ...); our engines let it propagate out of
  the executor, the connection marks the simulated server process dead, and
  the harness must "restart" it.  Crash classes mirror the paper's Table 4
  legend: NPD, SEGV, UAF, HBOF, GBOF, AF, SO, DBZ.

Each crash captures the processing *stage* (parse / optimize / execute) and
a backtrace of engine frames, which the corpus analysis (§4.1 / Finding 1)
classifies the same way the paper classifies real backtraces.
"""

from __future__ import annotations

import traceback
from typing import List, Optional


class SQLError(Exception):
    """A handled SQL-level error (syntax, type, out-of-range, ...)."""

    code = "ERROR"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class SyntaxError_(SQLError):
    """Statement rejected by the parser."""

    code = "SYNTAX"


class TypeError_(SQLError):
    """Argument or cast type mismatch."""

    code = "TYPE"


class NameError_(SQLError):
    """Unknown table, column, or function."""

    code = "NAME"


class ValueError_(SQLError):
    """A value is out of the accepted range or malformed."""

    code = "VALUE"


class DivisionByZeroError_(SQLError):
    """Handled division by zero (most dialects report this cleanly)."""

    code = "DIV0"


class ResourceError(SQLError):
    """Query exceeded a resource limit (memory, string length, rows).

    The paper notes SOFT's 7 false positives came from queries that hit
    memory limits and were *forcibly terminated* — in our model those
    surface as ResourceError, and the runner's false-positive filter keys
    on this class.
    """

    code = "RESOURCE"


class FeatureError(SQLError):
    """Statement uses a feature this dialect does not implement."""

    code = "FEATURE"


class ResourceExhausted(SQLError):
    """A harness-configured resource budget was exceeded (the governor).

    Distinct from :class:`ResourceError`: that class models the *DBMS's own*
    limits (the paper's false-positive source), while this one is raised by
    the harness-side :class:`~repro.robustness.governor.ResourceGovernor`
    when an opt-in budget (eval depth, rows, cells, bytes, wall deadline)
    trips.  The runner classifies it as the ``resource_exhausted`` outcome
    rather than a false-positive candidate.
    """

    code = "EXHAUSTED"

    def __init__(self, budget: str, used: int, limit: int) -> None:
        super().__init__(
            f"resource budget {budget!r} exhausted: used {used}, limit {limit}"
        )
        self.budget = budget
        self.used = used
        self.limit = limit


# ---------------------------------------------------------------------------
# crash signals
# ---------------------------------------------------------------------------
class CrashSignal(BaseException):
    """Base class for simulated memory-safety crashes.

    Derives from BaseException so that engine-level ``except Exception``
    error handling can never accidentally swallow a crash — exactly like a
    SIGSEGV cannot be caught by a C++ ``catch``.
    """

    #: short code used in Table 4 (overridden by subclasses)
    code = "CRASH"
    #: human-readable crash class name
    label = "crash"

    def __init__(
        self,
        message: str,
        function: Optional[str] = None,
        stage: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.function = function
        self.stage = stage
        self.backtrace = self._capture_backtrace()

    @staticmethod
    def _capture_backtrace() -> List[str]:
        """Record the engine-side call chain (innermost last), mimicking the
        symbolised backtraces bug reports carry."""
        frames = traceback.extract_stack()[:-2]
        names = [
            f.name
            for f in frames
            if "/repro/" in (f.filename or "").replace("\\", "/")
        ]
        return names[-25:]

    def describe(self) -> str:
        where = f" in {self.function}" if self.function else ""
        return f"{self.label}{where}: {self.message}"


class NullPointerDereference(CrashSignal):
    code = "NPD"
    label = "null pointer dereference"


class SegmentationViolation(CrashSignal):
    code = "SEGV"
    label = "segmentation violation"


class UseAfterFree(CrashSignal):
    code = "UAF"
    label = "use-after-free"


class HeapBufferOverflow(CrashSignal):
    code = "HBOF"
    label = "heap buffer overflow"


class GlobalBufferOverflow(CrashSignal):
    code = "GBOF"
    label = "global buffer overflow"


class StackOverflow(CrashSignal):
    code = "SO"
    label = "stack overflow"


class AssertionFailure(CrashSignal):
    code = "AF"
    label = "assertion failure"


class DivideByZeroCrash(CrashSignal):
    code = "DBZ"
    label = "divide by zero"


#: Crash classes by code, used by the oracle and the reporting pipeline.
CRASH_CLASSES = {
    cls.code: cls
    for cls in (
        NullPointerDereference,
        SegmentationViolation,
        UseAfterFree,
        HeapBufferOverflow,
        GlobalBufferOverflow,
        StackOverflow,
        AssertionFailure,
        DivideByZeroCrash,
    )
}
