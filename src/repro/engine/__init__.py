"""Simulated DBMS engine substrate.

The engine provides everything a dialect needs to behave like a small DBMS:
a value/type system, casting, a simulated process-memory model, the
three-stage query pipeline (parse → optimize → execute), a catalog, a
built-in function library, coverage instrumentation, and a client-facing
connection that reports crashes the way a dead server process does.
"""

from .casting import TypeLimits, cast_value
from .catalog import Database, Table
from .connection import (
    Connection,
    ConnectionClosed,
    ConnectionDropped,
    FaultHook,
    RestartFailed,
    Server,
    ServerCrashed,
)
from .context import ExecutionContext
from .coverage import CoverageTracker
from .errors import (
    CRASH_CLASSES,
    AssertionFailure,
    CrashSignal,
    DivideByZeroCrash,
    DivisionByZeroError_,
    FeatureError,
    GlobalBufferOverflow,
    HeapBufferOverflow,
    NameError_,
    NullPointerDereference,
    ResourceError,
    SegmentationViolation,
    SQLError,
    StackOverflow,
    SyntaxError_,
    TypeError_,
    UseAfterFree,
    ValueError_,
)
from .executor import Executor, Result
from .functions import FunctionDef, FunctionRegistry, build_base_registry
from .memory import Buffer, CallStack, GlobalBuffer, Heap, Pointer, sql_assert
from .values import (
    FALSE,
    NULL,
    TRUE,
    SQLArray,
    SQLBoolean,
    SQLBytes,
    SQLDate,
    SQLDateTime,
    SQLDecimal,
    SQLDouble,
    SQLGeometry,
    SQLInet,
    SQLInteger,
    SQLInterval,
    SQLJson,
    SQLMap,
    SQLNull,
    SQLRow,
    SQLString,
    SQLTime,
    SQLValue,
    SQLXml,
)

__all__ = [
    "AssertionFailure", "Buffer", "CallStack", "CRASH_CLASSES", "CrashSignal",
    "Connection", "ConnectionClosed", "ConnectionDropped", "CoverageTracker",
    "Database", "FaultHook", "RestartFailed",
    "DivideByZeroCrash", "DivisionByZeroError_", "ExecutionContext",
    "Executor", "FALSE", "FeatureError", "FunctionDef", "FunctionRegistry",
    "GlobalBuffer", "GlobalBufferOverflow", "Heap", "HeapBufferOverflow",
    "NameError_", "NULL", "NullPointerDereference", "Pointer", "ResourceError",
    "Result", "SegmentationViolation", "Server", "ServerCrashed", "SQLArray",
    "SQLBoolean", "SQLBytes", "SQLDate", "SQLDateTime", "SQLDecimal",
    "SQLDouble", "SQLError", "SQLGeometry", "SQLInet", "SQLInteger",
    "SQLInterval", "SQLJson", "SQLMap", "SQLNull", "SQLRow", "SQLString",
    "SQLTime", "SQLValue", "SQLXml", "StackOverflow", "SyntaxError_", "Table",
    "TRUE", "TypeError_", "TypeLimits", "UseAfterFree", "ValueError_",
    "build_base_registry", "cast_value", "sql_assert",
]
