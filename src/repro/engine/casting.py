"""Type-casting machinery (explicit ``CAST`` and implicit coercions).

The paper identifies boundary *type castings* as the root cause of 23.3% of
studied bugs (§5.2): values survive the cast but produce broken internal
instances.  The reference implementations here are correct; dialects inject
flaws by overriding individual cast paths (see ``repro.dialects``).

Dialect-specific numeric limits (max decimal digits, integer widths) arrive
via the :class:`TypeLimits` on the execution context, mirroring how real
systems differ (MySQL caps DECIMAL at 65 digits, MonetDB at 38, ...).
"""

from __future__ import annotations

import decimal
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..sqlast import TypeName
from .errors import TypeError_, ValueError_
from .memory import INT32_MAX, INT32_MIN, INT64_MAX, INT64_MIN, UINT64_MAX
from .values import (
    DECIMAL_CONTEXT,
    FALSE,
    NULL,
    TRUE,
    SQLArray,
    SQLBoolean,
    SQLBytes,
    SQLDate,
    SQLDateTime,
    SQLDecimal,
    SQLDouble,
    SQLGeometry,
    SQLInet,
    SQLInteger,
    SQLInterval,
    SQLJson,
    SQLMap,
    SQLNull,
    SQLRow,
    SQLString,
    SQLTime,
    SQLValue,
    SQLXml,
    days_in_month,
    is_numeric,
    numeric_as_decimal,
    validate_civil,
)

if TYPE_CHECKING:  # pragma: no cover
    from .context import ExecutionContext


@dataclass
class TypeLimits:
    """Per-dialect numeric and string limits."""

    decimal_max_digits: int = 65
    decimal_max_scale: int = 30
    varchar_default_length: int = 65535
    max_string_length: int = 16 * 1024 * 1024
    json_max_depth: Optional[int] = 128
    xml_max_depth: Optional[int] = 128


#: canonical spelling for each accepted type keyword
_TYPE_ALIASES = {
    "int": "integer", "integer": "integer", "bigint": "integer",
    "smallint": "integer", "tinyint": "integer", "int2": "integer",
    "int4": "integer", "int8": "integer", "int32": "integer",
    "int64": "integer", "serial": "integer",
    "signed": "integer", "unsigned": "unsigned", "uint64": "unsigned",
    "decimal": "decimal", "numeric": "decimal", "dec": "decimal",
    "number": "decimal",
    "float": "double", "double": "double", "real": "double",
    "double precision": "double", "float8": "double", "float4": "double",
    "varchar": "string", "char": "string", "text": "string",
    "string": "string", "character": "string", "nvarchar": "string",
    "clob": "string", "longtext": "string", "mediumtext": "string",
    "fixedstring": "string", "name": "string",
    "binary": "bytes", "varbinary": "bytes", "blob": "bytes",
    "bytea": "bytes", "longblob": "bytes",
    "bool": "boolean", "boolean": "boolean",
    "date": "date", "date32": "date",
    "time": "time",
    "datetime": "datetime", "timestamp": "datetime", "datetime64": "datetime",
    "interval": "interval",
    "json": "json", "jsonb": "json",
    "xml": "xml",
    "array": "array",
    "map": "map",
    "row": "row", "tuple": "row",
    "inet": "inet", "inet4": "inet", "inet6": "inet", "ipv4": "inet",
    "ipv6": "inet",
    "geometry": "geometry", "point": "geometry",
    "uuid": "string",
}

#: wide-decimal dialect spellings, e.g. ClickHouse Decimal256(45)
for _width in (32, 64, 128, 256):
    _TYPE_ALIASES[f"decimal{_width}"] = "decimal"


def canonical_type(type_name: TypeName) -> str:
    """Map a parsed type name to its canonical family, or raise."""
    key = type_name.key()
    family = _TYPE_ALIASES.get(key)
    if family is None:
        raise TypeError_(f"unknown type {type_name.name!r}")
    return family


def cast_value(ctx: "ExecutionContext", value: SQLValue, type_name: TypeName) -> SQLValue:
    """Cast *value* to *type_name* with SQL semantics.

    NULL casts to NULL for every target type.  Dialects hook individual
    paths by registering overrides on the context's ``cast_overrides``.
    """
    family = canonical_type(type_name)
    override = ctx.cast_overrides.get(family)
    if override is not None:
        result = override(ctx, value, type_name)
        if result is not None:
            return result
    if value.is_null:
        return NULL
    caster = _CASTERS.get(family)
    if caster is None:
        raise TypeError_(f"unsupported cast target {family!r}")
    return caster(ctx, value, type_name)


# ---------------------------------------------------------------------------
# individual cast paths
# ---------------------------------------------------------------------------
def _to_integer(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLInteger):
        result = value.value
    elif isinstance(value, (SQLDecimal, SQLDouble, SQLBoolean)):
        result = int(numeric_as_decimal(value).to_integral_value(decimal.ROUND_DOWN))
    elif isinstance(value, SQLString):
        text = value.value.strip()
        # SQL-style prefix parse: '12abc' -> 12, 'abc' -> 0
        sign = 1
        idx = 0
        if idx < len(text) and text[idx] in "+-":
            sign = -1 if text[idx] == "-" else 1
            idx += 1
        digits = ""
        while idx < len(text) and text[idx].isdigit():
            digits += text[idx]
            idx += 1
        result = sign * int(digits) if digits else 0
    elif isinstance(value, SQLDate):
        result = value.year * 10000 + value.month * 100 + value.day
    elif isinstance(value, SQLBytes):
        result = int.from_bytes(value.value[-8:], "big") if value.value else 0
    else:
        raise TypeError_(f"cannot cast {value.type_name} to integer")
    if not INT64_MIN <= result <= INT64_MAX:
        raise ValueError_(f"integer value {result} out of 64-bit range")
    return SQLInteger(result)


def _to_unsigned(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    signed = _to_integer(ctx, value, tn)
    assert isinstance(signed, SQLInteger)
    result = signed.value
    if result < 0:
        result += UINT64_MAX + 1  # two's-complement reinterpretation
    if result > UINT64_MAX:
        raise ValueError_(f"unsigned value {result} out of range")
    return SQLInteger(result)


def _to_decimal(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if is_numeric(value):
        dec = numeric_as_decimal(value)
    elif isinstance(value, SQLString):
        try:
            dec = DECIMAL_CONTEXT.create_decimal(value.value.strip() or "0")
        except decimal.InvalidOperation:
            dec = decimal.Decimal(0)
        if not dec.is_finite():
            dec = decimal.Decimal(0)
    else:
        raise TypeError_(f"cannot cast {value.type_name} to decimal")
    widths = {"decimal32": 9, "decimal64": 18, "decimal128": 38, "decimal256": 76}
    fixed_precision = widths.get(tn.key())
    if fixed_precision is not None:
        # ClickHouse-style DecimalN(S): precision fixed by width, param = scale
        precision = fixed_precision
        scale = tn.params[0] if tn.params else 0
    else:
        precision = tn.params[0] if tn.params else ctx.limits.decimal_max_digits
        scale = tn.params[1] if len(tn.params) > 1 else min(ctx.limits.decimal_max_scale, precision)
    if precision > ctx.limits.decimal_max_digits:
        raise ValueError_(
            f"decimal precision {precision} exceeds maximum "
            f"{ctx.limits.decimal_max_digits}"
        )
    if scale > precision:
        raise ValueError_(f"decimal scale {scale} exceeds precision {precision}")
    quantized = dec.quantize(
        decimal.Decimal(1).scaleb(-scale), context=DECIMAL_CONTEXT
    )
    sign, digits, exponent = quantized.as_tuple()
    int_digits = max(len(digits) + exponent, 0)
    if int_digits > precision - scale:
        raise ValueError_(
            f"value {dec} does not fit DECIMAL({precision},{scale})"
        )
    return SQLDecimal(quantized)


def _to_double(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if is_numeric(value):
        try:
            return SQLDouble(float(numeric_as_decimal(value)))
        except OverflowError:
            raise ValueError_("value out of double range")
    if isinstance(value, SQLString):
        try:
            return SQLDouble(float(value.value.strip() or "0"))
        except ValueError:
            return SQLDouble(0.0)
    raise TypeError_(f"cannot cast {value.type_name} to double")


def _to_string(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    text = value.render()
    if tn.params:
        limit = tn.params[0]
        if len(text) > limit:
            text = text[:limit]
    if len(text) > ctx.limits.max_string_length:
        raise ValueError_("string exceeds maximum length")
    return SQLString(text)


def _to_bytes(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLBytes):
        return value
    if isinstance(value, SQLString):
        return SQLBytes(value.value.encode("utf-8", "surrogateescape"))
    if isinstance(value, SQLInteger):
        size = max((value.value.bit_length() + 7) // 8, 1)
        return SQLBytes(value.value.to_bytes(size, "big", signed=value.value < 0))
    if isinstance(value, SQLInet):
        return SQLBytes(value.packed)
    raise TypeError_(f"cannot cast {value.type_name} to bytes")


def _to_boolean(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLBoolean):
        return value
    if is_numeric(value):
        return TRUE if numeric_as_decimal(value) != 0 else FALSE
    if isinstance(value, SQLString):
        word = value.value.strip().lower()
        if word in ("t", "true", "yes", "on", "1"):
            return TRUE
        if word in ("f", "false", "no", "off", "0", ""):
            return FALSE
        raise ValueError_(f"invalid boolean literal {value.value!r}")
    raise TypeError_(f"cannot cast {value.type_name} to boolean")


def parse_date_text(text: str) -> SQLDate:
    parts = text.strip().replace("/", "-").split("-")
    if len(parts) != 3:
        raise ValueError_(f"invalid date literal {text!r}")
    try:
        year, month, day = (int(p) for p in parts)
    except ValueError:
        raise ValueError_(f"invalid date literal {text!r}")
    validate_civil(year, month, day)
    return SQLDate(year, month, day)


def parse_time_text(text: str) -> SQLTime:
    main, _, frac = text.strip().partition(".")
    parts = main.split(":")
    if len(parts) not in (2, 3):
        raise ValueError_(f"invalid time literal {text!r}")
    try:
        hour = int(parts[0])
        minute = int(parts[1])
        second = int(parts[2]) if len(parts) == 3 else 0
        micro = int((frac + "000000")[:6]) if frac else 0
    except ValueError:
        raise ValueError_(f"invalid time literal {text!r}")
    if not (0 <= hour < 24 and 0 <= minute < 60 and 0 <= second < 62):
        raise ValueError_(f"time {text!r} out of range")
    return SQLTime(hour, minute, min(second, 59), micro)


def parse_datetime_text(text: str) -> SQLDateTime:
    text = text.strip()
    sep = "T" if "T" in text else " "
    date_part, _, time_part = text.partition(sep)
    date = parse_date_text(date_part)
    time = parse_time_text(time_part) if time_part else SQLTime(0, 0, 0)
    return SQLDateTime(date, time)


def _to_date(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLDate):
        return value
    if isinstance(value, SQLDateTime):
        return value.date
    if isinstance(value, SQLString):
        return parse_date_text(value.value)
    if isinstance(value, SQLInteger):
        # YYYYMMDD integer form
        text = str(value.value)
        if len(text) == 8:
            year, month, day = int(text[:4]), int(text[4:6]), int(text[6:])
            validate_civil(year, month, day)
            return SQLDate(year, month, day)
        raise ValueError_(f"invalid integer date {value.value}")
    raise TypeError_(f"cannot cast {value.type_name} to date")


def _to_time(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLTime):
        return value
    if isinstance(value, SQLDateTime):
        return value.time
    if isinstance(value, SQLString):
        return parse_time_text(value.value)
    raise TypeError_(f"cannot cast {value.type_name} to time")


def _to_datetime(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLDateTime):
        return value
    if isinstance(value, SQLDate):
        return SQLDateTime(value, SQLTime(0, 0, 0))
    if isinstance(value, SQLString):
        return parse_datetime_text(value.value)
    raise TypeError_(f"cannot cast {value.type_name} to datetime")


def _to_json(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    from .json_impl import json_parse

    if isinstance(value, SQLJson):
        return value
    if isinstance(value, SQLString):
        document = json_parse(
            value.value,
            stack=ctx.stack,
            max_depth=ctx.limits.json_max_depth,
            function="cast_to_json",
        )
        return SQLJson(document)
    if is_numeric(value):
        dec = numeric_as_decimal(value)
        return SQLJson(int(dec) if dec == dec.to_integral_value() else float(dec))
    if isinstance(value, SQLBoolean):
        return SQLJson(value.value)
    if isinstance(value, SQLArray):
        return SQLJson([_json_doc(ctx, item) for item in value.items])
    raise TypeError_(f"cannot cast {value.type_name} to json")


def _json_doc(ctx: "ExecutionContext", value: SQLValue) -> object:
    if value.is_null:
        return None
    if isinstance(value, SQLJson):
        return value.document
    if isinstance(value, SQLBoolean):
        return value.value
    if isinstance(value, SQLInteger):
        return value.value
    if isinstance(value, (SQLDecimal, SQLDouble)):
        return float(numeric_as_decimal(value))
    if isinstance(value, SQLString):
        return value.value
    if isinstance(value, SQLArray):
        return [_json_doc(ctx, v) for v in value.items]
    if isinstance(value, SQLMap):
        return {k.render(): _json_doc(ctx, v) for k, v in zip(value.keys, value.values)}
    return value.render()


def _to_xml(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    from .xml_impl import xml_parse

    if isinstance(value, SQLXml):
        return value
    if isinstance(value, SQLString):
        document = xml_parse(
            value.value,
            stack=ctx.stack,
            max_depth=ctx.limits.xml_max_depth,
            function="cast_to_xml",
        )
        return SQLXml(document)
    raise TypeError_(f"cannot cast {value.type_name} to xml")


def _to_array(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLArray):
        return value
    if isinstance(value, SQLRow):
        return SQLArray(value.items)
    return SQLArray((value,))


def _to_map(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLMap):
        return value
    raise TypeError_(f"cannot cast {value.type_name} to map")


def _to_row(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLRow):
        return value
    return SQLRow((value,))


def parse_inet_text(text: str) -> SQLInet:
    text = text.strip()
    if ":" in text:
        return SQLInet(_parse_ipv6(text))
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError_(f"invalid IPv4 address {text!r}")
    try:
        octets = [int(p) for p in parts]
    except ValueError:
        raise ValueError_(f"invalid IPv4 address {text!r}")
    if any(not 0 <= o <= 255 for o in octets):
        raise ValueError_(f"IPv4 octet out of range in {text!r}")
    return SQLInet(bytes(octets))


def _parse_ipv6(text: str) -> bytes:
    if text.count("::") > 1:
        raise ValueError_(f"invalid IPv6 address {text!r}")
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 0:
            raise ValueError_(f"invalid IPv6 address {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise ValueError_(f"invalid IPv6 address {text!r}")
    out = bytearray()
    for group in groups:
        try:
            value = int(group or "0", 16)
        except ValueError:
            raise ValueError_(f"invalid IPv6 group {group!r}")
        if not 0 <= value <= 0xFFFF:
            raise ValueError_(f"IPv6 group out of range {group!r}")
        out += value.to_bytes(2, "big")
    return bytes(out)


def _to_inet(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLInet):
        return value
    if isinstance(value, SQLString):
        return parse_inet_text(value.value)
    if isinstance(value, SQLBytes) and len(value.value) in (4, 16):
        return SQLInet(value.value)
    raise TypeError_(f"cannot cast {value.type_name} to inet")


def _to_geometry(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    from .geo import geometry_from_bytes, wkt_parse

    if isinstance(value, SQLGeometry):
        return value
    if isinstance(value, SQLString):
        return SQLGeometry(wkt_parse(value.value))
    if isinstance(value, SQLBytes):
        geometry = geometry_from_bytes(value.value, validate=True)
        return SQLGeometry(geometry)
    raise TypeError_(f"cannot cast {value.type_name} to geometry")


def _to_interval(ctx: "ExecutionContext", value: SQLValue, tn: TypeName) -> SQLValue:
    if isinstance(value, SQLInterval):
        return value
    if isinstance(value, SQLInteger):
        return SQLInterval(days=value.value)
    raise TypeError_(f"cannot cast {value.type_name} to interval")


_CASTERS: Dict[str, Callable[["ExecutionContext", SQLValue, TypeName], SQLValue]] = {
    "integer": _to_integer,
    "unsigned": _to_unsigned,
    "decimal": _to_decimal,
    "double": _to_double,
    "string": _to_string,
    "bytes": _to_bytes,
    "boolean": _to_boolean,
    "date": _to_date,
    "time": _to_time,
    "datetime": _to_datetime,
    "json": _to_json,
    "xml": _to_xml,
    "array": _to_array,
    "map": _to_map,
    "row": _to_row,
    "inet": _to_inet,
    "geometry": _to_geometry,
    "interval": _to_interval,
}
