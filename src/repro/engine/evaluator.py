"""Scalar-expression evaluator.

Evaluates :mod:`repro.sqlast` expression trees to :mod:`repro.engine.values`
under an :class:`ExecutionContext` and an optional row scope.  Aggregate
function calls are evaluated over the evaluator's *group rows* (the executor
supplies them; a scalar ``SELECT AVG(1.5)`` evaluates over one virtual row,
which is exactly what the paper's single-statement PoCs rely on).
"""

from __future__ import annotations

import decimal
from typing import Dict, List, Optional, Sequence

from ..sqlast import nodes as n
from .casting import cast_value, parse_inet_text
from .context import ExecutionContext
from .errors import (
    DivisionByZeroError_,
    NameError_,
    TypeError_,
    ValueError_,
)
from .memory import fits_int64
from .values import (
    DECIMAL_CONTEXT,
    FALSE,
    NULL,
    STAR_MARKER,
    TRUE,
    SQLArray,
    SQLBoolean,
    SQLBytes,
    SQLDate,
    SQLDateTime,
    SQLDecimal,
    SQLDouble,
    SQLInteger,
    SQLInterval,
    SQLMap,
    SQLJson,
    SQLNull,
    SQLRow,
    SQLString,
    SQLTime,
    SQLValue,
    civil_from_days,
    days_from_civil,
    days_in_month,
    is_numeric,
    numeric_as_decimal,
)


#: sentinel distinguishing "absent" from any bound value in scope lookups
_MISSING = object()


class RowScope:
    """Column-name → value binding for the current row."""

    __slots__ = ("columns", "parent")

    def __init__(
        self,
        columns: Optional[Dict[str, SQLValue]] = None,
        parent: Optional["RowScope"] = None,
        *,
        lowered: bool = False,
    ) -> None:
        # callers that built the dict from already-lowered keys (the
        # executor's binders) pass lowered=True to skip re-lowering
        if columns is None:
            self.columns: Dict[str, SQLValue] = {}
        elif lowered:
            self.columns = columns
        else:
            self.columns = {k.lower(): v for k, v in columns.items()}
        self.parent = parent

    def lookup(self, name: str) -> SQLValue:
        key = name.lower()
        # fast path: single-scope lookups (the overwhelmingly common case —
        # bare SELECTs and unjoined FROMs have no parent chain) resolve with
        # one dict probe and no loop
        found = self.columns.get(key, _MISSING)
        if found is not _MISSING:
            return found
        scope = self.parent
        while scope is not None:
            found = scope.columns.get(key, _MISSING)
            if found is not _MISSING:
                return found
            scope = scope.parent
        raise NameError_(f"unknown column {name!r}")

    def names(self) -> List[str]:
        return list(self.columns)


class Evaluator:
    """Evaluates expressions for one row (and one group, for aggregates)."""

    def __init__(
        self,
        ctx: ExecutionContext,
        scope: Optional[RowScope] = None,
        group_rows: Optional[List[RowScope]] = None,
    ) -> None:
        self.ctx = ctx
        self.scope = scope
        #: rows belonging to the current group; None means "not grouping",
        #: in which case an aggregate sees the single current row.
        self.group_rows = group_rows

    # ------------------------------------------------------------------
    def eval(self, expr: n.Expr) -> SQLValue:
        try:
            method = _DISPATCH[type(expr)]
        except KeyError:
            raise TypeError_(f"cannot evaluate {type(expr).__name__}") from None
        governor = self.ctx.governor
        if governor is None:
            return method(self, expr)
        # governed path: depth/cells/wall budgets tick once per evaluation
        governor.enter_eval()
        try:
            return method(self, expr)
        finally:
            governor.exit_eval()

    # -- literals ---------------------------------------------------------
    def _integer(self, expr: n.IntegerLit) -> SQLValue:
        value = expr.value
        if fits_int64(value):
            return SQLInteger(value)
        # literals wider than 64 bits become decimals, as real parsers do
        return SQLDecimal(DECIMAL_CONTEXT.create_decimal(value))

    def _decimal(self, expr: n.DecimalLit) -> SQLValue:
        text = expr.text
        if "e" in text.lower():
            try:
                return SQLDouble(float(text))
            except (ValueError, OverflowError):
                raise ValueError_(f"invalid float literal {text!r}")
        return SQLDecimal.from_text(text)

    def _string(self, expr: n.StringLit) -> SQLValue:
        return SQLString(expr.value)

    def _null(self, expr: n.NullLit) -> SQLValue:
        return NULL

    def _boolean(self, expr: n.BooleanLit) -> SQLValue:
        return TRUE if expr.value else FALSE

    def _star(self, expr: n.Star) -> SQLValue:
        return STAR_MARKER

    def _param(self, expr: n.ParamRef) -> SQLValue:
        raise TypeError_("positional parameters are not bound")

    # -- references ---------------------------------------------------------
    def _column(self, expr: n.ColumnRef) -> SQLValue:
        if self.scope is None:
            raise NameError_(f"unknown column {expr.name!r} (no FROM clause)")
        if len(expr.parts) > 1:
            # qualified references bind to the qualified slot first, so
            # `l.id = r.id` stays distinct after a join merges bindings
            try:
                return self.scope.lookup(".".join(expr.parts))
            except NameError_:
                return self.scope.lookup(expr.name)
        return self.scope.lookup(expr.name)

    # -- calls ---------------------------------------------------------------
    def _func(self, expr: n.FuncCall) -> SQLValue:
        definition = self.ctx.registry.lookup(expr.name)
        if definition.is_aggregate:
            return self._eval_aggregate(expr, definition)
        args = [self.eval(a) for a in expr.args]
        definition.check_arity(len(args))
        return self.call_function(definition, args)

    def call_function(self, definition, args: List[SQLValue]) -> SQLValue:
        """Invoke a scalar function implementation with instrumentation."""
        ctx = self.ctx
        ctx.note_function(definition.name)
        previous = ctx.current_function
        ctx.current_function = definition.name
        try:
            if ctx.coverage is not None:
                with ctx.coverage.tracking():
                    return definition.impl(ctx, args)
            return definition.impl(ctx, args)
        except (decimal.InvalidOperation, decimal.Overflow, ArithmeticError,
                ValueError) as exc:
            # numeric/domain edge cases surface as handled SQL errors, the
            # way a hardened implementation reports them (SQLError is not a
            # ValueError, so real SQL errors pass through untouched)
            raise ValueError_(
                f"{definition.name.upper()}: value out of range ({exc})"
            ) from None
        finally:
            ctx.current_function = previous

    def _eval_aggregate(self, expr: n.FuncCall, definition) -> SQLValue:
        rows = self.group_rows
        if rows is None:
            rows = [self.scope] if self.scope is not None else [RowScope()]
        # COUNT(*) — and any aggregate over a bare star — counts rows.
        star_args = [a for a in expr.args if isinstance(a, n.Star)]
        columns: List[List[SQLValue]] = []
        for arg in expr.args:
            if isinstance(arg, n.Star):
                columns.append([STAR_MARKER for _ in rows])
                continue
            values: List[SQLValue] = []
            for row in rows:
                sub = Evaluator(self.ctx, scope=row, group_rows=None)
                values.append(sub.eval(arg))
            columns.append(values)
        if expr.distinct and columns:
            seen = set()
            keep: List[int] = []
            for idx in range(len(columns[0])):
                key = tuple(col[idx].sort_key() for col in columns)
                if key not in seen:
                    seen.add(key)
                    keep.append(idx)
            columns = [[col[i] for i in keep] for col in columns]
        definition.check_arity(len(columns))
        return self.call_aggregate(definition, columns)

    def call_aggregate(
        self, definition, columns: List[List[SQLValue]]
    ) -> SQLValue:
        """Invoke an aggregate implementation with instrumentation."""
        ctx = self.ctx
        ctx.note_function(definition.name)
        previous = ctx.current_function
        ctx.current_function = definition.name
        try:
            if ctx.coverage is not None:
                with ctx.coverage.tracking():
                    return definition.impl(ctx, columns)
            return definition.impl(ctx, columns)
        except (decimal.InvalidOperation, decimal.Overflow, ArithmeticError,
                ValueError) as exc:
            raise ValueError_(
                f"{definition.name.upper()}: value out of range ({exc})"
            ) from None
        finally:
            ctx.current_function = previous

    # -- operators -------------------------------------------------------
    def _unary(self, expr: n.UnaryOp) -> SQLValue:
        op = expr.op.upper()
        value = self.eval(expr.operand)
        if op == "NOT" or op == "!":
            if value.is_null:
                return NULL
            return FALSE if value.as_bool() else TRUE
        if value.is_null:
            return NULL
        if op == "-":
            return arith_negate(value)
        if op == "+":
            if not is_numeric(value):
                raise TypeError_(f"unary + on {value.type_name}")
            return value
        if op == "~":
            return SQLInteger(~cast_int_for_bitop(value))
        raise TypeError_(f"unsupported unary operator {expr.op}")

    def _binary(self, expr: n.BinaryOp) -> SQLValue:
        op = expr.op.upper()
        if op in ("AND", "OR"):
            return self._logical(op, expr)
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        return apply_binary(self.ctx, op, left, right)

    def _logical(self, op: str, expr: n.BinaryOp) -> SQLValue:
        left = self.eval(expr.left)
        left_b = None if left.is_null else left.as_bool()
        if op == "AND":
            if left_b is False:
                return FALSE
            right = self.eval(expr.right)
            right_b = None if right.is_null else right.as_bool()
            if right_b is False:
                return FALSE
            if left_b is None or right_b is None:
                return NULL
            return TRUE
        # OR
        if left_b is True:
            return TRUE
        right = self.eval(expr.right)
        right_b = None if right.is_null else right.as_bool()
        if right_b is True:
            return TRUE
        if left_b is None or right_b is None:
            return NULL
        return FALSE

    # -- casts -------------------------------------------------------------
    def _cast(self, expr: n.Cast) -> SQLValue:
        value = self.eval(expr.operand)
        self.ctx.stats["casts"] += 1
        return cast_value(self.ctx, value, expr.type_name)

    # -- compound ------------------------------------------------------------
    def _case(self, expr: n.CaseExpr) -> SQLValue:
        if expr.operand is not None:
            subject = self.eval(expr.operand)
            for cond, result in expr.whens:
                candidate = self.eval(cond)
                cmp = compare_values(self.ctx, subject, candidate)
                if cmp == 0:
                    return self.eval(result)
        else:
            for cond, result in expr.whens:
                value = self.eval(cond)
                if not value.is_null and value.as_bool():
                    return self.eval(result)
        return self.eval(expr.else_) if expr.else_ is not None else NULL

    def _in(self, expr: n.InExpr) -> SQLValue:
        needle = self.eval(expr.expr)
        if needle.is_null:
            return NULL
        saw_null = False
        for item in expr.items:
            candidate = self.eval(item)
            if isinstance(candidate, SQLArray):  # IN (subquery) result
                members: Sequence[SQLValue] = candidate.items
            else:
                members = (candidate,)
            for member in members:
                if member.is_null:
                    saw_null = True
                    continue
                if compare_values(self.ctx, needle, member) == 0:
                    return FALSE if expr.negated else TRUE
        if saw_null:
            return NULL
        return TRUE if expr.negated else FALSE

    def _between(self, expr: n.BetweenExpr) -> SQLValue:
        value = self.eval(expr.expr)
        low = self.eval(expr.low)
        high = self.eval(expr.high)
        if value.is_null or low.is_null or high.is_null:
            return NULL
        inside = (
            compare_values(self.ctx, low, value) <= 0
            and compare_values(self.ctx, value, high) <= 0
        )
        if expr.negated:
            inside = not inside
        return TRUE if inside else FALSE

    def _like(self, expr: n.LikeExpr) -> SQLValue:
        value = self.eval(expr.expr)
        pattern = self.eval(expr.pattern)
        if value.is_null or pattern.is_null:
            return NULL
        text = value.render()
        pat = pattern.render()
        if expr.op in ("REGEXP", "RLIKE", "SIMILAR TO"):
            matched = regex_search(pat, text)
        else:
            if expr.op == "ILIKE":
                text, pat = text.lower(), pat.lower()
            matched = like_match(pat, text)
        if expr.negated:
            matched = not matched
        return TRUE if matched else FALSE

    def _isnull(self, expr: n.IsNullExpr) -> SQLValue:
        value = self.eval(expr.expr)
        if value.is_null and self.ctx.get_config("faulty_is_null_propagates") == "1":
            # seeded predicate-level defect (dialects/flaws.py kind "tlp"):
            # the null check propagates the unknown instead of deciding it,
            # so IS [NOT] NULL answers NULL exactly when the operand is NULL.
            # Statements without an IS NULL test never notice; the TLP
            # partition's third arm loses its rows.
            return NULL
        result = value.is_null
        if expr.negated:
            result = not result
        return TRUE if result else FALSE

    def _exists(self, expr: n.ExistsExpr) -> SQLValue:
        rows = self._run_subquery(expr.subquery)
        result = bool(rows)
        if expr.negated:
            result = not result
        return TRUE if result else FALSE

    def _subquery(self, expr: n.SubqueryExpr) -> SQLValue:
        rows = self._run_subquery(expr.query)
        if not rows:
            return NULL
        if len(rows) > 1 and len(rows[0]) == 1:
            # expose multi-row scalar subqueries as an array so IN works
            return SQLArray(tuple(row[0] for row in rows))
        if len(rows[0]) == 1:
            return rows[0][0]
        return SQLRow(tuple(rows[0]))

    def _run_subquery(self, query: n.SelectLike) -> List[List[SQLValue]]:
        if self.ctx.execute_subquery is None:
            raise TypeError_("subqueries are not available in this context")
        return self.ctx.execute_subquery(query, self.scope)

    # -- constructors ---------------------------------------------------------
    def _row(self, expr: n.RowExpr) -> SQLValue:
        return SQLRow(tuple(self.eval(i) for i in expr.items))

    def _array(self, expr: n.ArrayExpr) -> SQLValue:
        return SQLArray(tuple(self.eval(i) for i in expr.items))

    def _map(self, expr: n.MapExpr) -> SQLValue:
        keys = tuple(self.eval(k) for k in expr.keys)
        values = tuple(self.eval(v) for v in expr.values)
        return SQLMap(keys, values)

    def _interval(self, expr: n.IntervalExpr) -> SQLValue:
        amount_value = self.eval(expr.value)
        if amount_value.is_null:
            return NULL
        amount = int(numeric_as_decimal(amount_value))
        unit = expr.unit.upper()
        if unit == "YEAR":
            return SQLInterval(months=amount * 12)
        if unit == "QUARTER":
            return SQLInterval(months=amount * 3)
        if unit == "MONTH":
            return SQLInterval(months=amount)
        if unit == "WEEK":
            return SQLInterval(days=amount * 7)
        if unit == "DAY":
            return SQLInterval(days=amount)
        if unit == "HOUR":
            return SQLInterval(microseconds=amount * 3_600_000_000)
        if unit == "MINUTE":
            return SQLInterval(microseconds=amount * 60_000_000)
        if unit == "SECOND":
            return SQLInterval(microseconds=amount * 1_000_000)
        if unit == "MILLISECOND":
            return SQLInterval(microseconds=amount * 1000)
        if unit == "MICROSECOND":
            return SQLInterval(microseconds=amount)
        raise TypeError_(f"unsupported interval unit {unit}")

    def _index(self, expr: n.IndexExpr) -> SQLValue:
        base = self.eval(expr.base)
        index = self.eval(expr.index)
        if base.is_null or index.is_null:
            return NULL
        if isinstance(base, SQLArray):
            position = int(numeric_as_decimal(index))
            # SQL arrays are 1-based
            if 1 <= position <= len(base.items):
                return base.items[position - 1]
            return NULL
        if isinstance(base, SQLMap):
            found = base.lookup(index)
            return found if found is not None else NULL
        if isinstance(base, SQLJson):
            document = base.document
            if isinstance(document, list):
                position = int(numeric_as_decimal(index))
                if 0 <= position < len(document):
                    return SQLJson(document[position])
                return NULL
            if isinstance(document, dict):
                key = index.render()
                if key in document:
                    return SQLJson(document[key])
                return NULL
            return NULL
        if isinstance(base, SQLString):
            position = int(numeric_as_decimal(index))
            if 1 <= position <= len(base.value):
                return SQLString(base.value[position - 1])
            return NULL
        raise TypeError_(f"cannot subscript {base.type_name}")


# ---------------------------------------------------------------------------
# shared operator semantics
# ---------------------------------------------------------------------------
def cast_int_for_bitop(value: SQLValue) -> int:
    if not is_numeric(value):
        raise TypeError_(f"bit operation on {value.type_name}")
    return int(numeric_as_decimal(value))


def arith_negate(value: SQLValue) -> SQLValue:
    if isinstance(value, SQLInteger):
        return SQLInteger(-value.value)
    if isinstance(value, SQLDecimal):
        return SQLDecimal(-value.value)
    if isinstance(value, SQLDouble):
        return SQLDouble(-value.value)
    if isinstance(value, SQLInterval):
        return SQLInterval(-value.months, -value.days, -value.microseconds)
    raise TypeError_(f"cannot negate {value.type_name}")


def _numeric_pair(left: SQLValue, right: SQLValue):
    """Classify the numeric promotion for a pair of operands."""
    def widen(v: SQLValue):
        if isinstance(v, (SQLInteger, SQLBoolean)):
            return "int"
        if isinstance(v, SQLDecimal):
            return "dec"
        if isinstance(v, SQLDouble):
            return "dbl"
        if isinstance(v, SQLString):
            return "str"
        return None

    kinds = (widen(left), widen(right))
    if None in kinds:
        return None
    if "dbl" in kinds or "str" in kinds:
        return "dbl"
    if "dec" in kinds:
        return "dec"
    return "int"


def _as_double(value: SQLValue) -> float:
    if isinstance(value, SQLString):
        try:
            return float(value.value.strip() or "0")
        except ValueError:
            return 0.0
    return float(numeric_as_decimal(value))


def apply_binary(ctx: ExecutionContext, op: str, left: SQLValue, right: SQLValue) -> SQLValue:
    """Binary operator with SQL NULL propagation and type promotion."""
    if op in ("=", "<", ">", "<=", ">=", "<>", "!=", "<=>",
              "IS DISTINCT FROM", "IS NOT DISTINCT FROM"):
        return _comparison(ctx, op, left, right)
    if left.is_null or right.is_null:
        return NULL
    if op == "||":
        return SQLString(left.render() + right.render())
    if op in ("+", "-"):
        temporal = _temporal_arith(ctx, op, left, right)
        if temporal is not None:
            return temporal
    if op in ("&", "|", "^", "<<", ">>", "#"):
        a, b = cast_int_for_bitop(left), cast_int_for_bitop(right)
        if op == "&":
            return SQLInteger(a & b)
        if op == "|":
            return SQLInteger(a | b)
        if op in ("^", "#") and ctx.get_config("xor_is_pow") != "1":
            return SQLInteger(a ^ b)
        if op == "<<":
            if b > 1024:
                raise ValueError_(f"shift amount {b} out of range")
            return SQLInteger(a << b)
        if op == ">>":
            return SQLInteger(a >> max(b, 0)) if b < 1024 else SQLInteger(0)
    kind = _numeric_pair(left, right)
    if kind is None:
        raise TypeError_(
            f"operator {op} not supported between {left.type_name} and {right.type_name}"
        )
    if op == "**":
        return SQLDouble(_safe_pow(_as_double(left), _as_double(right)))
    if kind == "dbl":
        a, b = _as_double(left), _as_double(right)
        return _double_arith(op, a, b)
    if kind == "dec":
        a, b = numeric_as_decimal(left), numeric_as_decimal(right)
        return _decimal_arith(op, a, b)
    a_i, b_i = int(numeric_as_decimal(left)), int(numeric_as_decimal(right))
    return _integer_arith(op, a_i, b_i)


def _safe_pow(a: float, b: float) -> float:
    try:
        result = a ** b
    except (OverflowError, ZeroDivisionError):
        raise ValueError_("power result out of range")
    if isinstance(result, complex):
        raise ValueError_("power of negative base with fractional exponent")
    return result


def _integer_arith(op: str, a: int, b: int) -> SQLValue:
    if op == "+":
        result = a + b
    elif op == "-":
        result = a - b
    elif op == "*":
        result = a * b
    elif op in ("/",):
        if b == 0:
            raise DivisionByZeroError_("division by zero")
        # SQL integer division differs per dialect; default to exact decimal
        quotient = DECIMAL_CONTEXT.divide(decimal.Decimal(a), decimal.Decimal(b))
        if quotient == quotient.to_integral_value():
            return SQLInteger(int(quotient))
        return SQLDecimal(quotient)
    elif op == "DIV":
        if b == 0:
            raise DivisionByZeroError_("division by zero")
        result = int(a / b) if b != 0 else 0
    elif op in ("%", "MOD"):
        if b == 0:
            raise DivisionByZeroError_("modulo by zero")
        result = a - b * int(a / b)  # C-style truncation semantics
    else:
        raise TypeError_(f"unsupported operator {op}")
    if not fits_int64(result):
        raise ValueError_(f"BIGINT value out of range: {a} {op} {b}")
    return SQLInteger(result)


def _decimal_arith(op: str, a: decimal.Decimal, b: decimal.Decimal) -> SQLValue:
    try:
        if op == "+":
            return SQLDecimal(DECIMAL_CONTEXT.add(a, b))
        if op == "-":
            return SQLDecimal(DECIMAL_CONTEXT.subtract(a, b))
        if op == "*":
            return SQLDecimal(DECIMAL_CONTEXT.multiply(a, b))
        if op == "/":
            if b == 0:
                raise DivisionByZeroError_("division by zero")
            return SQLDecimal(DECIMAL_CONTEXT.divide(a, b))
        if op == "DIV":
            if b == 0:
                raise DivisionByZeroError_("division by zero")
            return SQLInteger(int(DECIMAL_CONTEXT.divide_int(a, b)))
        if op in ("%", "MOD"):
            if b == 0:
                raise DivisionByZeroError_("modulo by zero")
            return SQLDecimal(DECIMAL_CONTEXT.remainder(a, b))
    except decimal.InvalidOperation:
        raise ValueError_(f"decimal operation {op} failed for {a}, {b}")
    except decimal.Overflow:
        raise ValueError_("decimal result out of range")
    raise TypeError_(f"unsupported operator {op}")


def _double_arith(op: str, a: float, b: float) -> SQLValue:
    try:
        if op == "+":
            return SQLDouble(a + b)
        if op == "-":
            return SQLDouble(a - b)
        if op == "*":
            return SQLDouble(a * b)
        if op == "/":
            if b == 0.0:
                raise DivisionByZeroError_("division by zero")
            return SQLDouble(a / b)
        if op == "DIV":
            if b == 0.0:
                raise DivisionByZeroError_("division by zero")
            return SQLInteger(int(a / b))
        if op in ("%", "MOD"):
            if b == 0.0:
                raise DivisionByZeroError_("modulo by zero")
            return SQLDouble(a - b * int(a / b))
    except OverflowError:
        raise ValueError_("double result out of range")
    raise TypeError_(f"unsupported operator {op}")


def _temporal_arith(
    ctx: ExecutionContext, op: str, left: SQLValue, right: SQLValue
) -> Optional[SQLValue]:
    """date/time ± interval and date − date; None when not temporal."""
    def add_interval(date: SQLDate, interval: SQLInterval, sign: int) -> SQLDate:
        months = date.year * 12 + (date.month - 1) + sign * interval.months
        year, month = divmod(months, 12)
        month += 1
        day = min(date.day, days_in_month(year, month))
        days = days_from_civil(year, month, day) + sign * interval.days
        return SQLDate.from_days(days)

    if isinstance(left, SQLDate) and isinstance(right, SQLInterval):
        return add_interval(left, right, +1 if op == "+" else -1)
    if isinstance(left, SQLInterval) and isinstance(right, SQLDate) and op == "+":
        return add_interval(right, left, +1)
    if isinstance(left, SQLDate) and isinstance(right, SQLDate) and op == "-":
        return SQLInteger(left.to_days() - right.to_days())
    if isinstance(left, SQLDate) and isinstance(right, SQLInteger):
        return SQLDate.from_days(left.to_days() + (right.value if op == "+" else -right.value))
    if isinstance(left, SQLDateTime) and isinstance(right, SQLInterval):
        sign = +1 if op == "+" else -1
        new_date = add_interval(left.date, right, sign)
        micros = left.time.total_microseconds() + sign * right.microseconds
        day_shift, micros = divmod(micros, 86_400_000_000)
        new_date = SQLDate.from_days(new_date.to_days() + day_shift)
        hour, rem = divmod(micros, 3_600_000_000)
        minute, rem = divmod(rem, 60_000_000)
        second, micro = divmod(rem, 1_000_000)
        return SQLDateTime(new_date, SQLTime(int(hour), int(minute), int(second), int(micro)))
    if isinstance(left, SQLInterval) and isinstance(right, SQLInterval):
        sign = +1 if op == "+" else -1
        return SQLInterval(
            left.months + sign * right.months,
            left.days + sign * right.days,
            left.microseconds + sign * right.microseconds,
        )
    return None


def _comparison(ctx: ExecutionContext, op: str, left: SQLValue, right: SQLValue) -> SQLValue:
    if op == "<=>":
        if left.is_null or right.is_null:
            return TRUE if left.is_null and right.is_null else FALSE
        return TRUE if compare_values(ctx, left, right) == 0 else FALSE
    if op in ("IS DISTINCT FROM", "IS NOT DISTINCT FROM"):
        if left.is_null or right.is_null:
            distinct = not (left.is_null and right.is_null)
        else:
            distinct = compare_values(ctx, left, right) != 0
        if op == "IS NOT DISTINCT FROM":
            distinct = not distinct
        return TRUE if distinct else FALSE
    if left.is_null or right.is_null:
        return NULL
    cmp = compare_values(ctx, left, right)
    result = {
        "=": cmp == 0,
        "<": cmp < 0,
        ">": cmp > 0,
        "<=": cmp <= 0,
        ">=": cmp >= 0,
        "<>": cmp != 0,
        "!=": cmp != 0,
    }[op]
    return TRUE if result else FALSE


def compare_values(ctx: ExecutionContext, left: SQLValue, right: SQLValue) -> int:
    """Three-way comparison; raises ``TypeError_`` for incomparable types."""
    if is_numeric(left) and is_numeric(right):
        a, b = numeric_as_decimal(left), numeric_as_decimal(right)
        if a.is_nan() or b.is_nan():
            # NaN orders like PostgreSQL: equal to itself, after every
            # number (a plain Decimal comparison signals InvalidOperation)
            if a.is_nan() and b.is_nan():
                return 0
            return 1 if a.is_nan() else -1
        return (a > b) - (a < b)
    if is_numeric(left) and isinstance(right, SQLString):
        a, b = float(numeric_as_decimal(left)), _as_double(right)
        return (a > b) - (a < b)
    if isinstance(left, SQLString) and is_numeric(right):
        a, b = _as_double(left), float(numeric_as_decimal(right))
        return (a > b) - (a < b)
    if isinstance(left, SQLString) and isinstance(right, SQLString):
        return (left.value > right.value) - (left.value < right.value)
    if isinstance(left, SQLRow) and isinstance(right, SQLRow):
        if ctx.get_config("row_comparison") == "off":
            raise TypeError_("ROW values are not comparable")
        for a, b in zip(left.items, right.items):
            cmp = compare_values(ctx, a, b)
            if cmp != 0:
                return cmp
        return (len(left.items) > len(right.items)) - (
            len(left.items) < len(right.items)
        )
    if type(left) is type(right):
        a_key, b_key = left.sort_key(), right.sort_key()
        return (a_key > b_key) - (a_key < b_key)
    if isinstance(left, SQLDate) and isinstance(right, SQLDateTime):
        return compare_values(ctx, SQLDateTime(left, SQLTime(0, 0, 0)), right)
    if isinstance(left, SQLDateTime) and isinstance(right, SQLDate):
        return compare_values(ctx, left, SQLDateTime(right, SQLTime(0, 0, 0)))
    if isinstance(left, (SQLDate, SQLDateTime)) and isinstance(right, SQLString):
        return compare_values(ctx, SQLString(left.render()), right)
    if isinstance(left, SQLString) and isinstance(right, (SQLDate, SQLDateTime)):
        return compare_values(ctx, left, SQLString(right.render()))
    raise TypeError_(
        f"cannot compare {left.type_name} with {right.type_name}"
    )


# ---------------------------------------------------------------------------
# LIKE / regex matching (hand-rolled; no `re` dependency in the hot path)
# ---------------------------------------------------------------------------
def like_match(pattern: str, text: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards and ``\\`` escapes."""
    # iterative two-pointer algorithm with backtracking on '%'
    p_idx = t_idx = 0
    star_p = star_t = -1
    while t_idx < len(text):
        literal = None
        if p_idx < len(pattern):
            ch = pattern[p_idx]
            if ch == "\\" and p_idx + 1 < len(pattern):
                literal = pattern[p_idx + 1]
                consumed = 2
            elif ch == "_":
                literal = None
                consumed = 1
            elif ch == "%":
                star_p, star_t = p_idx, t_idx
                p_idx += 1
                continue
            else:
                literal = ch
                consumed = 1
            if ch == "_" or (literal is not None and literal == text[t_idx]):
                p_idx += consumed
                t_idx += 1
                continue
        if star_p != -1:
            star_t += 1
            t_idx = star_t
            p_idx = star_p + 1
            continue
        return False
    while p_idx < len(pattern) and pattern[p_idx] == "%":
        p_idx += 1
    return p_idx == len(pattern)


def regex_search(pattern: str, text: str) -> bool:
    """Regex matching used by REGEXP/RLIKE.  Delegates to :mod:`re` with
    the pattern treated as POSIX-ish; invalid patterns are SQL errors."""
    import re
    import warnings

    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return re.search(pattern, text) is not None
    except re.error as exc:
        raise ValueError_(f"invalid regular expression: {exc}")
    except RecursionError:
        raise ValueError_("regular expression too complex")


_DISPATCH = {
    n.IntegerLit: Evaluator._integer,
    n.DecimalLit: Evaluator._decimal,
    n.StringLit: Evaluator._string,
    n.NullLit: Evaluator._null,
    n.BooleanLit: Evaluator._boolean,
    n.Star: Evaluator._star,
    n.ParamRef: Evaluator._param,
    n.ColumnRef: Evaluator._column,
    n.FuncCall: Evaluator._func,
    n.UnaryOp: Evaluator._unary,
    n.BinaryOp: Evaluator._binary,
    n.Cast: Evaluator._cast,
    n.CaseExpr: Evaluator._case,
    n.InExpr: Evaluator._in,
    n.BetweenExpr: Evaluator._between,
    n.LikeExpr: Evaluator._like,
    n.IsNullExpr: Evaluator._isnull,
    n.ExistsExpr: Evaluator._exists,
    n.SubqueryExpr: Evaluator._subquery,
    n.RowExpr: Evaluator._row,
    n.ArrayExpr: Evaluator._array,
    n.MapExpr: Evaluator._map,
    n.IntervalExpr: Evaluator._interval,
    n.IndexExpr: Evaluator._index,
}
