"""Result-set fingerprints for differential oracles.

A fingerprint is a normalized summary of a successful statement's result
set: the row count, the multiset of per-cell type tags, and a digest over
the *sorted* rendered rows.  Sorting makes the digest a row-multiset hash —
two result sets that differ only in row order fingerprint identically,
because SQL makes no ordering promise without ORDER BY and the simulated
dialects are free to disagree about unordered output.

Fingerprints deliberately summarize the client-visible rendering, not the
internal value objects: a wrong-result bug that a user could observe must
change the rendering, and renderings survive JSON checkpoints and process
boundaries unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class ResultFingerprint:
    """Normalized summary of one result set."""

    row_count: int
    type_tags: Tuple[str, ...]   # sorted, deduplicated cell type names
    digest: str                  # sha256 over the sorted rendered rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "row_count": self.row_count,
            "type_tags": list(self.type_tags),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResultFingerprint":
        return cls(
            row_count=int(data["row_count"]),
            type_tags=tuple(data["type_tags"]),
            digest=str(data["digest"]),
        )


def fingerprint_result(result) -> ResultFingerprint:
    """Fingerprint an :class:`~repro.engine.executor.Result`.

    Batched: each row is rendered to one ``bytes`` string (the same
    ``type\\x1frendering\\x1e…\\x1d`` framing as always), the encoded rows
    are sorted — a multiset hash needs a canonical order, and comparing
    pre-encoded byte strings is far cheaper than comparing tuples of
    Python strings — and the digest is computed in a single hash call
    instead of four ``update`` calls per cell.
    """
    tags = set()
    add_tag = tags.add
    encoded = []
    for row in result.rows:
        parts = []
        append = parts.append
        for cell in row:
            type_name = cell.type_name
            add_tag(type_name)
            append(type_name.encode("utf-8"))
            append(b"\x1f")
            append(cell.render().encode("utf-8", "surrogatepass"))
            append(b"\x1e")
        append(b"\x1d")
        encoded.append(b"".join(parts))
    encoded.sort()
    return ResultFingerprint(
        row_count=len(encoded),
        type_tags=tuple(sorted(tags)),
        digest=hashlib.sha256(b"".join(encoded)).hexdigest()[:16],
    )


def divergence_class(
    a: ResultFingerprint, b: ResultFingerprint
) -> Optional[str]:
    """Classify how two fingerprints differ (None = identical).

    The classes are ordered by how blatant the disagreement is: a type
    disagreement subsumes a value one, a cardinality disagreement subsumes
    both.  Differential findings dedupe on this class, so the ordering also
    fixes which label a (function, dialect-pair) discovery carries.
    """
    if a.row_count != b.row_count:
        return "cardinality"
    if a.type_tags != b.type_tags:
        return "type"
    if a.digest != b.digest:
        return "value"
    return None
