"""A small rule-based optimizer.

Real DBMSs crash in the optimizer too (Finding 1: 19.6% of studied bugs).
Our optimizer performs the classic cheap rewrites — constant folding of
literal arithmetic, predicate simplification, and aggregate argument
normalisation — under ``ctx.stage = "optimize"`` so any crash raised while
rewriting is attributed to the optimization stage, exactly how the paper
classifies backtraces.

Function calls are *not* folded by default (their implementations run at
execution); dialects that advertise aggressive constant folding set the
``fold_functions`` config knob, which moves function-bug crashes into the
optimize stage for those dialects.
"""

from __future__ import annotations

from typing import Optional

from ..sqlast import nodes as n
from ..sqlast.visitor import transform
from .context import ExecutionContext
from .errors import SQLError
from .evaluator import Evaluator
from .values import (
    SQLBoolean,
    SQLDecimal,
    SQLDouble,
    SQLInteger,
    SQLString,
    SQLValue,
)

_LITERAL_NODES = (n.IntegerLit, n.DecimalLit, n.StringLit, n.NullLit, n.BooleanLit)


def _is_literal(expr: n.Node) -> bool:
    return isinstance(expr, _LITERAL_NODES)


def _value_to_literal(value: SQLValue) -> Optional[n.Expr]:
    if value.is_null:
        return n.NullLit()
    if isinstance(value, SQLBoolean):
        return n.BooleanLit(value.value)
    if isinstance(value, SQLInteger):
        return n.IntegerLit(str(value.value))
    if isinstance(value, SQLDecimal):
        return n.DecimalLit(value.render())
    if isinstance(value, SQLDouble):
        return n.DecimalLit(value.render())
    if isinstance(value, SQLString):
        return n.StringLit(value.value)
    return None


def optimize_statement(ctx: ExecutionContext, stmt: n.Statement) -> n.Statement:
    """Run the rewrite pipeline over *stmt* (returns a rewritten tree).

    The ``optimizer_passes`` config knob selects the pass subset: the
    default (unset or ``"all"``) runs every rewrite; ``"none"``/``"off"``
    suppresses optimization entirely and executes the parsed tree as-is.
    Suppressed execution is the NoREC oracle's reference arm — the same
    statement evaluated without any rewrite the optimizer could get wrong.
    """
    passes = ctx.get_config("optimizer_passes")
    if passes in ("none", "off"):
        return stmt
    previous_stage = ctx.stage
    ctx.stage = "optimize"
    rewritten = transform(stmt, lambda node: _fold(ctx, node))
    # deliberately not a finally-block: when a CrashSignal unwinds through
    # here the stage must stay "optimize" so the crash is attributed to the
    # optimization stage (Finding 1's classification)
    ctx.stage = previous_stage
    return rewritten  # type: ignore[return-value]


def _fold(ctx: ExecutionContext, node: n.Node) -> Optional[n.Node]:
    fold_functions = ctx.get_config("fold_functions") == "1"
    # constant-fold unary/binary arithmetic over literals
    if isinstance(node, n.BinaryOp) and _is_literal(node.left) and _is_literal(node.right):
        if node.op.upper() in ("AND", "OR"):
            return None  # keep three-valued logic to the executor
        if (
            node.op in ("=", "<>", "!=", "<", ">", "<=", ">=")
            and (isinstance(node.left, n.NullLit) or isinstance(node.right, n.NullLit))
            and ctx.get_config("faulty_fold_null_compare") == "1"
        ):
            # seeded predicate-level defect (dialects/flaws.py kind "norec"):
            # the constant folder rewrites NULL comparisons to FALSE instead
            # of NULL — invisible to execution-stage oracles, but optimized
            # and optimization-suppressed runs of the same statement diverge
            return n.BooleanLit(False)
        return _try_eval(ctx, node)
    if isinstance(node, n.UnaryOp) and _is_literal(node.operand) and node.op != "NOT":
        return _try_eval(ctx, node)
    if fold_functions and isinstance(node, n.FuncCall):
        if all(_is_literal(a) for a in node.args):
            try:
                definition = ctx.registry.lookup(node.name)
            except SQLError:
                return None
            if definition.pure and not definition.is_aggregate:
                return _try_eval(ctx, node)
    # WHERE TRUE elimination
    if isinstance(node, n.Select) and isinstance(node.where, n.BooleanLit):
        if node.where.value:
            node.where = None
        return None
    return None


def _try_eval(ctx: ExecutionContext, expr: n.Expr) -> Optional[n.Expr]:
    """Evaluate a constant expression; SQL errors defer to execution."""
    evaluator = Evaluator(ctx, scope=None)
    try:
        value = evaluator.eval(expr)
    except SQLError:
        return None  # let the executor report it (or not reach it at all)
    return _value_to_literal(value)
