"""Pickle-free byte-level transport for parallel campaign shards.

``ParallelCampaign`` historically moved everything between parent and
worker processes through ``multiprocessing``'s pickle channel: the warm
statement corpus in, the shard report out.  Pickle is a poor wire format
for this workload — every statement string pays per-object framing, the
report pays class metadata, and the parent must unpickle attacker-shaped
bytes from a channel whose only other users are its own children.  This
module replaces both directions with explicit byte-level codecs:

* **Statement corpora travel template-factored.**  The generation stream
  is highly repetitive in *shape*: thousands of statements share a few
  hundred skeletons and differ only in literal values (the same
  observation behind the template tier of
  :class:`~repro.perf.stmtcache.StatementCache`).  :func:`pack_statements`
  factors each statement into (template id, literal texts) using
  byte-exact literal spans from the lexer, stores each distinct template
  **once**, and ships repeats as a template reference plus their literals.
  Unpacking is pure string concatenation — no lexing, no parsing — and
  reconstructs every statement byte-for-byte.
* **Shard reports travel as packed value trees.**  :func:`encode_value` /
  :func:`decode_value` implement a small length-prefixed binary codec for
  the JSON-ish types shard reports are made of (None, bool, int, float,
  str, bytes, list, dict).  Reports are written to a temp file by the
  worker and the multiprocessing channel carries only the file path, so
  the pickle layer never sees a payload that grows with the campaign.
* :func:`transport_stats` quantifies the win against the pickle baseline
  (``bytes-per-statement``); the CI smoke guard asserts the ratio.

The literal-span factoring is self-verifying: a statement only packs as a
template reference if re-concatenating segments and literals reproduces
the original text exactly; anything surprising (and any statement the
lexer rejects) ships verbatim through the raw escape hatch.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..sqlast.lexer import LexError, Lexer
from ..sqlast.tokens import TokenKind

#: literal token kinds whose source spans become template slots (the same
#: kinds the statement cache masks out of its fingerprints)
_LITERAL_KINDS = (TokenKind.INTEGER, TokenKind.DECIMAL, TokenKind.STRING)

_F64 = struct.Struct("!d")


# ---------------------------------------------------------------------------
# literal-span factoring
# ---------------------------------------------------------------------------
def split_literals(sql: str) -> Optional[Tuple[List[str], List[str]]]:
    """Factor *sql* into ``(segments, literals)`` by literal source spans.

    ``segments`` has exactly ``len(literals) + 1`` entries and interleaving
    them reconstructs the statement byte-for-byte::

        sql == seg[0] + lit[0] + seg[1] + ... + lit[-1] + seg[-1]

    Spans come straight from the lexer's cursor: a token starts at
    ``token.pos`` and ends at the lexer's position after ``next_token``
    returns, so the literal text is the *raw source slice* — quoting,
    escapes, exponent spelling and all — not the token's cooked value.
    Returns ``None`` when the statement cannot be tokenized (the caller
    ships it verbatim).
    """
    lexer = Lexer(sql)
    segments: List[str] = []
    literals: List[str] = []
    last = 0
    try:
        while True:
            token = lexer.next_token()
            if token.kind is TokenKind.EOF:
                break
            if token.kind in _LITERAL_KINDS:
                start = token.pos
                end = lexer.pos
                segments.append(sql[last:start])
                literals.append(sql[start:end])
                last = end
    except LexError:
        return None
    segments.append(sql[last:])
    return segments, literals


# ---------------------------------------------------------------------------
# the binary value codec (pickle-free, JSON-ish type set)
# ---------------------------------------------------------------------------
class TransportError(ValueError):
    """Raised on malformed transport bytes or unsupported values."""


def _write_uvarint(out: List[bytes], value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TransportError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _encode_into(out: List[bytes], value: Any) -> None:
    # bool before int: bool is an int subclass
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        out.append(b"i")
        # zigzag so negative counts stay compact (works at any magnitude)
        _write_uvarint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))
    elif isinstance(value, float):
        out.append(b"f")
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8", "surrogatepass")
        out.append(b"s")
        _write_uvarint(out, len(raw))
        out.append(raw)
    elif isinstance(value, bytes):
        out.append(b"b")
        _write_uvarint(out, len(value))
        out.append(value)
    elif isinstance(value, (list, tuple)):
        out.append(b"l")
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(b"d")
        _write_uvarint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise TransportError(
                    f"transport dict keys must be strings, got {key!r}"
                )
            raw = key.encode("utf-8", "surrogatepass")
            _write_uvarint(out, len(raw))
            out.append(raw)
            _encode_into(out, item)
    else:
        raise TransportError(f"cannot encode {type(value).__name__} value")


def encode_value(value: Any) -> bytes:
    """Encode a JSON-ish value tree to bytes (inverse of decode_value)."""
    out: List[bytes] = []
    _encode_into(out, value)
    return b"".join(out)


def _decode_from(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise TransportError("truncated value")
    tag = data[pos:pos + 1]
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"i":
        raw, pos = _read_uvarint(data, pos)
        return (raw >> 1) ^ -(raw & 1), pos
    if tag == b"f":
        if pos + 8 > len(data):
            raise TransportError("truncated float")
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag in (b"s", b"b"):
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise TransportError("truncated string")
        raw = data[pos:pos + length]
        pos += length
        return (raw.decode("utf-8", "surrogatepass") if tag == b"s" else raw), pos
    if tag == b"l":
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return items, pos
    if tag == b"d":
        count, pos = _read_uvarint(data, pos)
        obj: Dict[str, Any] = {}
        for _ in range(count):
            length, pos = _read_uvarint(data, pos)
            if pos + length > len(data):
                raise TransportError("truncated dict key")
            key = data[pos:pos + length].decode("utf-8", "surrogatepass")
            pos += length
            obj[key], pos = _decode_from(data, pos)
        return obj, pos
    raise TransportError(f"unknown transport tag {tag!r}")


def decode_value(data: bytes) -> Any:
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        raise TransportError(f"{len(data) - pos} trailing bytes after value")
    return value


# ---------------------------------------------------------------------------
# statement stream packing
# ---------------------------------------------------------------------------
#: statement batch format version (leading uvarint of every batch)
CORPUS_VERSION = 2


def _write_str(out: List[bytes], text: str) -> None:
    raw = text.encode("utf-8", "surrogatepass")
    _write_uvarint(out, len(raw))
    out.append(raw)


def _read_str(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _read_uvarint(data, pos)
    if pos + length > len(data):
        raise TransportError("truncated string")
    return data[pos:pos + length].decode("utf-8", "surrogatepass"), pos + length


class StatementEncoder:
    """Stateful dictionary encoder for statement streams.

    Both intern tables persist across :meth:`encode_batch` calls: each
    batch ships only the templates and literal texts the decoder has not
    seen yet (the dictionary delta), then the statements themselves as
    bare uvarint references.  A reference costs ``1 + slots`` uvarints —
    no per-item tags, and no literal *count* either, because the
    template's slot count is already known to both sides.  The
    boundary-argument streams this repository generates reuse a few dozen
    boundary values across hundreds of functions (that reuse is the
    paper's whole premise), so once the dictionary is warm a statement
    costs single-digit bytes regardless of how long its literals spell
    out.  A statement whose factoring does not round-trip byte-for-byte —
    or that the lexer rejects — ships verbatim through the raw escape
    hatch (reference code 0), so decoding is total.

    The matching :class:`StatementDecoder` must consume batches in the
    order they were encoded (its tables grow identically).
    """

    def __init__(self) -> None:
        self._template_slots: List[int] = []
        self._template_index: Dict[Tuple[str, ...], int] = {}
        self._literal_index: Dict[str, int] = {}

    def encode_batch(self, statements: List[str]) -> bytes:
        new_templates: List[List[str]] = []
        new_literals: List[str] = []
        refs: List[bytes] = []
        for sql in statements:
            factored = split_literals(sql)
            if factored is not None:
                segments, literals = factored
                # self-verifying: only ship the factored form if it
                # provably reconstructs the original
                rebuilt = segments[0]
                for literal, segment in zip(literals, segments[1:]):
                    rebuilt += literal + segment
                if rebuilt != sql:
                    factored = None
            if factored is None:
                _write_uvarint(refs, 0)
                _write_str(refs, sql)
                continue
            key = tuple(segments)
            template_id = self._template_index.get(key)
            if template_id is None:
                template_id = len(self._template_index)
                self._template_index[key] = template_id
                self._template_slots.append(len(literals))
                new_templates.append(segments)
            _write_uvarint(refs, template_id + 1)
            for literal in literals:
                literal_id = self._literal_index.get(literal)
                if literal_id is None:
                    literal_id = len(self._literal_index)
                    self._literal_index[literal] = literal_id
                    new_literals.append(literal)
                _write_uvarint(refs, literal_id)
        out: List[bytes] = []
        _write_uvarint(out, CORPUS_VERSION)
        _write_uvarint(out, len(new_templates))
        for segments in new_templates:
            _write_uvarint(out, len(segments))
            for segment in segments:
                _write_str(out, segment)
        _write_uvarint(out, len(new_literals))
        for literal in new_literals:
            _write_str(out, literal)
        _write_uvarint(out, len(statements))
        out.extend(refs)
        return b"".join(out)


class StatementDecoder:
    """Inverse of :class:`StatementEncoder` (pure concatenation)."""

    def __init__(self) -> None:
        self._templates: List[List[str]] = []
        self._literals: List[str] = []

    def decode_batch(self, data: bytes) -> List[str]:
        version, pos = _read_uvarint(data, 0)
        if version != CORPUS_VERSION:
            raise TransportError(f"unknown corpus version {version!r}")
        count, pos = _read_uvarint(data, pos)
        for _ in range(count):
            seg_count, pos = _read_uvarint(data, pos)
            segments = []
            for _ in range(seg_count):
                segment, pos = _read_str(data, pos)
                segments.append(segment)
            self._templates.append(segments)
        count, pos = _read_uvarint(data, pos)
        for _ in range(count):
            literal, pos = _read_str(data, pos)
            self._literals.append(literal)
        count, pos = _read_uvarint(data, pos)
        statements: List[str] = []
        for _ in range(count):
            code, pos = _read_uvarint(data, pos)
            if code == 0:
                sql, pos = _read_str(data, pos)
                statements.append(sql)
                continue
            try:
                segments = self._templates[code - 1]
            except IndexError:
                raise TransportError(f"unknown template reference {code - 1}")
            sql = segments[0]
            for segment in segments[1:]:
                literal_id, pos = _read_uvarint(data, pos)
                sql += self._literals[literal_id] + segment
            statements.append(sql)
        if pos != len(data):
            raise TransportError(f"{len(data) - pos} trailing bytes in batch")
        return statements


def pack_statements(statements: List[str]) -> bytes:
    """One-shot convenience: a single batch from a fresh encoder."""
    return StatementEncoder().encode_batch(statements)


def unpack_statements(data: bytes) -> List[str]:
    """One-shot convenience: decode a single fresh-encoder batch."""
    return StatementDecoder().decode_batch(data)


# ---------------------------------------------------------------------------
# file handoff + instrumentation
# ---------------------------------------------------------------------------
def write_packed(path: str, value: Any) -> int:
    """Write an encoded value tree to *path*; returns the byte count."""
    data = encode_value(value)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def read_packed(path: str) -> Any:
    with open(path, "rb") as fh:
        return decode_value(fh.read())


@dataclass(frozen=True)
class TransportStats:
    """How the statement transport compares to pickling the same stream.

    ``cold_bytes`` is the first encode of the stream (dictionary deltas
    included); ``warm_bytes`` is the same stream re-encoded once the
    dictionary is established — the steady-state cost of shipping a
    statement the receiver has the shape of, which is the regime a
    long-running campaign transport lives in.
    """

    statements: int
    cold_bytes: int
    warm_bytes: int
    pickle_bytes: int
    templates: int

    @property
    def cold_per_statement(self) -> float:
        return self.cold_bytes / self.statements if self.statements else 0.0

    @property
    def warm_per_statement(self) -> float:
        return self.warm_bytes / self.statements if self.statements else 0.0

    @property
    def pickle_per_statement(self) -> float:
        return self.pickle_bytes / self.statements if self.statements else 0.0

    @property
    def warm_reduction(self) -> float:
        """pickle bytes / warm packed bytes (>1 means the packing wins)."""
        return self.pickle_bytes / self.warm_bytes if self.warm_bytes else 0.0

    @property
    def cold_reduction(self) -> float:
        return self.pickle_bytes / self.cold_bytes if self.cold_bytes else 0.0


def transport_stats(statements: List[str]) -> TransportStats:
    """Measure the statement transport against the pickle wire baseline.

    The pickle baseline is re-measured per batch just as a real pickle
    transport would pay it per batch; the packed transport is measured
    both cold (dictionary deltas included) and warm (tables established).
    """
    encoder = StatementEncoder()
    cold = encoder.encode_batch(statements)
    warm = encoder.encode_batch(statements)
    baseline = pickle.dumps(statements, protocol=pickle.HIGHEST_PROTOCOL)
    return TransportStats(
        statements=len(statements),
        cold_bytes=len(cold),
        warm_bytes=len(warm),
        pickle_bytes=len(baseline),
        templates=len(encoder._template_index),
    )
