"""Plan→closure compiler for the execution hot path.

A template-cache hit (~59% of the generation stream) used to rebind
literals and then *re-interpret* the whole tree: ``Evaluator.eval`` looks
every node's class up in the ``_DISPATCH`` dict, per node, per execution.
This module walks an optimized plan **once** and emits a tree of Python
closures — one per AST node, children pre-bound — so repeat executions run
the closures directly with zero dispatch lookups and zero tree walks.

Design rules (all in service of byte-identical campaign signatures):

* **Closures reuse the interpreter's semantics verbatim.**  Hot node types
  compile structurally but call the same module-level helpers the
  interpreter calls (``apply_binary``, ``cast_value``,
  ``Evaluator.call_function`` …), so error classes, messages,
  ``note_function`` order, and ``stats`` side effects cannot drift.  Rare
  node types compile to an *interned dispatch* closure — the per-class
  method pointer captured at compile time — which is the interpreter minus
  the dict lookup.
* **Literal slots are cell references.**  A literal closure keeps a
  reference to its (mutable) AST node and reads ``node.text`` /
  ``node.value`` at call time, memoizing the constructed ``SQLValue`` by
  text identity.  The template cache rebinds literals *in place*, so a
  compiled program follows every rebinding automatically: the cache owns
  the tree, the program owns only pointers into it.
* **Compile only what is provably interpreter-equivalent.**  Statements
  outside the supported shape (FROM/WHERE/GROUP BY/ORDER BY/LIMIT,
  set operations, subqueries, top-level ``*``) or whose functions cannot
  be resolved at compile time simply return ``None`` and keep taking the
  interpreted ``Executor`` path — declining is always correct.
* **Governed execution never runs compiled code.**  The governor ticks
  per-node budgets inside ``Evaluator.eval``; closures skip those hooks,
  so callers gate on ``ctx.governor is None`` (the cache counts the
  fallbacks).  Registry capture at compile time is sound because the
  statement cache is invalidated on every restart and every non-SELECT,
  so a plan never outlives the context it was compiled against.
"""

from __future__ import annotations

import decimal
from typing import Callable, List, Optional

from ..engine.casting import cast_value
from ..engine.context import ExecutionContext
from ..engine.errors import NameError_, SQLError, TypeError_, ValueError_
from ..engine.evaluator import (
    _DISPATCH,
    Evaluator,
    RowScope,
    apply_binary,
    arith_negate,
    cast_int_for_bitop,
)
from ..engine.executor import Result
from ..engine.memory import fits_int64
from ..engine.values import (
    DECIMAL_CONTEXT,
    FALSE,
    NULL,
    STAR_MARKER,
    TRUE,
    SQLDecimal,
    SQLDouble,
    SQLInteger,
    SQLString,
    SQLValue,
    is_numeric,
)
from ..sqlast import nodes as n
from ..sqlast.visitor import walk

#: a compiled expression: evaluates itself for one row via the evaluator
#: (the evaluator carries scope / group rows / context, exactly as in the
#: interpreted path)
Closure = Callable[[Evaluator], SQLValue]

#: a compiled statement: Connection.execute calls it instead of building
#: an Executor when the plan cache hands one back
Program = Callable[[ExecutionContext], Result]


class _Uncompilable(Exception):
    """Internal signal: decline this statement, take the interpreted path."""


# ---------------------------------------------------------------------------
# literal closures — the "cell reference" slots the template cache rebinds
# ---------------------------------------------------------------------------
def _c_integer(node: n.IntegerLit) -> Closure:
    memo_text: Optional[str] = None
    memo_value: Optional[SQLValue] = None

    def run(ev: Evaluator) -> SQLValue:
        nonlocal memo_text, memo_value
        text = node.text
        if text is not memo_text:
            value = node.value
            if fits_int64(value):
                memo_value = SQLInteger(value)
            else:
                memo_value = SQLDecimal(DECIMAL_CONTEXT.create_decimal(value))
            memo_text = text
        return memo_value

    return run


def _c_decimal(node: n.DecimalLit) -> Closure:
    memo_text: Optional[str] = None
    memo_value: Optional[SQLValue] = None

    def run(ev: Evaluator) -> SQLValue:
        nonlocal memo_text, memo_value
        text = node.text
        if text is not memo_text:
            if "e" in text.lower():
                try:
                    memo_value = SQLDouble(float(text))
                except (ValueError, OverflowError):
                    raise ValueError_(f"invalid float literal {text!r}")
            else:
                memo_value = SQLDecimal.from_text(text)
            memo_text = text
        return memo_value

    return run


def _c_string(node: n.StringLit) -> Closure:
    memo_text: Optional[str] = None
    memo_value: Optional[SQLValue] = None

    def run(ev: Evaluator) -> SQLValue:
        nonlocal memo_text, memo_value
        text = node.value
        if text is not memo_text:
            memo_value = SQLString(text)
            memo_text = text
        return memo_value

    return run


def _c_constant(value: SQLValue) -> Closure:
    def run(ev: Evaluator) -> SQLValue:
        return value

    return run


def _c_param(node: n.ParamRef) -> Closure:
    def run(ev: Evaluator) -> SQLValue:
        raise TypeError_("positional parameters are not bound")

    return run


# ---------------------------------------------------------------------------
# references and calls
# ---------------------------------------------------------------------------
def _c_column(node: n.ColumnRef) -> Closure:
    name = node.name
    if len(node.parts) > 1:
        qualified = ".".join(node.parts)

        def run(ev: Evaluator) -> SQLValue:
            scope = ev.scope
            if scope is None:
                raise NameError_(f"unknown column {name!r} (no FROM clause)")
            try:
                return scope.lookup(qualified)
            except NameError_:
                return scope.lookup(name)

        return run

    def run(ev: Evaluator) -> SQLValue:
        scope = ev.scope
        if scope is None:
            raise NameError_(f"unknown column {name!r} (no FROM clause)")
        return scope.lookup(name)

    return run


def _c_func_scalar(definition, arg_closures: List[Closure]) -> Closure:
    """Scalar call with the instrumented invocation inlined.

    The argument count is static, so ``check_arity`` runs once at compile
    time (a failing check declines compilation and the interpreter raises
    the identical error).  The body below is ``Evaluator.call_function``
    with the per-call attribute traffic hoisted: the impl pointer, the
    lowered name (``note_function``) and the uppercased name (the error
    wrapper) are captured as cells.  Side-effect order is preserved
    exactly — triggered-functions before stats, ``current_function``
    save/restore around the impl, the same exception tuple and message.
    """
    try:
        definition.check_arity(len(arg_closures))
    except SQLError:
        raise _Uncompilable(definition.name)
    impl = definition.impl
    name = definition.name
    lname = name.lower()
    uname = name.upper()
    if len(arg_closures) == 1:
        arg0 = arg_closures[0]

        def run(ev: Evaluator) -> SQLValue:
            args = [arg0(ev)]
            ctx = ev.ctx
            ctx.triggered_functions.add(lname)
            ctx.stats["function_calls"] += 1
            previous = ctx.current_function
            ctx.current_function = name
            try:
                if ctx.coverage is not None:
                    with ctx.coverage.tracking():
                        return impl(ctx, args)
                return impl(ctx, args)
            except (decimal.InvalidOperation, decimal.Overflow,
                    ArithmeticError, ValueError) as exc:
                raise ValueError_(
                    f"{uname}: value out of range ({exc})"
                ) from None
            finally:
                ctx.current_function = previous

        return run

    def run(ev: Evaluator) -> SQLValue:
        args = [c(ev) for c in arg_closures]
        ctx = ev.ctx
        ctx.triggered_functions.add(lname)
        ctx.stats["function_calls"] += 1
        previous = ctx.current_function
        ctx.current_function = name
        try:
            if ctx.coverage is not None:
                with ctx.coverage.tracking():
                    return impl(ctx, args)
            return impl(ctx, args)
        except (decimal.InvalidOperation, decimal.Overflow,
                ArithmeticError, ValueError) as exc:
            raise ValueError_(f"{uname}: value out of range ({exc})") from None
        finally:
            ctx.current_function = previous

    return run


def _c_func_aggregate(node: n.FuncCall, definition, arg_closures) -> Closure:
    """Aggregate call; ``arg_closures[i]`` is None for a ``*`` argument.

    Mirrors ``Evaluator._eval_aggregate``: per-row sub-evaluators for each
    argument, DISTINCT dedup on sort keys, then the shared instrumented
    invocation (``Evaluator.call_aggregate``).
    """
    distinct = node.distinct
    check_arity = definition.check_arity

    def run(ev: Evaluator) -> SQLValue:
        ctx = ev.ctx
        rows = ev.group_rows
        if rows is None:
            rows = [ev.scope] if ev.scope is not None else [RowScope()]
        columns: List[List[SQLValue]] = []
        for closure in arg_closures:
            if closure is None:  # a bare * argument counts rows
                columns.append([STAR_MARKER for _ in rows])
                continue
            values: List[SQLValue] = []
            for row in rows:
                sub = Evaluator(ctx, scope=row, group_rows=None)
                values.append(closure(sub))
            columns.append(values)
        if distinct and columns:
            seen = set()
            keep: List[int] = []
            for idx in range(len(columns[0])):
                key = tuple(col[idx].sort_key() for col in columns)
                if key not in seen:
                    seen.add(key)
                    keep.append(idx)
            columns = [[col[i] for i in keep] for col in columns]
        check_arity(len(columns))
        return ev.call_aggregate(definition, columns)

    return run


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------
def _c_unary(node: n.UnaryOp, operand_c: Closure) -> Closure:
    op = node.op.upper()
    if op in ("NOT", "!"):

        def run(ev: Evaluator) -> SQLValue:
            value = operand_c(ev)
            if value.is_null:
                return NULL
            return FALSE if value.as_bool() else TRUE

        return run
    if op == "-":

        def run(ev: Evaluator) -> SQLValue:
            value = operand_c(ev)
            if value.is_null:
                return NULL
            return arith_negate(value)

        return run
    if op == "+":

        def run(ev: Evaluator) -> SQLValue:
            value = operand_c(ev)
            if value.is_null:
                return NULL
            if not is_numeric(value):
                raise TypeError_(f"unary + on {value.type_name}")
            return value

        return run
    if op == "~":

        def run(ev: Evaluator) -> SQLValue:
            value = operand_c(ev)
            if value.is_null:
                return NULL
            return SQLInteger(~cast_int_for_bitop(value))

        return run
    source_op = node.op

    def run(ev: Evaluator) -> SQLValue:
        value = operand_c(ev)
        if value.is_null:
            return NULL
        raise TypeError_(f"unsupported unary operator {source_op}")

    return run


def _c_binary(node: n.BinaryOp, left_c: Closure, right_c: Closure) -> Closure:
    op = node.op.upper()
    if op == "AND":

        def run(ev: Evaluator) -> SQLValue:
            left = left_c(ev)
            left_b = None if left.is_null else left.as_bool()
            if left_b is False:
                return FALSE
            right = right_c(ev)
            right_b = None if right.is_null else right.as_bool()
            if right_b is False:
                return FALSE
            if left_b is None or right_b is None:
                return NULL
            return TRUE

        return run
    if op == "OR":

        def run(ev: Evaluator) -> SQLValue:
            left = left_c(ev)
            left_b = None if left.is_null else left.as_bool()
            if left_b is True:
                return TRUE
            right = right_c(ev)
            right_b = None if right.is_null else right.as_bool()
            if right_b is True:
                return TRUE
            if left_b is None or right_b is None:
                return NULL
            return FALSE

        return run

    def run(ev: Evaluator) -> SQLValue:
        return apply_binary(ev.ctx, op, left_c(ev), right_c(ev))

    return run


def _c_cast(node: n.Cast, operand_c: Closure) -> Closure:
    type_name = node.type_name

    def run(ev: Evaluator) -> SQLValue:
        value = operand_c(ev)
        ctx = ev.ctx
        ctx.stats["casts"] += 1
        return cast_value(ctx, value, type_name)

    return run


def _c_isnull(node: n.IsNullExpr, operand_c: Closure) -> Closure:
    negated = node.negated

    def run(ev: Evaluator) -> SQLValue:
        result = operand_c(ev).is_null
        if negated:
            result = not result
        return TRUE if result else FALSE

    return run


def _c_interned(node: n.Expr, method) -> Closure:
    """Interned-dispatch fallback for rare node types.

    The per-class unbound method pointer is captured once at compile time;
    execution is the interpreter's own handler with the ``_DISPATCH``
    lookup removed.  Children are evaluated recursively through
    ``Evaluator.eval``, which keeps exotic subtrees on the battle-tested
    interpreted path.
    """

    def run(ev: Evaluator) -> SQLValue:
        return method(ev, node)

    return run


# ---------------------------------------------------------------------------
# the expression compiler
# ---------------------------------------------------------------------------
#: node classes compiled via interned dispatch rather than structurally;
#: correctness is automatic (same method the interpreter would call)
_INTERNED = (
    n.CaseExpr,
    n.InExpr,
    n.BetweenExpr,
    n.LikeExpr,
    n.RowExpr,
    n.ArrayExpr,
    n.MapExpr,
    n.IntervalExpr,
    n.IndexExpr,
)


def compile_expr(expr: n.Expr, ctx: ExecutionContext) -> Closure:
    """Compile one expression tree; raises ``_Uncompilable`` to decline."""
    if isinstance(expr, n.IntegerLit):
        return _c_integer(expr)
    if isinstance(expr, n.DecimalLit):
        return _c_decimal(expr)
    if isinstance(expr, n.StringLit):
        return _c_string(expr)
    if isinstance(expr, n.NullLit):
        return _c_constant(NULL)
    if isinstance(expr, n.BooleanLit):
        return _c_constant(TRUE if expr.value else FALSE)
    if isinstance(expr, n.Star):
        return _c_constant(STAR_MARKER)
    if isinstance(expr, n.ParamRef):
        return _c_param(expr)
    if isinstance(expr, n.ColumnRef):
        return _c_column(expr)
    if isinstance(expr, n.FuncCall):
        try:
            definition = ctx.registry.lookup(expr.name)
        except SQLError:
            # unknown function: let the interpreter raise it at eval time
            raise _Uncompilable(expr.name)
        if definition.is_aggregate:
            arg_closures = [
                None if isinstance(arg, n.Star) else compile_expr(arg, ctx)
                for arg in expr.args
            ]
            return _c_func_aggregate(expr, definition, arg_closures)
        args = [compile_expr(arg, ctx) for arg in expr.args]
        return _c_func_scalar(definition, args)
    if isinstance(expr, n.UnaryOp):
        return _c_unary(expr, compile_expr(expr.operand, ctx))
    if isinstance(expr, n.BinaryOp):
        return _c_binary(
            expr, compile_expr(expr.left, ctx), compile_expr(expr.right, ctx)
        )
    if isinstance(expr, n.Cast):
        return _c_cast(expr, compile_expr(expr.operand, ctx))
    if isinstance(expr, n.IsNullExpr):
        return _c_isnull(expr, compile_expr(expr.expr, ctx))
    if isinstance(expr, _INTERNED):
        method = _DISPATCH.get(type(expr))
        if method is None:
            raise _Uncompilable(type(expr).__name__)
        return _c_interned(expr, method)
    # ExistsExpr / SubqueryExpr (need an Executor) and anything unknown
    raise _Uncompilable(type(expr).__name__)


# ---------------------------------------------------------------------------
# the statement compiler
# ---------------------------------------------------------------------------
def _is_aggregate_call(expr: n.Node, ctx: ExecutionContext) -> bool:
    if not isinstance(expr, n.FuncCall):
        return False
    try:
        return ctx.registry.lookup(expr.name).is_aggregate
    except SQLError:
        return False


def compile_statement(
    stmt: n.Statement, ctx: ExecutionContext
) -> Optional[Program]:
    """Compile *stmt* to a closure program, or ``None`` to decline.

    Supported shape: a single ``SELECT item [, item]*`` with no FROM,
    WHERE, GROUP BY, HAVING, DISTINCT, ORDER BY, LIMIT or OFFSET, no
    subqueries anywhere, and no top-level ``*`` — which is exactly the
    paper's workload (every seed and every generated boundary case is a
    bare ``SELECT f(args);``).  Everything else stays interpreted.
    """
    if not isinstance(stmt, n.Select):
        return None
    if stmt.from_ or stmt.group_by or stmt.order_by:
        return None
    if stmt.where is not None or stmt.having is not None:
        return None
    if stmt.distinct or stmt.limit is not None or stmt.offset is not None:
        return None
    for item in stmt.items:
        if isinstance(item.expr, n.Star):
            return None  # SELECT * with no FROM: keep the executor's error
    for node in walk(stmt):
        if isinstance(node, (n.ExistsExpr, n.SubqueryExpr)):
            return None  # subqueries need an Executor behind the evaluator
    has_aggregate = any(
        _is_aggregate_call(e, ctx) for item in stmt.items for e in walk(item.expr)
    )
    try:
        item_closures = [compile_expr(item.expr, ctx) for item in stmt.items]
    except _Uncompilable:
        return None

    # output names are static for the no-FROM shape (Executor._output_names
    # only consults scopes for top-level stars, which were declined above)
    names: List[str] = []
    for idx, item in enumerate(stmt.items):
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, n.ColumnRef):
            names.append(item.expr.name)
        else:
            names.append(f"col{idx + 1}")
    columns = names or ["col1"]

    # The evaluator (and its empty scope) is immutable after construction,
    # so one instance per context serves every execution of this program;
    # the memo keys on context identity because a restart builds a fresh
    # context (and also invalidates the cache, making staleness impossible).
    memo_ctx: Optional[ExecutionContext] = None
    memo_ev: Optional[Evaluator] = None

    if has_aggregate:
        # Executor._run_select: one empty scope, one group containing it
        def run(ctx_: ExecutionContext) -> Result:
            nonlocal memo_ctx, memo_ev
            ev = memo_ev
            if ctx_ is not memo_ctx:
                scope = RowScope()
                ev = Evaluator(ctx_, scope, group_rows=[scope])
                memo_ctx, memo_ev = ctx_, ev
            return Result(list(columns), [[c(ev) for c in item_closures]])

    elif len(item_closures) == 1:
        item0 = item_closures[0]

        def run(ctx_: ExecutionContext) -> Result:
            nonlocal memo_ctx, memo_ev
            ev = memo_ev
            if ctx_ is not memo_ctx:
                ev = Evaluator(ctx_, RowScope())
                memo_ctx, memo_ev = ctx_, ev
            return Result(list(columns), [[item0(ev)]])

    else:

        def run(ctx_: ExecutionContext) -> Result:
            nonlocal memo_ctx, memo_ev
            ev = memo_ev
            if ctx_ is not memo_ctx:
                ev = Evaluator(ctx_, RowScope())
                memo_ctx, memo_ev = ctx_, ev
            return Result(list(columns), [[c(ev) for c in item_closures]])

    return run
