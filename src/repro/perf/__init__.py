"""Performance subsystem: statement caching and sharded parallel campaigns.

``repro.perf`` holds the pieces that make campaigns fast without changing
what they compute:

* :mod:`repro.perf.stmtcache` — two-tier LRU parse/plan cache wired into
  ``Connection.execute`` (exact SQL tier + parameterized template tier).
* :mod:`repro.perf.parallel` — ``ParallelCampaign``, which shards the
  deterministic generation stream across ``multiprocessing`` workers and
  merges shard reports into a ``CampaignResult`` whose ``signature()``
  matches the serial run.
"""

from .stmtcache import StatementCache

__all__ = ["StatementCache", "ParallelCampaign", "run_parallel_campaign"]


def __getattr__(name):
    # parallel imports the campaign/runner stack, which imports the engine,
    # which imports stmtcache from this package — loading it lazily keeps
    # ``repro.engine.connection → repro.perf`` cycle-free
    if name in ("ParallelCampaign", "run_parallel_campaign"):
        from . import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
