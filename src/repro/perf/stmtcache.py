"""Statement parse/plan cache for the execution hot path.

Profiling a BUDGET_24H campaign shows roughly half of ``Connection.execute``
is spent re-lexing/re-parsing/re-optimizing SQL text — yet the pattern
streams are highly repetitive in *shape*: P1.x/P2.3/P3.1 emit the same seed
skeleton with one literal swapped.  Only ~7-9% of statements repeat
byte-for-byte, so (as in production DBMS plan caches) an exact-match cache
alone buys little; the win comes from *parameterized* plan templates.

Two LRU tiers, both keyed under the dialect name:

* **exact tier** — ``(dialect, sql) → optimized statement``.  A hit skips
  lexing, parsing, and optimization entirely; the cached plan tree is
  re-executed as-is (execution never mutates ASTs in this engine).
* **template tier** — ``(dialect, fingerprint) → parse template``.  The
  fingerprint is the token stream with literal *values* masked (their
  lexical kinds kept), so ``SELECT ASIN(9999)`` and ``SELECT ASIN(-0.01)``
  share one parse.  On a hit the template's literal slots are rebound from
  the probe's literal tokens — no tree building.  Measured on the duckdb
  generation stream this tier alone serves >50% of statements.

Correctness machinery (a cached plan must be byte-identical in outcome to a
cold parse):

* A statement only becomes a template if its literal *tokens* correspond
  1:1, in order and by kind and value, to the literal *nodes* of its parse
  tree (``_template_slots``).  Statements where the parser consumes literal
  tokens without producing literal nodes (e.g. ``CAST(x AS DECIMAL(30,28))``
  — the 30/28 land in ``TypeName.params``) fail the check and stay
  exact-tier only.  Since rebinding only changes literal values, never
  token shapes, the correspondence proven at template creation holds for
  every later probe with the same fingerprint.
* The optimizer's rewrites fire at structurally-detectable sites (literal
  BinaryOp/UnaryOp, all-literal pure calls under ``fold_functions``,
  ``WHERE TRUE``) and rebinding never changes structure, so a template with
  no fold site (``needs_optimize=False``) provably optimizes to itself for
  *every* rebinding and is executed directly; otherwise the optimizer runs
  per hit on the rebound tree (its transform deep-rewrites into fresh
  nodes, leaving the template untouched).
* Only single-statement SELECT/set-operation text is cached.  Entries are
  inserted after parse+optimize succeed and *before* execution, so an
  execute-stage crash leaves a plan behind and its reconfirmation replays
  the identical plan, while parse/optimize-stage failures never populate
  the cache.
* Any non-SELECT statement (DDL, DML, ``SET`` — which can flip
  ``fold_functions``) and every server restart invalidate the whole cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..sqlast import nodes as n
from ..sqlast.lexer import LexError, tokenize
from ..sqlast.tokens import Token, TokenKind
from ..sqlast.visitor import walk

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import ExecutionContext

#: literal token kinds that are masked out of the fingerprint
_LITERAL_TOKENS = (TokenKind.INTEGER, TokenKind.DECIMAL, TokenKind.STRING)

#: default LRU capacities; generous because the template tier's value grows
#: with the number of distinct shapes it can hold
DEFAULT_EXACT_CAPACITY = 8_192
DEFAULT_TEMPLATE_CAPACITY = 16_384


def _fingerprint(tokens: Sequence[Token]) -> str:
    """Token stream with literal values masked, everything else verbatim.

    Two statements share a fingerprint iff they differ only in the values
    of INTEGER/DECIMAL/STRING literal tokens (kinds preserved — an integer
    and a string at the same position are different shapes, because the
    parser builds different node types for them).
    """
    parts: List[str] = []
    for token in tokens:
        kind = token.kind
        if kind is TokenKind.INTEGER:
            parts.append("\x00i")
        elif kind is TokenKind.DECIMAL:
            parts.append("\x00d")
        elif kind is TokenKind.STRING:
            parts.append("\x00s")
        elif kind is TokenKind.IDENT:
            parts.append(("\x01q" if token.quoted else "\x01") + token.text)
        elif kind is TokenKind.EOF:
            break
        else:  # OPERATOR / PARAM
            parts.append("\x02" + token.text)
    return "\x1f".join(parts)


def _literal_tokens(tokens: Sequence[Token]) -> List[Token]:
    return [t for t in tokens if t.kind in _LITERAL_TOKENS]


_SLOT_NODES = (n.IntegerLit, n.DecimalLit, n.StringLit)


def _template_slots(
    stmt: n.Statement, lit_tokens: Sequence[Token]
) -> Optional[List[n.Expr]]:
    """The statement's literal nodes, iff they correspond 1:1 to the
    literal tokens (same count, order, kind, and value); None otherwise.

    Preorder tree walk yields literal leaves in source order (every node
    type's children are stored in source order), and the value check makes
    the correspondence self-verifying: any statement whose parse does not
    line up — type parameters, lexer-normalized literals, anything
    surprising — is simply not parameterizable.
    """
    slots = [node for node in walk(stmt) if isinstance(node, _SLOT_NODES)]
    if len(slots) != len(lit_tokens):
        return None
    for node, token in zip(slots, lit_tokens):
        if isinstance(node, n.IntegerLit):
            if token.kind is not TokenKind.INTEGER or node.text != token.text:
                return None
        elif isinstance(node, n.DecimalLit):
            if token.kind is not TokenKind.DECIMAL or node.text != token.text:
                return None
        else:  # StringLit
            if token.kind is not TokenKind.STRING or node.value != token.text:
                return None
    return slots


def _has_fold_site(stmt: n.Statement, ctx: "ExecutionContext") -> bool:
    """Whether the optimizer could rewrite any node of *stmt*.

    Mirrors ``repro.engine.optimizer._fold``'s trigger conditions, which
    depend only on node types (and the registry / ``fold_functions``
    config), never on literal values — so this answer is invariant under
    literal rebinding.  Folding is bottom-up and can cascade, but a cascade
    needs an initial site; zero sites means optimize is the identity.
    """
    fold_functions = ctx.get_config("fold_functions") == "1"
    literal = (n.IntegerLit, n.DecimalLit, n.StringLit, n.NullLit, n.BooleanLit)
    for node in walk(stmt):
        if isinstance(node, n.BinaryOp):
            if isinstance(node.left, literal) and isinstance(node.right, literal):
                if node.op.upper() not in ("AND", "OR"):
                    return True
        elif isinstance(node, n.UnaryOp):
            if isinstance(node.operand, literal) and node.op != "NOT":
                return True
        elif isinstance(node, n.Select):
            if isinstance(node.where, n.BooleanLit):
                return True
        elif fold_functions and isinstance(node, n.FuncCall):
            if all(isinstance(a, literal) for a in node.args):
                try:
                    definition = ctx.registry.lookup(node.name)
                except Exception:
                    continue
                if definition.pure and not definition.is_aggregate:
                    return True
    return False


class _Template:
    """One parameterized parse template."""

    __slots__ = ("stmt", "slots", "needs_optimize")

    def __init__(self, stmt: n.Statement, slots: List[n.Expr], needs_optimize: bool):
        self.stmt = stmt
        self.slots = slots
        self.needs_optimize = needs_optimize

    def rebind(self, lit_tokens: Sequence[Token]) -> n.Statement:
        """Splice the probe's literal values into the template in place.

        Safe because the template tree is owned by the cache: execution
        never mutates ASTs, and when optimization is needed it transforms
        into fresh nodes rather than editing these.
        """
        for node, token in zip(self.slots, lit_tokens):
            if isinstance(node, n.StringLit):
                node.value = token.text
            else:  # IntegerLit / DecimalLit keep raw source text
                node.text = token.text
        return self.stmt


class Plan:
    """What a cache probe hands back to ``Connection.execute``."""

    __slots__ = ("stmt", "needs_optimize")

    def __init__(self, stmt: n.Statement, needs_optimize: bool):
        self.stmt = stmt
        self.needs_optimize = needs_optimize


class StatementCache:
    """Two-tier LRU parse/plan cache (see module docstring).

    Not thread-safe; one cache belongs to one simulated server, and each
    parallel campaign worker owns its server (and therefore its cache).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_EXACT_CAPACITY,
        template_capacity: int = DEFAULT_TEMPLATE_CAPACITY,
    ) -> None:
        self.capacity = capacity
        self.template_capacity = template_capacity
        self._exact: "OrderedDict[Tuple[str, str], n.Statement]" = OrderedDict()
        self._templates: "OrderedDict[Tuple[str, str], _Template]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: probe scratch carried from a miss into the following insert
        self._probe_sql: Optional[str] = None
        self._probe_tokens: Optional[List[Token]] = None
        self._probe_fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._exact) + len(self._templates)

    # ------------------------------------------------------------------
    def fetch(self, dialect: str, sql: str) -> Optional[Plan]:
        """Look *sql* up; None means the caller must parse (a miss)."""
        exact_key = (dialect, sql)
        cached = self._exact.get(exact_key)
        if cached is not None:
            self._exact.move_to_end(exact_key)
            self.hits += 1
            return Plan(cached, needs_optimize=False)
        try:
            tokens = tokenize(sql)
        except LexError:
            self.misses += 1
            self._probe_sql = None
            return None
        fingerprint = _fingerprint(tokens)
        template = self._templates.get((dialect, fingerprint))
        if template is not None:
            self._templates.move_to_end((dialect, fingerprint))
            self.hits += 1
            return Plan(
                template.rebind(_literal_tokens(tokens)),
                needs_optimize=template.needs_optimize,
            )
        self.misses += 1
        # stash the lex work for the caller's parse (probe_tokens) and the
        # following insert(), so a miss never lexes or fingerprints twice
        self._probe_sql = sql
        self._probe_tokens = tokens
        self._probe_fingerprint = fingerprint
        return None

    def probe_tokens(self, sql: str) -> Optional[List[Token]]:
        """The token stream lexed by the last (missing) :meth:`fetch`.

        Lets ``Connection.execute`` hand the probe's lex work straight to
        the parser instead of tokenizing the same text a second time.
        """
        if self._probe_sql == sql:
            return self._probe_tokens
        return None

    def insert(
        self,
        dialect: str,
        sql: str,
        parsed: n.Statement,
        optimized: n.Statement,
        ctx: "ExecutionContext",
    ) -> None:
        """Cache a freshly parsed+optimized single SELECT statement.

        Called between optimization and execution: an execute-stage crash
        must leave the plan cached (reconfirmation replays it identically),
        while parse/optimize failures never reach here.
        """
        exact_key = (dialect, sql)
        self._exact[exact_key] = optimized
        self._exact.move_to_end(exact_key)
        while len(self._exact) > self.capacity:
            self._exact.popitem(last=False)
        if self._probe_sql != sql or self._probe_tokens is None:
            return  # lexing failed or probe was for different text
        tokens = self._probe_tokens
        fingerprint = self._probe_fingerprint
        self._probe_sql = None
        self._probe_tokens = None
        self._probe_fingerprint = None
        slots = _template_slots(parsed, _literal_tokens(tokens))
        if slots is None:
            return  # not parameterizable; exact tier still serves repeats
        template = _Template(parsed, slots, _has_fold_site(parsed, ctx))
        template_key = (dialect, fingerprint)
        self._templates[template_key] = template
        self._templates.move_to_end(template_key)
        while len(self._templates) > self.template_capacity:
            self._templates.popitem(last=False)

    # ------------------------------------------------------------------
    def invalidate_all(self, reason: str = "") -> None:
        """Drop every entry (DDL ran, config changed, or server restarted).

        Hit/miss counters survive — they describe the workload, not the
        current contents.
        """
        if self._exact or self._templates:
            self.invalidations += 1
        self._exact.clear()
        self._templates.clear()
        self._probe_sql = None
        self._probe_tokens = None
        self._probe_fingerprint = None

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "exact_entries": len(self._exact),
            "template_entries": len(self._templates),
        }
