"""Statement parse/plan cache for the execution hot path.

Profiling a BUDGET_24H campaign shows roughly half of ``Connection.execute``
is spent re-lexing/re-parsing/re-optimizing SQL text — yet the pattern
streams are highly repetitive in *shape*: P1.x/P2.3/P3.1 emit the same seed
skeleton with one literal swapped.  Only ~7-9% of statements repeat
byte-for-byte, so (as in production DBMS plan caches) an exact-match cache
alone buys little; the win comes from *parameterized* plan templates.

Two LRU tiers, both keyed under the dialect name:

* **exact tier** — ``(dialect, sql) → optimized statement``.  A hit skips
  lexing, parsing, and optimization entirely; the cached plan tree is
  re-executed as-is (execution never mutates ASTs in this engine).
* **template tier** — ``(dialect, fingerprint) → parse template``.  The
  fingerprint is the token stream with literal *values* masked (their
  lexical kinds kept), so ``SELECT ASIN(9999)`` and ``SELECT ASIN(-0.01)``
  share one parse.  On a hit the template's literal slots are rebound from
  the probe's literal tokens — no tree building.  Measured on the duckdb
  generation stream this tier alone serves >50% of statements.

Correctness machinery (a cached plan must be byte-identical in outcome to a
cold parse):

* A statement only becomes a template if its literal *tokens* correspond
  1:1, in order and by kind and value, to the literal *nodes* of its parse
  tree (``_template_slots``).  Statements where the parser consumes literal
  tokens without producing literal nodes (e.g. ``CAST(x AS DECIMAL(30,28))``
  — the 30/28 land in ``TypeName.params``) fail the check and stay
  exact-tier only.  Since rebinding only changes literal values, never
  token shapes, the correspondence proven at template creation holds for
  every later probe with the same fingerprint.
* The optimizer's rewrites fire at structurally-detectable sites (literal
  BinaryOp/UnaryOp, all-literal pure calls under ``fold_functions``,
  ``WHERE TRUE``) and rebinding never changes structure, so a template with
  no fold site (``needs_optimize=False``) provably optimizes to itself for
  *every* rebinding and is executed directly; otherwise the optimizer runs
  per hit on the rebound tree (its transform deep-rewrites into fresh
  nodes, leaving the template untouched).
* Only single-statement SELECT/set-operation text is cached.  Entries are
  inserted after parse+optimize succeed and *before* execution, so an
  execute-stage crash leaves a plan behind and its reconfirmation replays
  the identical plan, while parse/optimize-stage failures never populate
  the cache.
* Any non-SELECT statement (DDL, DML, ``SET`` — which can flip
  ``fold_functions``) and every server restart invalidate the whole cache.

Compiled plans (the third acceleration layer, see ``repro.perf.compiler``):
entries in both tiers lazily attach a **compiled closure program** the first
time they are fetched with a context.  Exact-tier entries always qualify
(they store the final optimized tree, executed as-is); template-tier
entries qualify only when ``needs_optimize`` is False — a template with a
fold site re-optimizes per rebinding into fresh nodes under
``stage="optimize"``, and moving that work into compiled execution would
re-attribute optimize-stage crashes to the execute stage.  Compilation is
skipped (and counted in ``compile_fallbacks``) while a resource governor is
attached — the governor's per-node budget hooks live in the interpreter —
and when a sandbox worker force-disables it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..sqlast import nodes as n
from ..sqlast.lexer import LexError, tokenize
from ..sqlast.tokens import Token, TokenKind
from ..sqlast.visitor import walk

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import ExecutionContext

#: literal token kinds that are masked out of the fingerprint
_LITERAL_TOKENS = (TokenKind.INTEGER, TokenKind.DECIMAL, TokenKind.STRING)

#: default LRU capacities; generous because the template tier's value grows
#: with the number of distinct shapes it can hold
DEFAULT_EXACT_CAPACITY = 8_192
DEFAULT_TEMPLATE_CAPACITY = 16_384


def _fingerprint(tokens: Sequence[Token]) -> str:
    """Token stream with literal values masked, everything else verbatim.

    Two statements share a fingerprint iff they differ only in the values
    of INTEGER/DECIMAL/STRING literal tokens (kinds preserved — an integer
    and a string at the same position are different shapes, because the
    parser builds different node types for them).
    """
    parts: List[str] = []
    for token in tokens:
        kind = token.kind
        if kind is TokenKind.INTEGER:
            parts.append("\x00i")
        elif kind is TokenKind.DECIMAL:
            parts.append("\x00d")
        elif kind is TokenKind.STRING:
            parts.append("\x00s")
        elif kind is TokenKind.IDENT:
            parts.append(("\x01q" if token.quoted else "\x01") + token.text)
        elif kind is TokenKind.EOF:
            break
        else:  # OPERATOR / PARAM
            parts.append("\x02" + token.text)
    return "\x1f".join(parts)


def _literal_tokens(tokens: Sequence[Token]) -> List[Token]:
    return [t for t in tokens if t.kind in _LITERAL_TOKENS]


_SLOT_NODES = (n.IntegerLit, n.DecimalLit, n.StringLit)


def _template_slots(
    stmt: n.Statement, lit_tokens: Sequence[Token]
) -> Optional[List[n.Expr]]:
    """The statement's literal nodes, iff they correspond 1:1 to the
    literal tokens (same count, order, kind, and value); None otherwise.

    Preorder tree walk yields literal leaves in source order (every node
    type's children are stored in source order), and the value check makes
    the correspondence self-verifying: any statement whose parse does not
    line up — type parameters, lexer-normalized literals, anything
    surprising — is simply not parameterizable.
    """
    slots = [node for node in walk(stmt) if isinstance(node, _SLOT_NODES)]
    if len(slots) != len(lit_tokens):
        return None
    for node, token in zip(slots, lit_tokens):
        if isinstance(node, n.IntegerLit):
            if token.kind is not TokenKind.INTEGER or node.text != token.text:
                return None
        elif isinstance(node, n.DecimalLit):
            if token.kind is not TokenKind.DECIMAL or node.text != token.text:
                return None
        else:  # StringLit
            if token.kind is not TokenKind.STRING or node.value != token.text:
                return None
    return slots


def _has_fold_site(stmt: n.Statement, ctx: "ExecutionContext") -> bool:
    """Whether the optimizer could rewrite any node of *stmt*.

    Mirrors ``repro.engine.optimizer._fold``'s trigger conditions, which
    depend only on node types (and the registry / ``fold_functions``
    config), never on literal values — so this answer is invariant under
    literal rebinding.  Folding is bottom-up and can cascade, but a cascade
    needs an initial site; zero sites means optimize is the identity.
    """
    fold_functions = ctx.get_config("fold_functions") == "1"
    literal = (n.IntegerLit, n.DecimalLit, n.StringLit, n.NullLit, n.BooleanLit)
    for node in walk(stmt):
        if isinstance(node, n.BinaryOp):
            if isinstance(node.left, literal) and isinstance(node.right, literal):
                if node.op.upper() not in ("AND", "OR"):
                    return True
        elif isinstance(node, n.UnaryOp):
            if isinstance(node.operand, literal) and node.op != "NOT":
                return True
        elif isinstance(node, n.Select):
            if isinstance(node.where, n.BooleanLit):
                return True
        elif fold_functions and isinstance(node, n.FuncCall):
            if all(isinstance(a, literal) for a in node.args):
                try:
                    definition = ctx.registry.lookup(node.name)
                except Exception:
                    continue
                if definition.pure and not definition.is_aggregate:
                    return True
    return False


#: sentinel marking an entry whose compilation has not been attempted yet
#: (distinct from None, which records a compile that declined)
_UNCOMPILED = object()


class _Template:
    """One parameterized parse template."""

    __slots__ = ("stmt", "slots", "needs_optimize", "compiled", "plan", "_bound")

    def __init__(self, stmt: n.Statement, slots: List[n.Expr], needs_optimize: bool):
        self.stmt = stmt
        self.slots = slots
        self.needs_optimize = needs_optimize
        #: closure program over ``stmt`` — sound across rebindings because
        #: literal closures are cell references into the very nodes
        #: :meth:`rebind` mutates
        self.compiled = _UNCOMPILED
        #: reusable Plan carrying the compiled program (set on the first
        #: successful compile; Plans are read-only to their consumers)
        self.plan: Optional["Plan"] = None
        #: identity of the texts list currently spliced into the slots —
        #: a repeat of the same exact-tier entry skips the splice entirely
        self._bound: Optional[Sequence[str]] = None

    def rebind(self, lit_tokens: Sequence[Token]) -> n.Statement:
        """Splice the probe's literal values into the template in place.

        Safe because the template tree is owned by the cache: execution
        never mutates ASTs, and when optimization is needed it transforms
        into fresh nodes rather than editing these.
        """
        self._bound = None  # token lists are transient; no identity to keep
        for node, token in zip(self.slots, lit_tokens):
            if isinstance(node, n.StringLit):
                node.value = token.text
            else:  # IntegerLit / DecimalLit keep raw source text
                node.text = token.text
        return self.stmt

    def rebind_texts(self, texts: Sequence[str]) -> n.Statement:
        """Like :meth:`rebind`, from pre-extracted literal texts.

        Memoized on the identity of *texts*: each exact-tier
        ``_TemplateRef`` owns its texts list for life, so ``is`` means the
        slots already hold exactly these values.
        """
        if texts is self._bound:
            return self.stmt
        for node, text in zip(self.slots, texts):
            if isinstance(node, n.StringLit):
                node.value = text
            else:
                node.text = text
        self._bound = texts
        return self.stmt


class _ExactEntry:
    """One exact-tier entry: the optimized tree plus its compiled program."""

    __slots__ = ("stmt", "compiled", "plan")

    def __init__(self, stmt: n.Statement):
        self.stmt = stmt
        self.compiled = _UNCOMPILED
        self.plan: Optional["Plan"] = None


class _TemplateRef:
    """An exact-tier entry that memoizes a template probe.

    Template hits promote into the exact tier as (template, literal texts)
    so a byte-identical repeat skips lexing and fingerprinting entirely —
    rebinding a handful of saved literal texts is all that's left.  Shares
    the template's tree and compiled program; always consistent because
    both tiers are only ever invalidated together.
    """

    __slots__ = ("template", "texts")

    def __init__(self, template: _Template, texts: List[str]):
        self.template = template
        self.texts = texts


class Plan:
    """What a cache probe hands back to ``Connection.execute``.

    When ``compiled`` is not None the connection calls it directly
    (``compiled(ctx) -> Result``) instead of walking the interpreter.
    """

    __slots__ = ("stmt", "needs_optimize", "compiled")

    def __init__(self, stmt: n.Statement, needs_optimize: bool, compiled=None):
        self.stmt = stmt
        self.needs_optimize = needs_optimize
        self.compiled = compiled


class StatementCache:
    """Two-tier LRU parse/plan cache (see module docstring).

    Not thread-safe; one cache belongs to one simulated server, and each
    parallel campaign worker owns its server (and therefore its cache).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_EXACT_CAPACITY,
        template_capacity: int = DEFAULT_TEMPLATE_CAPACITY,
    ) -> None:
        self.capacity = capacity
        self.template_capacity = template_capacity
        self._exact: "OrderedDict[Tuple[str, str], n.Statement]" = OrderedDict()
        self._templates: "OrderedDict[Tuple[str, str], _Template]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: plan compilation (repro.perf.compiler); default-on, the runner
        #: clears it for --no-compile and sandbox workers force it off
        self.compile_enabled = True
        #: True when compilation was disabled *against* the caller's wish
        #: (sandbox worker with compile requested) — makes every would-be
        #: compiled hit count as a fallback, like the governor does
        self.compile_forced_off = False
        #: hits that wanted compiled execution but fell back to the
        #: interpreter (governor attached, or compilation forced off)
        self.compile_fallbacks = 0
        #: hits served by a compiled closure program
        self.compiled_executions = 0
        #: probe scratch carried from a miss into the following insert
        self._probe_sql: Optional[str] = None
        self._probe_tokens: Optional[List[Token]] = None
        self._probe_fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._exact) + len(self._templates)

    # ------------------------------------------------------------------
    def fetch(
        self, dialect: str, sql: str, ctx: Optional["ExecutionContext"] = None
    ) -> Optional[Plan]:
        """Look *sql* up; None means the caller must parse (a miss).

        With a *ctx*, hits resolve their compiled closure program (built
        lazily on the first hit — insertion never pays for statements that
        are never reused).
        """
        exact_key = (dialect, sql)
        entry = self._exact.get(exact_key)
        if entry is not None:
            # recency bookkeeping only matters once eviction is imminent
            if len(self._exact) >= self.capacity:
                self._exact.move_to_end(exact_key)
            self.hits += 1
            if entry.__class__ is _TemplateRef:
                template = entry.template
                stmt = template.rebind_texts(entry.texts)
                if template.needs_optimize:
                    return Plan(stmt, needs_optimize=True)
                plan = template.plan
                if (
                    plan is not None
                    and ctx is not None
                    and self.compile_enabled
                    and ctx.governor is None
                ):
                    self.compiled_executions += 1
                    return plan
                return Plan(
                    stmt,
                    needs_optimize=False,
                    compiled=self._resolve_compiled(template, ctx),
                )
            plan = entry.plan
            if (
                plan is not None
                and ctx is not None
                and self.compile_enabled
                and ctx.governor is None
            ):
                self.compiled_executions += 1
                return plan
            return Plan(
                entry.stmt,
                needs_optimize=False,
                compiled=self._resolve_compiled(entry, ctx),
            )
        try:
            tokens = tokenize(sql)
        except LexError:
            self.misses += 1
            self._probe_sql = None
            return None
        fingerprint = _fingerprint(tokens)
        template = self._templates.get((dialect, fingerprint))
        if template is not None:
            self._templates.move_to_end((dialect, fingerprint))
            self.hits += 1
            lit_tokens = _literal_tokens(tokens)
            # promote into the exact tier: a byte-identical repeat of this
            # statement will skip lexing and fingerprinting entirely
            self._exact[exact_key] = _TemplateRef(
                template, [t.text for t in lit_tokens]
            )
            while len(self._exact) > self.capacity:
                self._exact.popitem(last=False)
            stmt = template.rebind(lit_tokens)
            if template.needs_optimize:
                # per-rebinding optimization happens in the connection (the
                # fold must keep raising under stage="optimize"); the fresh
                # trees it produces are never worth compiling
                return Plan(stmt, needs_optimize=True)
            return Plan(
                stmt,
                needs_optimize=False,
                compiled=self._resolve_compiled(template, ctx),
            )
        self.misses += 1
        # stash the lex work for the caller's parse (probe_tokens) and the
        # following insert(), so a miss never lexes or fingerprints twice
        self._probe_sql = sql
        self._probe_tokens = tokens
        self._probe_fingerprint = fingerprint
        return None

    def _resolve_compiled(self, entry, ctx: Optional["ExecutionContext"]):
        """The entry's closure program, or None to take the interpreter.

        Compiles on first resolution and memoizes the result (including a
        declined compile, stored as None).  Governed contexts never run
        compiled code — the governor's budget hooks tick inside
        ``Evaluator.eval`` — and sandbox workers force compilation off;
        both cases count as fallbacks when compilation was wanted.
        """
        if ctx is None:
            return None
        if not self.compile_enabled:
            if self.compile_forced_off:
                self.compile_fallbacks += 1
            return None
        if ctx.governor is not None:
            self.compile_fallbacks += 1
            return None
        compiled = entry.compiled
        if compiled is _UNCOMPILED:
            # deferred import: repro.engine.__init__ imports the connection,
            # which imports this module; the compiler imports the engine
            from .compiler import compile_statement

            try:
                compiled = compile_statement(entry.stmt, ctx)
            except Exception:
                compiled = None
            entry.compiled = compiled
        if compiled is None:
            # the compiler declined this statement shape (or raised): every
            # execution that wanted a closure but takes the interpreter is a
            # fallback, so the compiled-vs-fallback share divides executions,
            # not statement shapes
            self.compile_fallbacks += 1
            return None
        if entry.plan is None:
            # memoized so warm hits skip Plan construction *and* this
            # resolver entirely; the closure re-reads the literal cells
            # on every call, so one Plan is sound across rebindings
            entry.plan = Plan(entry.stmt, needs_optimize=False,
                              compiled=compiled)
        self.compiled_executions += 1
        return compiled

    def probe_tokens(self, sql: str) -> Optional[List[Token]]:
        """The token stream lexed by the last (missing) :meth:`fetch`.

        Lets ``Connection.execute`` hand the probe's lex work straight to
        the parser instead of tokenizing the same text a second time.
        """
        if self._probe_sql == sql:
            return self._probe_tokens
        return None

    def insert(
        self,
        dialect: str,
        sql: str,
        parsed: n.Statement,
        optimized: n.Statement,
        ctx: "ExecutionContext",
    ) -> None:
        """Cache a freshly parsed+optimized single SELECT statement.

        Called between optimization and execution: an execute-stage crash
        must leave the plan cached (reconfirmation replays it identically),
        while parse/optimize failures never reach here.
        """
        exact_key = (dialect, sql)
        self._exact[exact_key] = _ExactEntry(optimized)
        self._exact.move_to_end(exact_key)
        while len(self._exact) > self.capacity:
            self._exact.popitem(last=False)
        if self._probe_sql != sql or self._probe_tokens is None:
            return  # lexing failed or probe was for different text
        tokens = self._probe_tokens
        fingerprint = self._probe_fingerprint
        self._probe_sql = None
        self._probe_tokens = None
        self._probe_fingerprint = None
        slots = _template_slots(parsed, _literal_tokens(tokens))
        if slots is None:
            return  # not parameterizable; exact tier still serves repeats
        template = _Template(parsed, slots, _has_fold_site(parsed, ctx))
        template_key = (dialect, fingerprint)
        self._templates[template_key] = template
        self._templates.move_to_end(template_key)
        while len(self._templates) > self.template_capacity:
            self._templates.popitem(last=False)

    # ------------------------------------------------------------------
    # warm-start support (parallel shard workers reuse the parent's cache)
    # ------------------------------------------------------------------
    def export_warm_sql(self, dialect: str) -> List[str]:
        """The exact-tier statement texts for *dialect*, LRU order.

        A parallel campaign's parent exports these after its seed phase so
        shard workers can :meth:`warm` their caches instead of re-parsing
        the shared template prefix cold.
        """
        return [sql for (d, sql) in self._exact if d == dialect]

    def warm(self, dialect: str, sql: str, ctx: "ExecutionContext") -> bool:
        """Pre-populate both tiers from an exported statement text.

        Re-derives parse + optimize exactly as a cold miss would (same
        per-statement RNG reseed, so probabilistic dialect behaviour is
        replayed bit-for-bit), then feeds :meth:`insert` directly — the
        hit/miss counters are untouched, which is the whole point of
        warming.  Exported statements parsed and optimized cleanly in the
        exporting process under the same dialect/seed/config, so failures
        here are unexpected; any failure (including a deterministic
        optimize-stage crash replay) just skips the entry, leaving the
        statement to take the normal cold path when the stream reaches it.
        """
        from ..engine.errors import CrashSignal
        from ..engine.optimizer import optimize_statement
        from ..sqlast import parse_statements

        if (dialect, sql) in self._exact:
            return True
        previous_stage = ctx.stage
        try:
            ctx.reseed_statement_rng(sql)
            tokens = tokenize(sql)
            fingerprint = _fingerprint(tokens)
            statements = parse_statements(sql, tokens=tokens)
            if len(statements) != 1 or not isinstance(
                statements[0], (n.Select, n.SetOp)
            ):
                return False
            parsed = statements[0]
            optimized = optimize_statement(ctx, parsed)
        except (Exception, CrashSignal):
            return False
        finally:
            ctx.stage = previous_stage
        self._probe_sql = sql
        self._probe_tokens = tokens
        self._probe_fingerprint = fingerprint
        self.insert(dialect, sql, parsed, optimized, ctx)
        return True

    # ------------------------------------------------------------------
    def invalidate_all(self, reason: str = "") -> None:
        """Drop every entry (DDL ran, config changed, or server restarted).

        Hit/miss counters survive — they describe the workload, not the
        current contents.
        """
        if self._exact or self._templates:
            self.invalidations += 1
        self._exact.clear()
        self._templates.clear()
        self._probe_sql = None
        self._probe_tokens = None
        self._probe_fingerprint = None

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "exact_entries": len(self._exact),
            "template_entries": len(self._templates),
            "compiled_executions": self.compiled_executions,
            "compile_fallbacks": self.compile_fallbacks,
        }
