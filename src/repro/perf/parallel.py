"""Sharded multi-process campaigns (``--jobs N``).

The paper's evaluation is embarrassingly parallel: each of the "24 hours
per DBMS" campaigns executes an enormous stream of *independent* SELECT
statements.  :class:`ParallelCampaign` exploits that while preserving the
serial campaign's exact observable result — ``CampaignResult.signature()``
of a ``jobs=N`` run equals the serial run's, faults on or off.

Architecture (see DESIGN.md for the full determinism argument):

* The **parent** replays the seed phase itself (positions ``0..S-1``) —
  it is cheap, and the pattern engine needs the observed seed return
  types before any generated statement can exist.
* The generated stream is sharded **round-robin by pattern index**:
  worker ``w`` of ``N`` executes generated case ``i`` iff
  ``i % N == w``.  Every worker re-derives the full deterministic stream
  (seed collection is pure, generation is seeded) and skips foreign
  cases — skipping is an allocation, not work, because
  :class:`~repro.core.patterns.GeneratedCase` renders SQL lazily.
* Statement behaviour is **history-independent** by construction
  (per-statement engine RNG reseed, position-keyed fault streams), so a
  worker executing the sub-stream ``w, w+N, w+2N, …`` observes exactly
  the outcomes the serial run observes at those positions.
* Each worker runs its own full :class:`~repro.core.oracles.OraclePipeline`
  over its slice and ships the pipeline's exported state in its plain-dict
  **shard report** (alongside outcome counts, triggered functions,
  coverage sets, cache and fault counters).  The parent folds the shard
  states into its own pipeline via ``Oracle.merge``, which re-sorts every
  oracle's kept records by global stream position and re-deduplicates —
  the same first-occurrence order as the serial loop, so the merged
  findings match a serial run record for record.
* **Bulky payloads never ride the pickle channel.**  The parent exports
  its seed-phase statement cache as a template-factored warm corpus that
  every worker imports before touching its stream, and each worker
  returns its shard report as a packed value tree on disk — the
  multiprocessing channel carries scalar arguments and fixed-size path
  envelopes only (:mod:`repro.perf.transport`).

Checkpoint/resume: each worker writes its own sidecar checkpoint
(``<path>.shard<w>``) carrying its pipeline state.  On resume the parent
re-runs its cheap seed phase from scratch (sound: statements are
history-independent and fault draws are position-keyed) and each worker
skips the prefix of its shard it already executed.  No RNG state needs to
be carried at all.

Known semantic divergence: a server quarantine aborts only the shard that
hit it, so a quarantined parallel run may have executed statements a
serial run would not have reached (and vice versa).  Quarantine requires
``CircuitBreaker.failure_threshold`` *consecutive* restart failures drawn
from a single position's fault stream — at realistic fault rates the
probability is negligible, and the merged report still flags
``quarantined=True``.
"""

from __future__ import annotations

import concurrent.futures
import json
import multiprocessing
import os
import random
import tempfile
import time
from typing import Any, Dict, List, Optional, Union

from ..core.campaign import CampaignResult
from ..core.config import _UNSET, CampaignConfig, fault_spec, resolve_config
from ..core.collect import SeedCollector
from ..core.oracles import CaseInfo, OraclePipeline, OracleStateError, build_pipeline
from ..core.oracles.base import OracleSpec
from ..core.patterns import PatternEngine
from ..core.runner import Outcome, Runner
from ..core.tables import TABLE_SETUP
from ..dialects import dialect_by_name
from ..dialects.base import Dialect
from ..robustness.checkpoint import CHECKPOINT_VERSION, CheckpointError
from ..robustness.faults import FaultInjector, make_fault_injector
from ..robustness.policy import ServerQuarantined
from ..robustness.sandbox import ContainmentState, SandboxConfig
from ..robustness.watchdog import SimulatedClock, Watchdog
from .transport import (
    TransportStats,
    pack_statements,
    read_packed,
    transport_stats,
    unpack_statements,
    write_packed,
)


#: sidecar layout version: bumped when the shard report/checkpoint schema
#: changes (v2 replaced the replayed-observation list with per-shard oracle
#: pipeline state); old sidecars are refused with a CheckpointError
SHARD_FORMAT_VERSION = 2


def _shard_checkpoint_path(path: str, worker: int) -> str:
    return f"{path}.shard{worker}"


def _run_shard(
    dialect_name: str,
    worker: int,
    jobs: int,
    seed: int,
    budget: int,
    seed_count: int,
    return_types: Dict[str, str],
    max_partners: int,
    enable_coverage: bool,
    faults_spec: Optional[str],
    fault_seed: int,
    statement_deadline: float,
    statement_cache: bool,
    checkpoint_path: Optional[str],
    checkpoint_every: int,
    resume: bool,
    oracle_names: tuple = ("crash",),
    stop_after: Optional[int] = None,
    budgets_spec: Optional[str] = None,
    sandbox_config: Optional[SandboxConfig] = None,
    containment_seed: Optional[Dict[str, Any]] = None,
    compile_plans: bool = True,
    warm_corpus_path: Optional[str] = None,
    transport_dir: Optional[str] = None,
    statement_family: str = "expression",
) -> Dict[str, Any]:
    """Execute one worker's share of the generated stream.

    Runs in a child process (or inline for ``jobs=1``).  The pickle
    channel carries only this call's scalar arguments and a tiny path
    envelope back: the warm statement corpus arrives template-factored at
    ``warm_corpus_path`` and, when ``transport_dir`` is set, the shard
    report leaves as a packed value tree on disk (see
    :mod:`repro.perf.transport`).  ``stop_after`` caps how many
    statements this shard executes before returning early — a test hook
    that simulates a mid-campaign kill for resume testing.
    """
    dialect = dialect_by_name(dialect_name)
    # pipeline before runner: logic-flaw installation must precede server
    # construction, exactly as in the serial campaign
    pipeline = build_pipeline(dialect, oracle_names)
    clock = SimulatedClock()
    injector = make_fault_injector(faults_spec, seed=fault_seed, clock=clock)
    runner = Runner(
        dialect,
        enable_coverage=enable_coverage,
        faults=injector,
        clock=clock,
        watchdog=Watchdog(clock, deadline_seconds=statement_deadline),
        statement_cache=statement_cache,
        budgets=budgets_spec,
        sandbox=sandbox_config,
        compile_plans=compile_plans,
        bootstrap_sql=TABLE_SETUP if statement_family == "predicate" else (),
    )
    runner.capture_fingerprints = pipeline.needs_fingerprints
    cache = runner.server.stmt_cache
    if warm_corpus_path is not None and cache is not None and runner.sandbox is None:
        # inherit the parent's warmed template cache: every statement the
        # seed phase parsed enters this worker's cache pre-parsed and
        # pre-optimized, so the shard's stream starts on the hit path.
        # Warming is behaviour-neutral — it populates cache tiers the
        # stream would have populated on first miss anyway.
        with open(warm_corpus_path, "rb") as fh:
            warm_sql = unpack_statements(fh.read())
        for sql in warm_sql:
            cache.warm(dialect.name, sql, runner.server.ctx)
    containment: Optional[ContainmentState] = None
    if sandbox_config is not None:
        containment = ContainmentState.from_config(sandbox_config)
        if containment_seed is not None:
            # containment built up during the parent's seed phase carries
            # over: a seed statement that killed a worker stays quarantined
            # in every shard
            containment.restore_state(containment_seed)
            # ...but the parent's skip count is accounted parent-side;
            # this shard reports only its own skips
            containment.skipped = 0
    # the engine rng is seeded but never consumed by generation; passing a
    # fresh Random(seed) in every process keeps the constructor contract
    engine = PatternEngine(
        SeedCollector(dialect).collect(),
        rng=random.Random(seed),
        max_partners=max_partners,
        return_types=dict(return_types),
        statement_family=statement_family,
    )

    skip_in_shard = 0
    shard_executed = 0
    outcome_counts: Dict[str, int] = {}
    if resume and checkpoint_path is not None:
        state = _load_shard_checkpoint(
            _shard_checkpoint_path(checkpoint_path, worker),
            dialect_name, seed, budget, max_partners,
            enable_coverage, jobs, worker, oracle_names,
            budgets_spec, sandbox_config,
            compile_plans=compile_plans,
            statement_family=statement_family,
        )
        if state is not None:
            # processed counts containment skips too; sidecars written
            # before the sandbox existed only have the executed count
            skip_in_shard = state.get("shard_processed", state["shard_executed"])
            shard_executed = state["shard_executed"]
            outcome_counts = dict(state["outcomes"])
            try:
                pipeline.restore_state(state["oracle_state"])
            except OracleStateError as exc:
                raise CheckpointError(str(exc)) from exc
            runner.fault_counters = dict(state["fault_counters"])
            runner.server.ctx.triggered_functions |= set(state["triggered"])
            if runner.coverage is not None:
                runner.coverage.arcs |= {tuple(a) for a in state["coverage_arcs"]}
                runner.coverage.lines |= {tuple(l) for l in state["coverage_lines"]}
            sandbox_state = state.get("sandbox")
            if sandbox_state is not None and containment is not None:
                containment.restore_state(sandbox_state["containment"])
                if runner.sandbox is not None:
                    runner.sandbox.kills = sandbox_state["kills"]
                    runner.sandbox.worker_deaths = sandbox_state["worker_deaths"]
                    runner.sandbox.respawns = sandbox_state["respawns"]

    generated_budget = max(budget - seed_count, 0)
    shard_processed = 0
    executed_this_run = 0
    quarantined = False
    quarantine_reason = ""
    wall_started = time.monotonic()

    def sandbox_report() -> Optional[Dict[str, Any]]:
        if containment is None:
            return None
        return {
            "containment": containment.export_state(),
            "kills": runner.sandbox.kills if runner.sandbox else 0,
            "worker_deaths": runner.sandbox.worker_deaths if runner.sandbox else 0,
            "respawns": runner.sandbox.respawns if runner.sandbox else 0,
        }

    def maybe_checkpoint() -> None:
        if checkpoint_path is None or checkpoint_every <= 0:
            return
        if shard_processed == 0 or shard_processed % checkpoint_every:
            return
        _save_shard_checkpoint(
            _shard_checkpoint_path(checkpoint_path, worker),
            dialect_name, seed, budget, max_partners, enable_coverage,
            jobs, worker, oracle_names, shard_executed, pipeline,
            outcome_counts, runner, shard_processed, sandbox_report(),
            budgets_spec, sandbox_config,
            compile_plans=compile_plans,
            statement_family=statement_family,
        )

    try:
        for index, case in enumerate(engine.generate_all()):
            if index >= generated_budget:
                break
            if index % jobs != worker:
                continue  # lazy case: skipping costs no SQL rendering
            if shard_processed < skip_in_shard:
                shard_processed += 1
                continue
            position = seed_count + index
            info = CaseInfo(case.pattern, case.seed_function, case.seed_family)
            if containment is not None:
                reason = containment.should_skip(case.sql, case.seed_family)
                if reason is not None:
                    containment.note_skip()
                    outcome_counts["skipped"] = outcome_counts.get("skipped", 0) + 1
                    pipeline.observe(
                        Outcome("skipped", case.sql, message=reason),
                        info, position,
                    )
                    shard_processed += 1
                    maybe_checkpoint()
                    continue
            outcome = runner.run(case.sql, position=position)
            if containment is not None:
                containment.observe(
                    outcome.kind, case.sql, case.seed_family, outcome.message
                )
            outcome_counts[outcome.kind] = outcome_counts.get(outcome.kind, 0) + 1
            pipeline.observe(outcome, info, position)
            shard_processed += 1
            shard_executed += 1
            executed_this_run += 1
            maybe_checkpoint()
            if stop_after is not None and executed_this_run >= stop_after:
                break
    except ServerQuarantined as exc:
        shard_processed = max(shard_processed - 1, 0)
        shard_executed = max(shard_executed - 1, 0)
        quarantined = True
        quarantine_reason = str(exc)

    report: Dict[str, Any] = {
        "worker": worker,
        "shard_executed": shard_executed,
        "outcomes": outcome_counts,
        "oracle_state": pipeline.export_state(),
        "fault_counters": dict(runner.fault_counters),
        "injector_counters": dict(injector.counters) if injector is not None else {},
        "triggered": sorted(runner.server.ctx.triggered_functions),
        "coverage_arcs": [list(a) for a in runner.coverage.arcs]
        if runner.coverage is not None
        else [],
        "coverage_lines": [list(l) for l in runner.coverage.lines]
        if runner.coverage is not None
        else [],
        "cache_hits": runner.cache_hits,
        "cache_misses": runner.cache_misses,
        "compiled_executions": runner.compiled_executions,
        "compile_fallbacks": runner.compile_fallbacks,
        "restarts": runner.restarts,
        "timeouts": runner.timeouts,
        "flaky_crashes": runner.flaky_crashes,
        "quarantined": quarantined,
        "quarantine_reason": quarantine_reason,
        "wall_seconds": time.monotonic() - wall_started,
        "shard_processed": shard_processed,
        "sandbox": sandbox_report(),
    }
    if checkpoint_path is not None:
        _save_shard_checkpoint(
            _shard_checkpoint_path(checkpoint_path, worker),
            dialect_name, seed, budget, max_partners, enable_coverage,
            jobs, worker, oracle_names, shard_executed, pipeline,
            outcome_counts, runner, shard_processed, sandbox_report(),
            budgets_spec, sandbox_config,
            compile_plans=compile_plans,
            statement_family=statement_family,
        )
    runner.close()
    if transport_dir is not None:
        # ship the report as a packed value tree; the pickle channel only
        # ever carries this fixed-size envelope
        packed_path = os.path.join(transport_dir, f"shard{worker}.report")
        write_packed(packed_path, report)
        return {"worker": worker, "packed_path": packed_path}
    return report


# ----------------------------------------------------------------------
# per-shard sidecar checkpoints
# ----------------------------------------------------------------------
def _shard_spec(
    dialect: str, seed: int, budget: int, max_partners: int,
    enable_coverage: bool, jobs: int, worker: int,
    oracle_names: tuple,
    budgets_spec: Optional[str] = None,
    sandbox_config: Optional[SandboxConfig] = None,
    compile_plans: bool = True,
    statement_family: str = "expression",
) -> Dict[str, Any]:
    spec = {
        "version": CHECKPOINT_VERSION,
        "shard_format": SHARD_FORMAT_VERSION,
        "dialect": dialect,
        "seed": seed,
        "budget": budget,
        "max_partners": max_partners,
        "enable_coverage": enable_coverage,
        "jobs": jobs,
        "worker": worker,
        "oracles": list(oracle_names),
    }
    # only non-default governance/sandbox settings enter the spec, so
    # sidecars written before this layer existed still match default runs
    if budgets_spec:
        spec["budgets"] = budgets_spec
    if sandbox_config is not None:
        spec["sandbox"] = {
            "wall_deadline_seconds": sandbox_config.wall_deadline_seconds,
            "breaker_threshold": sandbox_config.breaker_threshold,
            "quarantine": list(sandbox_config.quarantine),
            "max_message_bytes": sandbox_config.max_message_bytes,
        }
    if not compile_plans:
        spec["compile"] = False
    if statement_family != "expression":
        spec["statement_family"] = statement_family
    return spec


def _save_shard_checkpoint(
    path: str,
    dialect: str, seed: int, budget: int, max_partners: int,
    enable_coverage: bool, jobs: int, worker: int,
    oracle_names: tuple,
    shard_executed: int,
    pipeline: OraclePipeline,
    outcomes: Dict[str, int],
    runner: Runner,
    shard_processed: Optional[int] = None,
    sandbox_state: Optional[Dict[str, Any]] = None,
    budgets_spec: Optional[str] = None,
    sandbox_config: Optional[SandboxConfig] = None,
    compile_plans: bool = True,
    statement_family: str = "expression",
) -> None:
    payload = {
        "spec": _shard_spec(
            dialect, seed, budget, max_partners, enable_coverage, jobs,
            worker, oracle_names, budgets_spec, sandbox_config,
            compile_plans, statement_family,
        ),
        "shard_executed": shard_executed,
        "shard_processed": (
            shard_processed if shard_processed is not None else shard_executed
        ),
        "sandbox": sandbox_state,
        "oracle_state": pipeline.export_state(),
        "outcomes": outcomes,
        "fault_counters": dict(runner.fault_counters),
        "triggered": sorted(runner.server.ctx.triggered_functions),
        "coverage_arcs": [list(a) for a in runner.coverage.arcs]
        if runner.coverage is not None
        else [],
        "coverage_lines": [list(l) for l in runner.coverage.lines]
        if runner.coverage is not None
        else [],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


def _load_shard_checkpoint(
    path: str,
    dialect: str, seed: int, budget: int, max_partners: int,
    enable_coverage: bool, jobs: int, worker: int,
    oracle_names: tuple,
    budgets_spec: Optional[str] = None,
    sandbox_config: Optional[SandboxConfig] = None,
    compile_plans: bool = True,
    statement_family: str = "expression",
) -> Optional[Dict[str, Any]]:
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    expected = _shard_spec(
        dialect, seed, budget, max_partners, enable_coverage, jobs, worker,
        oracle_names, budgets_spec, sandbox_config, compile_plans,
        statement_family,
    )
    if payload.get("spec") != expected:
        raise CheckpointError(
            f"shard checkpoint {path!r} was written for a different campaign "
            f"configuration ({payload.get('spec')!r} != {expected!r})"
        )
    return payload


# ----------------------------------------------------------------------
# the parallel campaign
# ----------------------------------------------------------------------
class ParallelCampaign:
    """Shards one campaign's generated stream across worker processes.

    Constructor mirrors :class:`~repro.core.campaign.Campaign` where the
    options make sense for a sharded run.  ``faults`` must be ``None`` or a
    CLI spec string (injectors don't cross process boundaries);
    ``stop_when_all_found`` is unsupported (its early exit depends on
    cross-shard execution order).
    """

    def __init__(
        self,
        dialect: Union[Dialect, str, None] = None,
        jobs: Any = _UNSET,
        budget: Any = _UNSET,
        enable_coverage: Any = _UNSET,
        seed: Any = _UNSET,
        max_partners: Any = _UNSET,
        faults: Any = _UNSET,
        fault_seed: Any = _UNSET,
        checkpoint_path: Any = _UNSET,
        checkpoint_every: Any = _UNSET,
        statement_deadline: Any = _UNSET,
        statement_cache: Any = _UNSET,
        oracles: Any = _UNSET,
        budgets: Any = _UNSET,
        sandbox: Any = _UNSET,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        dialect_name = dialect.name if isinstance(dialect, Dialect) else (dialect or "")
        config = resolve_config(
            "ParallelCampaign",
            config,
            {
                "jobs": jobs,
                "budget": budget,
                "enable_coverage": enable_coverage,
                "seed": seed,
                "max_partners": max_partners,
                "faults": faults,
                "fault_seed": fault_seed,
                "checkpoint_path": checkpoint_path,
                "checkpoint_every": checkpoint_every,
                "statement_deadline": statement_deadline,
                "statement_cache": statement_cache,
                "oracles": oracles,
                "budgets": budgets,
                "sandbox": sandbox,
            },
            dialect=dialect_name,
            # the historical ParallelCampaign default was two workers
            defaults={"jobs": 2},
        )
        if isinstance(config.faults, FaultInjector):
            raise TypeError(
                "ParallelCampaign needs a fault *spec* (string/FaultPlan), "
                "not a FaultInjector: each worker builds its own injector"
            )
        self.config = config
        self.sandbox_config = config.sandbox
        self.budgets_spec = (
            config.budgets.to_spec()
            if config.budgets is not None and config.budgets.enabled
            else None
        )
        if isinstance(dialect, Dialect):
            self.dialect = dialect
        else:
            if not config.dialect:
                raise ValueError(
                    "ParallelCampaign needs a dialect (or config.dialect)"
                )
            self.dialect = dialect_by_name(config.dialect)
        self.jobs = config.jobs
        self.budget = config.budget
        self.enable_coverage = config.enable_coverage
        self.seed = config.seed
        self.max_partners = config.max_partners
        self.faults_spec = fault_spec(config.faults)
        self.fault_seed = config.fault_seed
        self.checkpoint_path = config.checkpoint_path
        self.checkpoint_every = config.checkpoint_every
        self.statement_deadline = config.statement_deadline
        self.statement_cache = config.statement_cache
        self.compile_plans = config.compile
        self.oracle_names = config.oracles
        self.statement_family = config.statement_family
        #: statement-transport measurement from the last run's warm-corpus
        #: handoff (None when nothing was shipped)
        self.last_transport: Optional[TransportStats] = None
        #: test hook — see ``_run_shard``'s ``stop_after``
        self._stop_after: Optional[int] = None

    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> CampaignResult:
        wall_started = time.monotonic()
        # ---- parent: seed phase (positions 0..S-1) -------------------
        # pipeline before runner: logic-flaw installation must precede
        # server construction, exactly as in the serial campaign
        pipeline = build_pipeline(self.dialect, self.oracle_names)
        clock = SimulatedClock()
        injector = make_fault_injector(
            self.faults_spec, seed=self.fault_seed, clock=clock
        )
        runner = Runner(
            self.dialect,
            enable_coverage=self.enable_coverage,
            faults=injector,
            clock=clock,
            watchdog=Watchdog(clock, deadline_seconds=self.statement_deadline),
            statement_cache=self.statement_cache,
            budgets=self.budgets_spec,
            sandbox=self.sandbox_config,
            compile_plans=self.compile_plans,
            bootstrap_sql=(
                TABLE_SETUP if self.statement_family == "predicate" else ()
            ),
        )
        runner.capture_fingerprints = pipeline.needs_fingerprints
        containment: Optional[ContainmentState] = (
            ContainmentState.from_config(self.sandbox_config)
            if self.sandbox_config is not None
            else None
        )
        result = CampaignResult(dialect=self.dialect.name)
        seeds = SeedCollector(self.dialect).collect()
        result.seeds_collected = len(seeds)

        return_types: Dict[str, str] = {}
        position = 0
        quarantined = False
        quarantine_reason = ""
        try:
            for seed_obj in seeds:
                if position >= self.budget:
                    break
                sql = f"SELECT {seed_obj.sql};"
                info = CaseInfo("seed", seed_obj.function, seed_obj.family)
                if containment is not None:
                    reason = containment.should_skip(sql, seed_obj.family)
                    if reason is not None:
                        containment.note_skip()
                        result.outcomes["skipped"] = (
                            result.outcomes.get("skipped", 0) + 1
                        )
                        pipeline.observe(
                            Outcome("skipped", sql, message=reason),
                            info, position,
                        )
                        position += 1
                        continue
                outcome = runner.run(sql, position=position)
                if containment is not None:
                    containment.observe(
                        outcome.kind, sql, seed_obj.family, outcome.message
                    )
                result.outcomes[outcome.kind] = (
                    result.outcomes.get(outcome.kind, 0) + 1
                )
                pipeline.observe(outcome, info, position)
                if outcome.result_type and seed_obj.function not in return_types:
                    return_types[seed_obj.function] = outcome.result_type
                position += 1
        except ServerQuarantined as exc:
            runner.executed = max(runner.executed - 1, 0)
            position = runner.executed
            quarantined = True
            quarantine_reason = str(exc)

        seed_count = position

        # ---- fan out the generated stream ----------------------------
        reports: List[Dict[str, Any]] = []
        self.last_transport = None
        if not quarantined and seed_count < self.budget:
            containment_seed = (
                containment.export_state() if containment is not None else None
            )
            # everything bulky crosses the process boundary through the
            # byte-level transport in this directory: the warm corpus in,
            # the packed shard reports out (see repro.perf.transport)
            with tempfile.TemporaryDirectory(prefix="repro-shards-") as tdir:
                warm_corpus_path: Optional[str] = None
                parent_cache = runner.server.stmt_cache
                if runner.sandbox is None and parent_cache is not None:
                    warm_sql = parent_cache.export_warm_sql(self.dialect.name)
                    if warm_sql:
                        warm_corpus_path = os.path.join(tdir, "warm.stmt")
                        with open(warm_corpus_path, "wb") as fh:
                            fh.write(pack_statements(warm_sql))
                        self.last_transport = transport_stats(warm_sql)
                shard_args = [
                    (
                        self.dialect.name, worker, self.jobs, self.seed,
                        self.budget, seed_count, return_types, self.max_partners,
                        self.enable_coverage, self.faults_spec, self.fault_seed,
                        self.statement_deadline, self.statement_cache,
                        self.checkpoint_path, self.checkpoint_every, resume,
                        self.oracle_names, self._stop_after,
                        self.budgets_spec, self.sandbox_config, containment_seed,
                        self.compile_plans, warm_corpus_path, tdir,
                        self.statement_family,
                    )
                    for worker in range(self.jobs)
                ]
                if self.jobs == 1:
                    reports = [_run_shard(*shard_args[0])]
                else:
                    ctx = multiprocessing.get_context(
                        "fork" if "fork" in multiprocessing.get_all_start_methods()
                        else "spawn"
                    )
                    if self.sandbox_config is not None:
                        # Pool workers are daemonic and may not spawn the
                        # sandbox's own subprocess children; ProcessPoolExecutor
                        # workers are not, so sandboxed shards go through it.
                        with concurrent.futures.ProcessPoolExecutor(
                            max_workers=self.jobs, mp_context=ctx
                        ) as executor:
                            futures = [
                                executor.submit(_run_shard, *spec)
                                for spec in shard_args
                            ]
                            reports = [future.result() for future in futures]
                    else:
                        with ctx.Pool(processes=self.jobs) as pool:
                            reports = pool.starmap(_run_shard, shard_args)
                # inflate the path envelopes while the directory still exists
                reports = [
                    read_packed(report["packed_path"])
                    if "packed_path" in report
                    else report
                    for report in reports
                ]

        # ---- merge ----------------------------------------------------
        merged = self._merge(
            result, runner, pipeline, injector, seed_count,
            reports, quarantined, quarantine_reason, wall_started,
            containment,
        )
        runner.close()
        return merged

    # ------------------------------------------------------------------
    def _merge(
        self,
        result: CampaignResult,
        seed_runner: Runner,
        pipeline: OraclePipeline,
        seed_injector: Optional[FaultInjector],
        seed_count: int,
        reports: List[Dict[str, Any]],
        quarantined: bool,
        quarantine_reason: str,
        wall_started: float,
        containment: Optional[ContainmentState] = None,
    ) -> CampaignResult:
        # fold every shard's oracle state into the parent pipeline; each
        # oracle re-sorts its kept records by global stream position and
        # re-deduplicates — the exact first-occurrence order the serial
        # loop would have used, statement for statement
        try:
            pipeline.merge([report["oracle_state"] for report in reports])
        except OracleStateError as exc:
            raise CheckpointError(str(exc)) from exc

        # the seed phase's executed count (containment skips advance the
        # position but never reach the runner)
        executed = seed_runner.executed
        triggered = set(seed_runner.server.ctx.triggered_functions)
        arcs = set(seed_runner.coverage.arcs) if seed_runner.coverage else set()
        lines = set(seed_runner.coverage.lines) if seed_runner.coverage else set()
        fault_counters: Dict[str, int] = dict(seed_runner.fault_counters)
        if seed_injector is not None:
            for kind, count in seed_injector.counters.items():
                fault_counters[kind] = fault_counters.get(kind, 0) + count
        cache_hits = seed_runner.cache_hits
        cache_misses = seed_runner.cache_misses
        compiled_executions = seed_runner.compiled_executions
        compile_fallbacks = seed_runner.compile_fallbacks
        for report in reports:
            executed += report["shard_executed"]
            triggered |= set(report["triggered"])
            arcs |= {tuple(a) for a in report["coverage_arcs"]}
            lines |= {tuple(l) for l in report["coverage_lines"]}
            for kind, count in report["outcomes"].items():
                result.outcomes[kind] = result.outcomes.get(kind, 0) + count
            for kind, count in report["fault_counters"].items():
                fault_counters[kind] = fault_counters.get(kind, 0) + count
            for kind, count in report["injector_counters"].items():
                fault_counters[kind] = fault_counters.get(kind, 0) + count
            cache_hits += report["cache_hits"]
            cache_misses += report["cache_misses"]
            compiled_executions += report.get("compiled_executions", 0)
            compile_fallbacks += report.get("compile_fallbacks", 0)
            if report["quarantined"]:
                quarantined = True
                quarantine_reason = quarantine_reason or report["quarantine_reason"]

        result.queries_executed = executed
        crash = pipeline.get("crash")
        if crash is not None:
            result.bugs = list(crash.bugs)
            result.false_positives = list(crash.false_positives)
            result.flaky_signals = list(crash.flaky_signals)
        result.findings = pipeline.extra_findings()
        result.triggered_functions = triggered
        result.branch_coverage = len(arcs)
        result.fault_counters = fault_counters
        for kind, count in sorted(fault_counters.items()):
            result.outcomes[f"fault.{kind}"] = count
        result.quarantined = quarantined
        result.quarantine_reason = quarantine_reason
        result.cache_hits = cache_hits
        result.cache_misses = cache_misses
        result.compiled_executions = compiled_executions
        result.compile_fallbacks = compile_fallbacks
        if containment is not None:
            # fold the shards' containment outcomes into the parent's
            # seed-phase state for the supervisor summary
            containment.merge(
                [
                    report["sandbox"]["containment"]
                    for report in reports
                    if report.get("sandbox") is not None
                ]
            )
            result.sandbox_active = True
            result.open_breakers = containment.open_breakers
            result.quarantined_statements = len(containment.quarantine)
            result.skipped_statements = containment.skipped
            kills = seed_runner.sandbox.kills if seed_runner.sandbox else 0
            deaths = (
                seed_runner.sandbox.worker_deaths if seed_runner.sandbox else 0
            )
            respawns = seed_runner.sandbox.respawns if seed_runner.sandbox else 0
            for report in reports:
                sandbox_state = report.get("sandbox")
                if sandbox_state is not None:
                    kills += sandbox_state["kills"]
                    deaths += sandbox_state["worker_deaths"]
                    respawns += sandbox_state["respawns"]
            result.sandbox_kills = kills
            result.sandbox_worker_deaths = deaths
            result.sandbox_respawns = respawns
        result.wall_seconds = time.monotonic() - wall_started
        result.elapsed_seconds = result.wall_seconds
        return result


def run_parallel_campaign(
    dialect_name: Optional[str] = None,
    jobs: Any = _UNSET,
    budget: Any = _UNSET,
    enable_coverage: Any = _UNSET,
    seed: Any = _UNSET,
    faults: Any = _UNSET,
    fault_seed: Any = _UNSET,
    checkpoint: Any = _UNSET,
    checkpoint_every: Any = _UNSET,
    resume: bool = False,
    statement_cache: Any = _UNSET,
    oracles: OracleSpec = _UNSET,
    budgets: Any = _UNSET,
    sandbox: Any = _UNSET,
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Convenience wrapper mirroring :func:`repro.core.run_campaign`.

    Like ``run_campaign`` this is the compatibility surface: legacy
    keywords fold into a :class:`CampaignConfig` without a warning.
    """
    config = resolve_config(
        "run_parallel_campaign",
        config,
        {
            "jobs": jobs,
            "budget": budget,
            "enable_coverage": enable_coverage,
            "seed": seed,
            "faults": faults,
            "fault_seed": fault_seed,
            "checkpoint_path": checkpoint,
            "checkpoint_every": checkpoint_every,
            "statement_cache": statement_cache,
            "oracles": oracles,
            "budgets": budgets,
            "sandbox": sandbox,
        },
        dialect=dialect_name or "",
        defaults={"jobs": 2},
        warn=False,
    )
    return ParallelCampaign(config=config).run(resume=resume)
