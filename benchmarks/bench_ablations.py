"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

D1 boundary pool vs uniform random literals
D2 the Finding-3 nesting cap (1 vs 2)
D3 seed sources: documentation-only vs documentation + regression suite
D4 pattern families in isolation (P1 / P2 / P3)
D5 result-type-aware partner ordering vs naive ordering
"""

import itertools
import random

import pytest

from repro.core.collect import SeedCollector
from repro.core.oracles import CrashOracle
from repro.core.patterns import PatternEngine
from repro.core.runner import Runner
from repro.dialects import bugs_for, dialect_by_name
from repro.sqlast import IntegerLit, StringLit

from _shared import SCALE, _cached, emit, shape_line

ABLATION_BUDGET = max(int(25_000 * SCALE), 1_000)
DIALECT = "mariadb"   # the densest bug population among the studied DBMSs


def run_variant(configure=None, patterns=None, seeds_filter=None, budget=None):
    """Run a reduced campaign with a modified generation pipeline and
    return the number of attributed bugs discovered."""
    dialect = dialect_by_name(DIALECT)
    runner = Runner(dialect)
    oracle = CrashOracle(DIALECT)
    seeds = SeedCollector(dialect).collect()
    if seeds_filter is not None:
        seeds = seeds_filter(seeds)
    return_types = {}
    for seed in seeds:
        outcome = runner.run(f"SELECT {seed.sql};")
        if outcome.kind == "crash" and outcome.crash:
            oracle.observe_crash(outcome.crash, outcome.sql, "seed", runner.executed)
        if outcome.result_type and seed.function not in return_types:
            return_types[seed.function] = outcome.result_type
    engine = PatternEngine(seeds, rng=random.Random(0), return_types=return_types)
    if configure is not None:
        configure(engine)

    def stream():
        if patterns is None:
            yield from engine.generate_all()
            return
        per_seed = [
            [getattr(engine, p)(seed) for p in patterns] for seed in engine.seeds
        ]
        iterators = [it for group in per_seed for it in group]
        pending = list(iterators)
        while pending:
            still = []
            for iterator in pending:
                batch = list(itertools.islice(iterator, 2))
                if batch:
                    still.append(iterator)
                    for case in batch:
                        yield case
            pending = still

    limit = budget or ABLATION_BUDGET
    for case in stream():
        if runner.executed >= limit:
            break
        outcome = runner.run(case.sql)
        if outcome.kind == "crash" and outcome.crash:
            oracle.observe_crash(outcome.crash, case.sql, case.pattern, runner.executed)
    return len(oracle.attributed), oracle


def test_ablation_d1_boundary_pool(benchmark):
    """Replacing the boundary pool with small random literals guts the
    P1.x patterns (isolated to the P1 streams so the effect is visible)."""
    p1 = ["p1_2", "p1_3", "p1_4"]

    def run_both():
        full, _ = run_variant(patterns=p1)

        def neuter_pool(engine):
            rng = random.Random(1)
            engine.pool = [
                IntegerLit(str(rng.randint(1, 100))) for _ in range(20)
            ] + [StringLit("abc"), StringLit("xy")]

        gutted, _ = run_variant(configure=neuter_pool, patterns=["p1_2"])
        return full, gutted

    full, gutted = benchmark.pedantic(
        lambda: _cached(f"ablation_d1_{ABLATION_BUDGET}", run_both),
        rounds=1, iterations=1)
    lines = ["Ablation D1 — boundary literal pool vs uniform random literals "
             "(P1 patterns only)",
             shape_line("P1 bugs with boundary pool", "(more)", full, True),
             shape_line("P1 bugs with random literals", "(fewer)", gutted,
                        gutted < full)]
    emit("ablation_d1_literal_pool", "\n".join(lines))
    assert gutted < full


def test_ablation_d2_nesting_cap(benchmark):
    """Dropping the nesting patterns (cap=1) loses the P3-class bugs."""

    def run_both():
        full, _ = run_variant()
        no_nesting, _ = run_variant(
            patterns=["p1_2", "p1_3", "p1_4", "p2_1", "p2_2", "p2_3"]
        )
        return full, no_nesting

    full, no_nesting = benchmark.pedantic(
        lambda: _cached(f"ablation_d2_{ABLATION_BUDGET}", run_both),
        rounds=1, iterations=1)
    p3_bugs = sum(1 for b in bugs_for(DIALECT) if b.pattern.startswith("P3"))
    lines = ["Ablation D2 — nesting patterns disabled (Finding 3 cap = 1)",
             shape_line("bugs with all patterns", "(more)", full, True),
             shape_line("bugs without P3.x", f"(loses up to {p3_bugs})",
                        no_nesting, no_nesting < full)]
    emit("ablation_d2_nesting", "\n".join(lines))
    assert no_nesting < full


def test_ablation_d3_seed_sources(benchmark):
    """Documentation-only seeds (no regression-suite scan) lose the
    format-rich argument corpus that P2.3/P1.3/P1.4 feed on."""

    def synthetic_only(seeds):
        # rebuild the corpus as documentation-derived minimal seeds
        dialect = dialect_by_name(DIALECT)
        collector = SeedCollector(dialect)
        out = []
        for name in dialect.registry.names():
            seed = collector._synthetic_seed(name)
            if seed is not None:
                out.append(seed)
        return out

    def run_both():
        full, full_oracle = run_variant(budget=int(ABLATION_BUDGET * 1.6))
        docs_only, docs_oracle = run_variant(
            seeds_filter=synthetic_only, budget=int(ABLATION_BUDGET * 1.6)
        )
        full_ids = {b.injected.bug_id for b in full_oracle.attributed}
        docs_ids = {b.injected.bug_id for b in docs_oracle.attributed}
        return full, docs_only, full_ids, docs_ids

    full, docs_only, full_ids, docs_ids = benchmark.pedantic(
        lambda: _cached(f"ablation_d3_{ABLATION_BUDGET}", run_both),
        rounds=1, iterations=1,
    )
    # the suite-derived corpus carries format-rich arguments (JSON paths,
    # XPaths, format strings); without it the P2.3 format-transplant bugs
    # are unreachable no matter how deep the enumeration goes
    format_bugs = {b.bug_id for b in bugs_for(DIALECT)
                   if b.pattern == "P2.3"}
    missed_formats = format_bugs - docs_ids
    lines = ["Ablation D3 — seeds from documentation only vs docs + test suite",
             shape_line("bugs with both sources", "(baseline)", full, True),
             shape_line("bugs with docs-only seeds", "(different mix)",
                        docs_only, True),
             shape_line("format-transplant (P2.3) bugs missed docs-only",
                        f">= 1 of {sorted(format_bugs)}",
                        sorted(missed_formats), bool(missed_formats)),
             shape_line("bugs only the suite-derived corpus found",
                        ">= 1", len(full_ids - docs_ids),
                        bool(full_ids - docs_ids))]
    emit("ablation_d3_seed_sources", "\n".join(lines))
    assert missed_formats, "docs-only seeds unexpectedly reached P2.3 format bugs"
    assert full_ids - docs_ids


def test_ablation_d4_pattern_families(benchmark):
    """Each pattern family finds (roughly) its own bug population."""

    def run_families():
        out = {}
        out["P1"], o1 = run_variant(patterns=["p1_2", "p1_3", "p1_4"])
        out["P2"], o2 = run_variant(patterns=["p2_1", "p2_2", "p2_3"])
        out["P3"], o3 = run_variant(patterns=["p3_1", "p3_2", "p3_3"])
        return out

    counts = benchmark.pedantic(
        lambda: _cached(f"ablation_d4_{ABLATION_BUDGET}", run_families),
        rounds=1, iterations=1)
    expected = {
        fam: sum(1 for b in bugs_for(DIALECT) if b.pattern.startswith(fam))
        for fam in ("P1", "P2", "P3")
    }
    lines = [f"Ablation D4 — pattern families in isolation ({DIALECT})"]
    for fam in ("P1", "P2", "P3"):
        lines.append(shape_line(
            f"{fam}.x alone finds", f"<= {expected[fam]} ({fam} population)",
            counts[fam], counts[fam] >= 1,
        ))
    emit("ablation_d4_pattern_families", "\n".join(lines))
    assert all(counts[f] >= 1 for f in counts)
    # no single family finds everything: the mix is what gets to 24
    assert max(counts.values()) < sum(expected.values())


def test_ablation_d5_partner_ordering(benchmark):
    """Type-aware partner ordering discovers the nested-type bugs within a
    small budget; naive ordering needs more queries."""
    small = max(int(8_000 * SCALE), 500)

    def run_both():
        smart, _ = run_variant(budget=small)

        def naive(engine):
            ordered = sorted(
                {p.function: p for p in engine.seeds}.values(),
                key=lambda s: s.function,
            )
            engine._partners = list(ordered)

        dumb, _ = run_variant(configure=naive, budget=small)
        return smart, dumb

    smart, dumb = benchmark.pedantic(
        lambda: _cached(f"ablation_d5_{ABLATION_BUDGET}", run_both),
        rounds=1, iterations=1)
    lines = ["Ablation D5 — result-type-aware partner ordering",
             shape_line("bugs with type-aware ordering", "(more)", smart, True),
             shape_line("bugs with alphabetical ordering", "(fewer or equal)",
                        dumb, dumb <= smart)]
    emit("ablation_d5_partner_order", "\n".join(lines))
    assert dumb <= smart
