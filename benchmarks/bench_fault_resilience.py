"""Fault-resilience benchmark: bug recall and overhead under infrastructure faults.

The paper's campaigns ran for 24 wall-clock hours against Docker-ised DBMSs;
real runs of that length absorb hung statements, dropped connections, and
servers that refuse to restart.  This benchmark runs the BUDGET_24H campaign
fault-free and under the default fault plan and checks the resilience
contract: the faulted campaign recalls the *same deduplicated bug set*
(100% relative recall), promotes zero flaky crash signals to bugs, and pays
only a bounded wasted-query overhead (extra engine executions spent on
retries, reconfirmations, and statement kills).
"""

import pytest

from repro.core.campaign import run_campaign

from _shared import BUDGET_24H, _cached, emit, shape_line

DIALECTS = ("duckdb", "mariadb", "monetdb")
FAULTS = "hang=0.01,slow=0.02,drop=0.01,flaky=0.01,restart_fail=0.1"
FAULT_SEED = 5
SEED = 0


def _pair(dialect: str):
    base = _cached(
        f"resilience_base_{dialect}_{BUDGET_24H}_{SEED}",
        lambda: run_campaign(dialect, budget=BUDGET_24H, seed=SEED),
    )
    faulted = _cached(
        f"resilience_faulted_{dialect}_{BUDGET_24H}_{SEED}_{FAULT_SEED}",
        lambda: run_campaign(
            dialect, budget=BUDGET_24H, seed=SEED,
            faults=FAULTS, fault_seed=FAULT_SEED,
        ),
    )
    return base, faulted


def test_fault_resilience(benchmark):
    pairs = benchmark.pedantic(
        lambda: {name: _pair(name) for name in DIALECTS},
        rounds=1, iterations=1,
    )

    lines = [
        "Fault resilience — faulted vs fault-free campaigns "
        f"(budget {BUDGET_24H}, faults '{FAULTS}')"
    ]
    for name in DIALECTS:
        base, faulted = pairs[name]
        base_keys, faulted_keys = base.bug_keys(), faulted.bug_keys()
        recall = (
            len(faulted_keys & base_keys) / len(base_keys) if base_keys else 1.0
        )
        lines.append(shape_line(
            f"{name}: relative bug recall under faults",
            "100%", f"{recall:.0%} ({len(faulted_keys)}/{len(base_keys)})",
            faulted_keys == base_keys,
        ))

        flaky = len(faulted.flaky_signals)
        promoted = len({b.sql for b in faulted.bugs} & set(faulted.flaky_signals))
        lines.append(shape_line(
            f"{name}: flaky signals promoted to bugs",
            0, f"{promoted} (of {flaky} triaged)", promoted == 0,
        ))

        # overhead: extra statements the resilience machinery re-executed
        # (quiet retries after hangs/drops, crash reconfirmations, restart
        # retries) relative to the campaign budget
        counters = faulted.fault_counters
        extra = (
            counters.get("statement_kills", 0)
            + counters.get("reconnects", 0)
            + counters.get("reconfirmations", 0)
            + counters.get("restart_retries", 0)
        )
        overhead = extra / faulted.queries_executed
        lines.append(shape_line(
            f"{name}: wasted-query overhead",
            "< 10%", f"{overhead:.1%} ({extra} retries)", overhead < 0.10,
        ))

        assert faulted_keys == base_keys, f"bug-set mismatch on {name}"
        assert promoted == 0, f"flaky signals became bugs on {name}"
        assert not faulted.quarantined

    totals = {}
    for name in DIALECTS:
        for kind, count in pairs[name][1].fault_counters.items():
            totals[kind] = totals.get(kind, 0) + count
    lines.append(shape_line(
        "fault classes exercised (hang/drop/restart)",
        "all > 0",
        f"hang={totals.get('hang', 0)} drop={totals.get('drop', 0)} "
        f"restart_fail={totals.get('restart_fail', 0)}",
        all(totals.get(k, 0) > 0 for k in ("hang", "drop", "restart_fail")),
    ))

    emit("fault_resilience", "\n".join(lines))
