"""Tables 5 and 6 — tool comparison: triggered built-in SQL functions and
covered branches of the DBMSs' SQL-function components, for SQUIRREL /
SQLancer / SQLsmith / SOFT under a shared budget.

Absolute numbers depend on the simulated inventories (hundreds of functions
per dialect, not thousands); the *shape* is what must reproduce: SOFT wins
every column, SQLsmith is strong on PostgreSQL but tiny on MonetDB, and the
Increment row is large and positive against every baseline.
"""

import pytest

from _shared import comparison_table, emit, shape_line

#: paper Table 5 (functions triggered in 24 h)
PAPER_T5 = {
    ("squirrel", "postgresql"): 29, ("sqlancer", "postgresql"): 123,
    ("sqlsmith", "postgresql"): 417, ("soft", "postgresql"): 456,
    ("squirrel", "mysql"): 23, ("sqlancer", "mysql"): 35,
    ("soft", "mysql"): 323,
    ("squirrel", "mariadb"): 22, ("sqlancer", "mariadb"): 20,
    ("soft", "mariadb"): 279,
    ("sqlancer", "clickhouse"): 24, ("soft", "clickhouse"): 711,
    ("sqlsmith", "monetdb"): 29, ("soft", "monetdb"): 171,
}


@pytest.fixture(scope="module")
def table():
    return comparison_table()


def test_table5_triggered_functions(benchmark, table):
    measured = benchmark.pedantic(lambda: table, rounds=1, iterations=1)
    lines = ["Table 5 — built-in SQL functions triggered (shared budget)", ""]
    lines.append(measured.format("triggered_functions",
                                 "functions triggered per tool x DBMS"))
    lines.append("")
    shape_checks = []

    def cellv(tool, dialect):
        cell = measured.cell(tool, dialect)
        return cell.triggered_functions if cell and cell.supported else None

    # per-dialect ordering: SOFT beats every baseline everywhere
    for dialect in ("postgresql", "mysql", "mariadb", "clickhouse", "monetdb"):
        soft = cellv("soft", dialect)
        rivals = [v for t in ("squirrel", "sqlancer", "sqlsmith")
                  if (v := cellv(t, dialect)) is not None]
        ok = all(soft > r for r in rivals)
        shape_checks.append(ok)
        lines.append(shape_line(
            f"SOFT wins on {dialect}",
            f"{PAPER_T5[('soft', dialect)]} vs {[PAPER_T5[(t, dialect)] for t in ('squirrel', 'sqlancer', 'sqlsmith') if (t, dialect) in PAPER_T5]}",
            f"{soft} vs {rivals}", ok,
        ))
    # SQLsmith's asymmetry: huge on PostgreSQL, small on MonetDB
    asym = cellv("sqlsmith", "postgresql") > 4 * cellv("sqlsmith", "monetdb")
    shape_checks.append(asym)
    lines.append(shape_line("SQLsmith PG >> MonetDB", "417 vs 29",
                            f"{cellv('sqlsmith', 'postgresql')} vs "
                            f"{cellv('sqlsmith', 'monetdb')}", asym))
    # ClickHouse is SOFT's biggest column, as in the paper
    ch_max = cellv("soft", "clickhouse") == max(
        cellv("soft", d) for d in ("postgresql", "mysql", "mariadb",
                                   "clickhouse", "monetdb"))
    shape_checks.append(ch_max)
    lines.append(shape_line("ClickHouse is SOFT's largest column",
                            "711", cellv("soft", "clickhouse"), ch_max))
    for baseline, paper_inc in (("squirrel", 984), ("sqlancer", 1567),
                                ("sqlsmith", 181)):
        inc = measured.increment_over(baseline, "triggered_functions")
        ok = inc > 0
        shape_checks.append(ok)
        lines.append(shape_line(f"increment over {baseline} > 0",
                                paper_inc, inc, ok))
    emit("table5_triggered_functions", "\n".join(lines))
    assert all(shape_checks)


def test_table6_branch_coverage(benchmark, table):
    measured = benchmark.pedantic(lambda: table, rounds=1, iterations=1)
    lines = ["Table 6 — covered branches of built-in SQL function components", ""]
    lines.append(measured.format("branch_coverage",
                                 "branches covered per tool x DBMS"))
    lines.append("")
    checks = []

    def cellv(tool, dialect):
        cell = measured.cell(tool, dialect)
        return cell.branch_coverage if cell and cell.supported else None

    for dialect in ("postgresql", "mysql", "mariadb", "clickhouse", "monetdb"):
        soft = cellv("soft", dialect)
        rivals = [v for t in ("squirrel", "sqlancer", "sqlsmith")
                  if (v := cellv(t, dialect)) is not None]
        ok = all(soft > r for r in rivals)
        checks.append(ok)
        lines.append(shape_line(f"SOFT covers most branches on {dialect}",
                                "(paper: SOFT wins)", f"{soft} vs {rivals}", ok))
    for baseline, paper_pct in (("squirrel", "433.93%"), ("sqlancer", "98.70%"),
                                ("sqlsmith", "19.86%")):
        common = [d for d in ("postgresql", "mysql", "mariadb", "clickhouse",
                              "monetdb")
                  if (baseline, d) in PAPER_T5 or baseline == "soft"]
        soft_total = sum(
            cellv("soft", d) for d in common if cellv(baseline, d) is not None
        )
        base_total = sum(
            v for d in common if (v := cellv(baseline, d)) is not None
        )
        pct = (soft_total - base_total) / base_total if base_total else 0
        ok = pct > 0
        checks.append(ok)
        lines.append(shape_line(
            f"branch-coverage gain over {baseline} > 0",
            paper_pct, f"{pct:.2%}", ok,
        ))
    emit("table6_branch_coverage", "\n".join(lines))
    assert all(checks)
