"""Table 4 — the headline result: SOFT's discovery campaign over all seven
DBMSs, with per-DBMS bug counts, crash classes, pattern attribution, and
the §7.3 aggregate splits (56/28/48 by pattern family; crash-class totals;
confirmed/fixed statuses; the 7-false-positive note).
"""

import pytest

from repro.core.report import format_table4, table4_rows
from repro.dialects import bugs_for, dialect_names, table4_totals

from _shared import all_two_week_campaigns, emit, shape_line

#: Table 4 per-DBMS bug counts
PAPER_COUNTS = {
    "postgresql": 1, "mysql": 16, "mariadb": 24, "clickhouse": 6,
    "monetdb": 19, "duckdb": 21, "virtuoso": 45,
}
#: §7.3 crash-class totals (Table 4 row sums; see EXPERIMENTS.md on the
#: paper's 12-vs-13 HBOF / 7-vs-6 SO prose discrepancy)
PAPER_CRASHES = {"NPD": 61, "SEGV": 29, "HBOF": 13, "GBOF": 4, "UAF": 3,
                 "SO": 6, "AF": 14, "DBZ": 2}
PAPER_PATTERN_FAMILIES = {"P1": 56, "P2": 28, "P3": 48}


@pytest.fixture(scope="module")
def campaigns():
    return all_two_week_campaigns()


def test_table4_discovered_bugs(benchmark, campaigns):
    results = benchmark.pedantic(lambda: campaigns, rounds=1, iterations=1)
    lines = ["Table 4 — previously unknown bugs discovered by SOFT",
             "(budget models the paper's two-week window; campaigns stop at "
             "full recall)", ""]

    measured_counts = {}
    measured_crashes = {}
    measured_patterns = {"P1": 0, "P2": 0, "P3": 0}
    fixed = 0
    for name, result in results.items():
        attributed = [b for b in result.bugs if b.injected is not None]
        measured_counts[name] = len(attributed)
        for bug in attributed:
            measured_crashes[bug.crash_code] = measured_crashes.get(bug.crash_code, 0) + 1
            measured_patterns[bug.injected.pattern_family] += 1
            if bug.injected.fixed:
                fixed += 1

    for name in dialect_names():
        lines.append(shape_line(
            f"{name} bugs", PAPER_COUNTS[name], measured_counts[name],
            measured_counts[name] == PAPER_COUNTS[name],
        ))
    total = sum(measured_counts.values())
    lines.append(shape_line("total bugs", 132, total, total == 132))
    lines.append(shape_line("fixed", 97, fixed, fixed == 97))
    lines.append("")
    for code, paper in PAPER_CRASHES.items():
        lines.append(shape_line(
            f"crash class {code}", paper, measured_crashes.get(code, 0),
            measured_crashes.get(code, 0) == paper,
        ))
    lines.append("")
    for family, paper in PAPER_PATTERN_FAMILIES.items():
        lines.append(shape_line(
            f"pattern family {family}.x", paper, measured_patterns[family],
            measured_patterns[family] == paper,
        ))
    fps = sum(len(r.false_positives) for r in results.values())
    lines.append("")
    lines.append(shape_line("false positives (resource kills)", 7, fps,
                            abs(fps - 7) <= 30))
    queries = sum(r.queries_executed for r in results.values())
    lines.append(f"  total statements executed: {queries}")
    lines.append("")
    lines.append(format_table4(table4_rows(list(results.values()))))
    emit("table4_discovered_bugs", "\n".join(lines))

    assert total == 132, f"expected full recall of 132 bugs, found {total}"
    assert measured_counts == PAPER_COUNTS
    assert fixed == 97


def test_table4_pattern_attribution_consistency(benchmark, campaigns):
    """The pattern that *discovered* each bug lies in the same pattern
    family the registry expected for at least 80% of the bugs (exact-pattern
    agreement is not guaranteed: several triggers are reachable by more
    than one pattern, as in the real tool)."""

    def measure():
        agree = family_agree = total = 0
        for result in campaigns.values():
            for bug in result.bugs:
                if bug.injected is None or bug.pattern == "seed":
                    continue
                total += 1
                if bug.pattern == bug.injected.pattern:
                    agree += 1
                if bug.pattern.split(".")[0] == bug.injected.pattern_family:
                    family_agree += 1
        return agree, family_agree, total

    agree, family_agree, total = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Table 4 — discovery-pattern attribution",
             shape_line("bugs discovered by pattern generation", 132, total,
                        total >= 120),
             shape_line("exact pattern agreement", "(not claimed)",
                        f"{agree}/{total}", True),
             shape_line("pattern-family agreement >= 80%", ">=80%",
                        f"{family_agree / max(total, 1):.1%}",
                        family_agree / max(total, 1) >= 0.8)]
    emit("table4_pattern_attribution", "\n".join(lines))
    assert family_agree / max(total, 1) >= 0.8
