"""Shared machinery for the reproduction benchmarks.

Budgets model the paper's wall-clock windows (see DESIGN.md).  Expensive
campaigns are cached at module level so the per-table benchmarks can share
one run; every benchmark writes its paper-vs-measured table to
``benchmarks/results/`` (and stdout) so the numbers survive pytest's
output capture.
"""

from __future__ import annotations

import functools
import os
import pathlib
import pickle
from typing import Dict, List

from repro.analysis import ComparisonTable, run_comparison
from repro.core.campaign import Campaign, CampaignResult
from repro.core.config import CampaignConfig
from repro.dialects import dialect_by_name, dialect_names

#: scale factor for every budget: REPRO_BENCH_SCALE=0.2 runs a fast smoke
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: "24 hours" of testing per §7.5, as a query budget
BUDGET_24H = max(int(20_000 * SCALE), 500)
#: "two weeks" of testing per §7.3 (campaigns stop early at full recall)
BUDGET_2W = max(int(150_000 * SCALE), 2_000)
#: comparison budget for Tables 5/6 (coverage-instrumented, so smaller)
BUDGET_COMPARE = max(int(6_000 * SCALE), 300)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
#: cross-process result cache for the heavyweight campaigns.  Keyed by
#: (kind, budget, seed); delete the directory (or set REPRO_CACHE=0) to
#: force fresh runs.  The cached artifacts *are* real runs — caching only
#: lets the per-table benchmarks share them across pytest invocations.
CACHE_DIR = RESULTS_DIR / ".cache"
USE_CACHE = os.environ.get("REPRO_CACHE", "1") == "1"


def _cached(key: str, compute):
    if not USE_CACHE:
        return compute()
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    path = CACHE_DIR / f"{key}.pkl"
    if path.exists():
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            path.unlink(missing_ok=True)
    value = compute()
    with path.open("wb") as handle:
        pickle.dump(value, handle)
    return value


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def shape_line(label: str, paper, measured, ok: bool) -> str:
    mark = "ok " if ok else "DIFF"
    return f"  [{mark}] {label:<42} paper={paper!s:<18} measured={measured!s}"


# ---------------------------------------------------------------------------
# cached heavyweight runs
# ---------------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def two_week_campaign(dialect_name: str) -> CampaignResult:
    """The §7.3 discovery campaign for one dialect (stops at full recall)."""

    def compute() -> CampaignResult:
        dialect = dialect_by_name(dialect_name)
        return Campaign(dialect, config=CampaignConfig(
            dialect=dialect_name,
            budget=BUDGET_2W,
            stop_when_all_found=True,
            seed=0,
        )).run()

    return _cached(f"campaign2w_{dialect_name}_{BUDGET_2W}_0", compute)


@functools.lru_cache(maxsize=None)
def all_two_week_campaigns() -> Dict[str, CampaignResult]:
    return {name: two_week_campaign(name) for name in dialect_names()}


@functools.lru_cache(maxsize=None)
def day_campaign(dialect_name: str) -> CampaignResult:
    """A 24-hour-budget SOFT campaign (for §7.5's bug comparison)."""

    def compute() -> CampaignResult:
        dialect = dialect_by_name(dialect_name)
        return Campaign(dialect, config=CampaignConfig(
            dialect=dialect_name, budget=BUDGET_24H, seed=0)).run()

    return _cached(f"campaign24h_{dialect_name}_{BUDGET_24H}_0", compute)


@functools.lru_cache(maxsize=None)
def comparison_table() -> ComparisonTable:
    """The shared Tables 5/6 run: 4 tools × 5 DBMSs, coverage on."""
    return _cached(
        f"comparison_{BUDGET_COMPARE}_0",
        lambda: run_comparison(budget=BUDGET_COMPARE, enable_coverage=True, seed=0),
    )
