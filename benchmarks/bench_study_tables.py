"""Benchmarks regenerating the study artifacts: Table 1, Finding 1,
Figure 1, Table 2/Finding 3, Finding 4, and the §5 root-cause split.

Each benchmark recomputes its statistic from the raw 318-record corpus and
prints a paper-vs-measured table.
"""

import pytest

from repro.corpus import (
    DBMS_COUNTS,
    EXPRESSION_COUNT_DISTRIBUTION,
    FUNCTION_TYPE_HISTOGRAM,
    PREREQUISITE_COUNTS,
    ROOT_CAUSE_COUNTS,
    STAGE_COUNTS,
    boundary_share,
    count_by_dbms,
    expression_count_distribution,
    function_type_histogram,
    load_corpus,
    prerequisite_distribution,
    root_cause_distribution,
    stage_distribution,
)

from _shared import emit, shape_line


@pytest.fixture(scope="module")
def corpus():
    return load_corpus()


def test_table1_studied_bugs(benchmark, corpus):
    """Table 1: studied bugs per DBMS (PostgreSQL 39, MySQL 10, MariaDB 269)."""
    measured = benchmark(count_by_dbms, corpus)
    lines = ["Table 1 — studied built-in SQL function bugs per DBMS"]
    for dbms, paper in DBMS_COUNTS.items():
        lines.append(shape_line(dbms, paper, measured.get(dbms, 0),
                                measured.get(dbms) == paper))
    lines.append(shape_line("total", 318, sum(measured.values()),
                            sum(measured.values()) == 318))
    emit("table1_studied_bugs", "\n".join(lines))
    assert measured == DBMS_COUNTS


def test_finding1_occurrence_stages(benchmark, corpus):
    """Finding 1: 70.0% execute / 19.6% optimize / 10.4% parse (of 230)."""
    measured = benchmark(stage_distribution, corpus)
    total = sum(measured.values())
    lines = ["Finding 1 — crash stages classified from backtraces"]
    for stage, paper in STAGE_COUNTS.items():
        lines.append(shape_line(
            f"{stage} ({paper / 230:.1%} in paper)", paper,
            measured.get(stage, 0), measured.get(stage) == paper,
        ))
    lines.append(shape_line("records with backtraces", 230, total, total == 230))
    emit("finding1_stages", "\n".join(lines))
    assert measured == STAGE_COUNTS


def test_figure1_function_type_histogram(benchmark, corpus):
    """Figure 1: occurrences and distinct functions per type (string 117/57,
    aggregate 91, ... — 508 total)."""
    rows = benchmark(function_type_histogram, corpus)
    measured = {r.family: (r.occurrences, r.unique_functions) for r in rows}
    lines = ["Figure 1 — bug-inducing function expressions by type "
             "(occurrences / distinct functions)"]
    for family, paper in FUNCTION_TYPE_HISTOGRAM.items():
        got = measured.get(family, (0, 0))
        lines.append(shape_line(family, f"{paper[0]}/{paper[1]}",
                                f"{got[0]}/{got[1]}", got == paper))
    total = sum(r.occurrences for r in rows)
    lines.append(shape_line("total occurrences", 508, total, total == 508))
    lines.append(shape_line("string+aggregate share > 40%", "40.9%",
                            f"{(measured['string'][0] + measured['aggregate'][0]) / total:.1%}",
                            (measured["string"][0] + measured["aggregate"][0]) / total > 0.40))
    emit("figure1_function_types", "\n".join(lines))
    assert measured == FUNCTION_TYPE_HISTOGRAM


def test_table2_expression_counts(benchmark, corpus):
    """Table 2 / Finding 3: function expressions per bug-inducing statement
    (191/87/23/11/6; 87.5% contain at most two)."""
    measured = benchmark(expression_count_distribution, corpus)
    lines = ["Table 2 — function expressions per bug-inducing statement"]
    for count, paper in EXPRESSION_COUNT_DISTRIBUTION.items():
        label = f"{count} expression(s)" if count < 5 else ">=5 expressions"
        lines.append(shape_line(label, paper, measured.get(count, 0),
                                measured.get(count) == paper))
    share = (measured.get(1, 0) + measured.get(2, 0)) / 318
    lines.append(shape_line("Finding 3: share with <= 2", "87.5%",
                            f"{share:.1%}", abs(share - 0.875) < 0.01))
    emit("table2_expression_counts", "\n".join(lines))
    assert measured == EXPRESSION_COUNT_DISTRIBUTION


def test_finding4_prerequisites(benchmark, corpus):
    """Finding 4: 151 table+data / 132 none / 35 empty table."""
    measured = benchmark(prerequisite_distribution, corpus)
    lines = ["Finding 4 — prerequisite statements of the PoCs"]
    for kind, paper in PREREQUISITE_COUNTS.items():
        lines.append(shape_line(kind, paper, measured.get(kind, 0),
                                measured.get(kind) == paper))
    emit("finding4_prerequisites", "\n".join(lines))
    assert measured == PREREQUISITE_COUNTS


def test_section5_root_causes(benchmark, corpus):
    """§5: 94 literal / 74 casting / 110 nested / 40 other (87.4% boundary)."""
    measured = benchmark(root_cause_distribution, corpus)
    lines = ["Section 5 — root causes of the studied bugs"]
    for cause, paper in ROOT_CAUSE_COUNTS.items():
        lines.append(shape_line(cause, paper, measured.get(cause, 0),
                                measured.get(cause) == paper))
    share = boundary_share(corpus)
    lines.append(shape_line("boundary-value share", "87.4%", f"{share:.1%}",
                            abs(share - 0.874) < 0.002))
    emit("section5_root_causes", "\n".join(lines))
    assert measured == ROOT_CAUSE_COUNTS
