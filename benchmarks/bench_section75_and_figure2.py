"""§7.5's 24-hour bug comparison and Figure 2's developer-feedback roll-up.

The paper: within 24 hours SOFT found 22 unique SQL function bugs (1/5/6/3/7
across PostgreSQL/MySQL/MariaDB/ClickHouse/MonetDB) while SQUIRREL,
SQLancer, and SQLsmith found none.  Figure 2 is a screenshot of vendor
feedback; its underlying numbers are 132 reported = 132 confirmed, 97 fixed.
"""

import pytest

from repro.baselines import SQLancerPQS, SQLsmith, Squirrel, run_tool
from repro.core.report import feedback_summary

from _shared import (
    BUDGET_24H,
    _cached,
    all_two_week_campaigns,
    day_campaign,
    emit,
    shape_line,
)

DIALECTS_24H = ("postgresql", "mysql", "mariadb", "clickhouse", "monetdb")
PAPER_24H = {"postgresql": 1, "mysql": 5, "mariadb": 6, "clickhouse": 3,
             "monetdb": 7}


def test_section75_bugs_in_24_hours(benchmark):
    def run_all():
        soft = {name: day_campaign(name) for name in DIALECTS_24H}
        baselines = {}
        for tool_cls in (Squirrel, SQLancerPQS, SQLsmith):
            tool = tool_cls()
            for name in DIALECTS_24H:
                result = run_tool(tool, name, budget=BUDGET_24H // 4)
                baselines[(tool.name, name)] = sum(
                    1 for b in result.bugs if b.injected is not None
                )
        return soft, baselines

    def run_all_cached():
        soft = {name: day_campaign(name) for name in DIALECTS_24H}
        baselines = _cached(
            f"section75_baselines_{BUDGET_24H}",
            lambda: run_all()[1],
        )
        return soft, baselines

    soft, baselines = benchmark.pedantic(run_all_cached, rounds=1, iterations=1)
    lines = ["Section 7.5 — unique SQL function bugs within the 24-hour budget"]
    total = 0
    for name in DIALECTS_24H:
        found = sum(1 for b in soft[name].bugs if b.injected is not None)
        total += found
        lines.append(shape_line(
            f"SOFT on {name}", PAPER_24H[name], found, found >= 1,
        ))
    lines.append(shape_line("SOFT total in 24h", 22, total, total >= 15))
    baseline_total = sum(baselines.values())
    lines.append(shape_line("baseline tools total", 0, baseline_total,
                            baseline_total == 0))
    emit("section75_bugs_24h", "\n".join(lines))
    assert total >= 15          # a substantial fraction of 22 under budget
    assert baseline_total == 0  # the paper's headline comparison


def test_figure2_developer_feedback(benchmark):
    campaigns = all_two_week_campaigns()
    summary = benchmark.pedantic(
        lambda: feedback_summary(list(campaigns.values())), rounds=1, iterations=1
    )
    lines = ["Figure 2 — developer feedback (reproduced as disclosure numbers)"]
    lines.append(shape_line("bugs reported", 132, summary["reported"],
                            summary["reported"] == 132))
    lines.append(shape_line("bugs confirmed", 132, summary["confirmed"],
                            summary["confirmed"] == 132))
    lines.append(shape_line("bugs fixed", 97, summary["fixed"],
                            summary["fixed"] == 97))
    lines.append("")
    lines.append("  vendor-interaction highlights reproduced from the paper:")
    for highlight in summary["highlights"]:
        lines.append(f"    - {highlight}")
    emit("figure2_feedback", "\n".join(lines))
    assert summary["confirmed"] == 132
    assert summary["fixed"] == 97
    assert any("CTO" in h for h in summary["highlights"])
