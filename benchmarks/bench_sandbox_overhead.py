"""Sandbox overhead benchmark: in-process vs subprocess-isolated execution.

Every sandboxed statement pays one length-prefixed pickle round trip to
the worker process; this benchmark prices that isolation.  It runs the
same campaign four ways — in-process and sandboxed, serially and at
``--jobs 4`` — asserts the sandbox changes *nothing* about the results
(same outcome distribution, same bug set), and persists the wall-clock /
throughput comparison to ``benchmarks/results/BENCH_sandbox.json``.

The acceptance bar is correctness parity, not a speed floor: RPC overhead
varies wildly across machines (loopback socket latency, fork cost), so
the JSON records the measured slowdown factor instead of asserting one.
"""

import json
import os

from repro.core.campaign import run_campaign
from repro.perf import run_parallel_campaign

from _shared import BUDGET_24H, RESULTS_DIR, _cached, emit, shape_line

DIALECT = "duckdb"
SEED = 0
JOBS = 4


def _run(sandbox: bool, jobs: int):
    label = "sandboxed" if sandbox else "inprocess"
    key = f"sandbox_overhead_{label}_jobs{jobs}_{DIALECT}_{BUDGET_24H}_{SEED}"
    if jobs == 1:
        return _cached(key, lambda: run_campaign(
            DIALECT, budget=BUDGET_24H, seed=SEED, sandbox=sandbox
        ))
    return _cached(key, lambda: run_parallel_campaign(
        DIALECT, jobs=jobs, budget=BUDGET_24H, seed=SEED, sandbox=sandbox
    ))


def _stats(result):
    return {
        "wall_seconds": result.wall_seconds,
        "qps": result.statements_per_second,
        "bugs": len(result.bugs),
        "outcomes": dict(result.outcomes),
    }


def test_sandbox_overhead(benchmark):
    def run_all():
        return {
            (False, 1): _run(sandbox=False, jobs=1),
            (True, 1): _run(sandbox=True, jobs=1),
            (False, JOBS): _run(sandbox=False, jobs=JOBS),
            (True, JOBS): _run(sandbox=True, jobs=JOBS),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    cores = os.cpu_count() or 1

    def slowdown(jobs: int) -> float:
        plain, boxed = results[(False, jobs)], results[(True, jobs)]
        return (
            boxed.wall_seconds / plain.wall_seconds
            if plain.wall_seconds else 0.0
        )

    payload = {
        "dialect": DIALECT,
        "budget": BUDGET_24H,
        "seed": SEED,
        "cpu_count": cores,
        "jobs1": {
            "inprocess": _stats(results[(False, 1)]),
            "sandboxed": _stats(results[(True, 1)]),
            "slowdown_factor": slowdown(1),
        },
        f"jobs{JOBS}": {
            "inprocess": _stats(results[(False, JOBS)]),
            "sandboxed": _stats(results[(True, JOBS)]),
            "slowdown_factor": slowdown(JOBS),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sandbox.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"Sandbox overhead — {DIALECT}, budget {BUDGET_24H}, {cores} cores"
    ]
    for jobs in (1, JOBS):
        plain, boxed = results[(False, jobs)], results[(True, jobs)]
        parity = (
            dict(boxed.outcomes) == dict(plain.outcomes)
            and [b.sql for b in boxed.bugs] == [b.sql for b in plain.bugs]
        )
        lines.append(shape_line(
            f"jobs={jobs}: outcome + bug parity under sandbox",
            "identical", str(parity), parity,
        ))
        lines.append(shape_line(
            f"jobs={jobs}: isolation cost",
            "reported",
            f"{slowdown(jobs):.2f}x wall "
            f"({plain.statements_per_second:,.0f} -> "
            f"{boxed.statements_per_second:,.0f} qps)",
            True,
        ))
    emit("sandbox_overhead", "\n".join(lines))

    # hard acceptance: process isolation is semantically invisible
    for jobs in (1, JOBS):
        plain, boxed = results[(False, jobs)], results[(True, jobs)]
        assert dict(boxed.outcomes) == dict(plain.outcomes), f"jobs={jobs}"
        assert [b.sql for b in boxed.bugs] == [b.sql for b in plain.bugs]
        assert boxed.triggered_functions == plain.triggered_functions
        assert boxed.sandbox_active and not plain.sandbox_active
