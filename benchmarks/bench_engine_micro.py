"""Microbenchmarks of the substrate itself: parsing, execution, pattern
generation, and the coverage tracker's overhead.

These are conventional timing benchmarks (pytest-benchmark's bread and
butter); the table/figure benchmarks above use ``pedantic`` single-shot
mode because their payloads are campaigns, not inner loops.
"""

import itertools
import random

import pytest

from repro.core.collect import SeedCollector
from repro.core.patterns import PatternEngine
from repro.dialects import dialect_by_name
from repro.dialects.base import Dialect
from repro.sqlast import parse_statement, to_sql

QUERY = (
    "SELECT a, COUNT(*), CONCAT(UPPER(b), '-', a) FROM t "
    "WHERE a BETWEEN 1 AND 100 AND b LIKE '%x%' "
    "GROUP BY a HAVING COUNT(*) > 0 ORDER BY a DESC LIMIT 10"
)


def test_parse_throughput(benchmark):
    stmt = benchmark(parse_statement, QUERY)
    assert stmt is not None


def test_print_throughput(benchmark):
    stmt = parse_statement(QUERY)
    sql = benchmark(to_sql, stmt)
    assert sql.startswith("SELECT")


@pytest.fixture(scope="module")
def populated_connection():
    conn = Dialect().create_server().connect()
    conn.execute("CREATE TABLE t (a INT, b VARCHAR(16))")
    values = ", ".join(f"({i}, 'r{i}x')" for i in range(200))
    conn.execute(f"INSERT INTO t VALUES {values}")
    return conn


def test_scalar_query_throughput(benchmark, populated_connection):
    result = benchmark(populated_connection.execute, "SELECT LENGTH('abcdef');")
    assert result.rows[0][0].value == 6


@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
def test_warm_scalar_dispatch(benchmark, mode):
    """Warm cache-hit execution of a cheap scalar statement: the closure
    program vs the tree interpreter.  This is the dispatch overhead the
    plan→closure compiler exists to remove — compare the two rows (the
    ≥2x guard on this regime lives in scripts/ci_compile_smoke.py)."""
    server = dialect_by_name("duckdb").create_server()
    if mode == "interpreted":
        server.stmt_cache.compile_enabled = False
    conn = server.connect()
    conn.execute("SELECT ABS(-12345);")  # warm: cache + (maybe) compile
    result = benchmark(conn.execute, "SELECT ABS(-12345);")
    assert result.rows[0][0].value == 12345
    if mode == "compiled":
        assert server.stmt_cache.compiled_executions > 0


def test_table_scan_throughput(benchmark, populated_connection):
    result = benchmark(populated_connection.execute,
                       "SELECT COUNT(*) FROM t WHERE a > 50;")
    assert result.rows[0][0].value == 149


def test_grouped_query_throughput(benchmark, populated_connection):
    result = benchmark(populated_connection.execute, QUERY)
    assert result.rows


def test_json_function_throughput(benchmark, populated_connection):
    result = benchmark(
        populated_connection.execute,
        "SELECT JSON_EXTRACT('{\"a\": [1, 2, {\"b\": 3}]}', '$.a[2].b');",
    )
    assert result.rows[0][0].render() == "3"


def test_coverage_overhead(benchmark):
    """One query with the arc tracker enabled (contrast with the scalar
    benchmark above to see the settrace cost)."""
    from repro.core.runner import Runner

    runner = Runner(dialect_by_name("mariadb"), enable_coverage=True)
    outcome = benchmark(runner.run, "SELECT LENGTH('abcdef');")
    assert outcome.kind == "ok"


@pytest.fixture(scope="module")
def pattern_engine():
    dialect = dialect_by_name("duckdb")
    seeds = SeedCollector(dialect).collect()
    return PatternEngine(seeds, rng=random.Random(0))


def test_pattern_generation_throughput(benchmark, pattern_engine):
    def generate_batch():
        return list(itertools.islice(pattern_engine.generate_all(), 500))

    cases = benchmark(generate_batch)
    assert len(cases) == 500


def test_seed_collection(benchmark):
    dialect = dialect_by_name("monetdb")
    seeds = benchmark(lambda: SeedCollector(dialect).collect())
    assert len(seeds) > 100
