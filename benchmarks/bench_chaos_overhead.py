"""Chaos-seam overhead benchmark: what does the storage boundary cost?

Every byte of service state now crosses :class:`SqliteStorage`, which
threads each write through retry classification, health accounting, and
the (usually absent) chaos injector's fault sites.  This benchmark
prices that seam two ways and persists the numbers to
``benchmarks/results/BENCH_chaos.json``:

* **Service throughput** — the same campaign run directly
  (``run_scheduled``) vs through the full journaled service stack
  (journal + store + worker pool, chaos off).  The acceptance bar from
  the chaos-harness issue: the storage boundary costs **< 3 % of
  service throughput with chaos off**.
* **Journal write microbench** (informational) — per-op cost of the raw
  boundary vs an attached-but-idle injector (all fault rates zero) vs a
  lightly faulting one (``locked=0.05``, absorbed by retry).  This
  isolates what arming chaos adds to each commit.

Wall-clock comparisons use the min over interleaved repeats, which is
robust to one-off scheduler noise.
"""

import json
import os
import tempfile
import time

from repro.core import CampaignConfig
from repro.robustness.chaos import StorageFaultInjector, StorageFaultPlan
from repro.service import BugRepository, JobJournal, JobStore, SchedulerPool
from repro.service.scheduler import run_scheduled
from repro.service.storage import SqliteStorage

from _shared import RESULTS_DIR, SCALE, emit, shape_line

DIALECT = "virtuoso"
BUDGET = max(int(12_000 * SCALE), 1_000)
REPEATS = 3
MICRO_OPS = 1_500
OVERHEAD_BAR = 0.03


# ---------------------------------------------------------------------------
# arm 1: direct library run vs the journaled service stack
# ---------------------------------------------------------------------------
def _direct_run(base: str):
    # same checkpoint cadence as a service-submitted campaign (the store
    # assigns every campaign a durable sidecar), so the delta between
    # the arms isolates the storage boundary + scheduler plumbing rather
    # than checkpoint durability
    config = CampaignConfig(
        dialect=DIALECT,
        budget=BUDGET,
        checkpoint_path=os.path.join(base, "direct.ckpt"),
    )
    result = run_scheduled(config)
    return result.wall_seconds


def _service_run(base: str):
    config = CampaignConfig(dialect=DIALECT, budget=BUDGET)
    journal = JobJournal(os.path.join(base, "jobs.sqlite"))
    store = JobStore(
        journal=journal,
        checkpoint_dir=os.path.join(base, "checkpoints"),
        backoff_base=0.0,
    )
    repo = BugRepository(os.path.join(base, "bugs.sqlite"), minimize=False)
    pool = SchedulerPool(store, repo, workers=1).start()
    try:
        job = store.submit("campaign", config=config)
        # coarse completion poll: waking rarely keeps this supervisor
        # thread from stealing GIL slices off the measured worker
        while job.state not in ("done", "failed", "cancelled"):
            time.sleep(0.05)
        assert job.state == "done", job.error
        # the campaign's own instrumentation, so both arms measure the
        # identical window: first statement to last statement
        return job.summary["wall_seconds"]
    finally:
        pool.stop(drain=False)
        journal.close()


# ---------------------------------------------------------------------------
# arm 2: journal-write microbench across injector configurations
# ---------------------------------------------------------------------------
def _micro(base: str, label: str, chaos):
    storage = SqliteStorage(
        "journal",
        os.path.join(base, f"micro-{label}.sqlite"),
        chaos=chaos,
        locked_backoff=0.0,
    )
    with storage.write("insert") as conn:
        conn.execute(
            "CREATE TABLE IF NOT EXISTS t (k INTEGER PRIMARY KEY, v TEXT)"
        )
    start = time.perf_counter()
    for index in range(MICRO_OPS):
        with storage.write("update") as conn:
            conn.execute(
                "INSERT OR REPLACE INTO t (k, v) VALUES (?, ?)",
                (index % 128, "x" * 64),
            )
    wall = time.perf_counter() - start
    return wall  # per-op connections: nothing to close


def test_chaos_overhead(benchmark):
    def run_all():
        service_walls, direct_walls = [], []
        for _ in range(REPEATS):  # interleave the arms against drift
            with tempfile.TemporaryDirectory() as base:
                service_walls.append(_service_run(base))
            with tempfile.TemporaryDirectory() as base:
                direct_walls.append(_direct_run(base))
        micro = {"off": [], "idle": [], "locked": []}
        with tempfile.TemporaryDirectory() as base:
            for repeat in range(REPEATS):
                micro["off"].append(_micro(base, f"off{repeat}", None))
                micro["idle"].append(_micro(
                    base, f"idle{repeat}",
                    StorageFaultInjector(StorageFaultPlan(), seed=repeat),
                ))
                micro["locked"].append(_micro(
                    base, f"locked{repeat}",
                    StorageFaultInjector(
                        StorageFaultPlan.parse("locked=0.05"), seed=repeat
                    ),
                ))
        return min(direct_walls), min(service_walls), {
            key: min(values) for key, values in micro.items()
        }

    direct_wall, service_wall, micro = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    direct_qps = BUDGET / direct_wall
    service_qps = BUDGET / service_wall
    overhead = (service_wall - direct_wall) / direct_wall
    idle_cost = (micro["idle"] - micro["off"]) / micro["off"]
    locked_cost = (micro["locked"] - micro["off"]) / micro["off"]

    payload = {
        "dialect": DIALECT,
        "budget": BUDGET,
        "repeats": REPEATS,
        "service_stack": {
            "direct_wall_seconds": direct_wall,
            "service_wall_seconds": service_wall,
            "direct_qps": direct_qps,
            "service_qps": service_qps,
            "overhead_fraction": overhead,
            "acceptance_bar": OVERHEAD_BAR,
        },
        "journal_microbench": {
            "ops": MICRO_OPS,
            "chaos_off_wall_seconds": micro["off"],
            "idle_injector_wall_seconds": micro["idle"],
            "locked_5pct_wall_seconds": micro["locked"],
            "idle_injector_overhead_fraction": idle_cost,
            "locked_5pct_overhead_fraction": locked_cost,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_chaos.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [f"Chaos-seam overhead — {DIALECT}, budget {BUDGET}"]
    lines.append(shape_line(
        "service stack vs direct (chaos off)",
        f"< {OVERHEAD_BAR:.0%}",
        f"{overhead:+.2%} wall ({direct_qps:,.0f} -> {service_qps:,.0f} qps)",
        overhead < OVERHEAD_BAR,
    ))
    lines.append(shape_line(
        "journal write: idle injector attached",
        "reported",
        f"{idle_cost:+.2%}/op over {MICRO_OPS} commits",
        True,
    ))
    lines.append(shape_line(
        "journal write: locked=5% absorbed by retry",
        "reported",
        f"{locked_cost:+.2%}/op over {MICRO_OPS} commits",
        True,
    ))
    emit("chaos_overhead", "\n".join(lines))

    # the acceptance bar: the storage boundary is throughput-invisible
    # when nobody armed the chaos harness
    assert overhead < OVERHEAD_BAR, (
        f"journaled service stack costs {overhead:.2%} of direct throughput "
        f"(bar {OVERHEAD_BAR:.0%}): {direct_wall:.3f}s -> {service_wall:.3f}s"
    )
