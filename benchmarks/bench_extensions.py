"""Benchmarks for the post-paper extensions (§8 discussion items):

* PoC minimisation quality across the full injected-bug population;
* the correctness oracles' soundness on all seven engines (and their
  sensitivity to an injected planner defect).
"""

import pytest

from repro.core.logic import LogicOracle
from repro.core.minimize import minimize_poc
from repro.dialects import all_bugs, all_dialect_classes, dialect_by_name
from repro.dialects.base import Dialect

from _shared import _cached, emit, shape_line


def test_minimization_quality(benchmark):
    """Every injected PoC minimises without losing its crash identity, and
    the corpus-wide reduction is substantial."""

    def minimize_all():
        dialects = {cls.name: cls() for cls in all_dialect_classes()}
        total_before = total_after = 0
        worst = ("", 0.0)
        for bug in all_bugs():
            result = minimize_poc(dialects[bug.dbms], bug.poc, max_attempts=250)
            total_before += len(result.original)
            total_after += len(result.minimized)
            if result.reduction < worst[1]:
                worst = (bug.bug_id, result.reduction)
        return total_before, total_after, worst

    before, after, worst = benchmark.pedantic(
        lambda: _cached("extension_minimize_all", minimize_all),
        rounds=1, iterations=1)
    reduction = 1 - after / before
    lines = ["Extension — PoC minimisation over all 132 injected bugs",
             shape_line("total PoC characters before", "-", before, True),
             shape_line("total PoC characters after", "-", after, True),
             shape_line("aggregate reduction", "> 0%", f"{reduction:.1%}",
                        reduction > 0),
             shape_line("no PoC grew", ">= 0", worst, worst[1] >= 0)]
    emit("extension_minimization", "\n".join(lines))
    assert reduction > 0
    assert worst[1] >= 0


def test_logic_oracles_on_all_engines(benchmark):
    """NoREC + TLP are silent on every simulated DBMS and catch the
    injected 'UNKNOWN is TRUE' planner defect immediately."""
    safe_predicates = ["c0 > 0", "c2 < 1", "c1 IS NULL",
                       "c0 BETWEEN -1 AND 2", "c0 IN (1, NULL)"]

    class FaultyDialect(Dialect):
        name = "faulty-demo"

        def make_config(self):
            config = super().make_config()
            config["faulty_where_null_as_true"] = "1"
            return config

    def run_all():
        clean = {}
        for cls in all_dialect_classes():
            result = LogicOracle(cls()).run(predicates=safe_predicates)
            clean[cls.name] = len(result.violations)
        faulty = LogicOracle(FaultyDialect()).run(predicates=safe_predicates)
        return clean, len(faulty.violations)

    clean, faulty_violations = benchmark.pedantic(
        lambda: _cached("extension_logic_all", run_all),
        rounds=1, iterations=1)
    lines = ["Extension — correctness oracles (NoREC + TLP, §8 discussion)"]
    for name, violations in clean.items():
        lines.append(shape_line(f"{name} logic violations", 0, violations,
                                violations == 0))
    lines.append(shape_line("injected planner defect caught", ">= 1",
                            faulty_violations, faulty_violations >= 1))
    emit("extension_logic_oracles", "\n".join(lines))
    assert all(v == 0 for v in clean.values())
    assert faulty_violations >= 1
