"""Parallel-scaling + statement-cache throughput benchmark.

Establishes the repo's first throughput baseline (ROADMAP: "as fast as the
hardware allows").  Measures the BUDGET_24H campaign serial vs sharded
across 2/4/8 workers, cached vs uncached, plus the statement cache's hit
rate over the *entire* pattern-generated stream, and persists everything to
``benchmarks/results/BENCH_throughput.json``.

Two caveats are encoded rather than hidden:

* wall-clock speedup from sharding needs real cores — the ≥2× @ 4 workers
  assertion only fires when ``os.cpu_count() >= 4`` (a 1-CPU container
  *slows down* under multiprocessing, deterministically so);
* campaign-level cache hit rate is depressed by crash→restart
  invalidation (every discovered bug wipes the cache, by design), so the
  >50% hit-rate criterion is measured on the pure parse/optimize replay of
  the pattern stream, where no crashes intervene.
"""

import json
import os
import random
import time

import pytest

from repro.core.campaign import run_campaign
from repro.core.collect import SeedCollector
from repro.core.patterns import PatternEngine
from repro.dialects import dialect_by_name
from repro.engine.connection import Server
from repro.engine.optimizer import optimize_statement
from repro.perf import StatementCache, run_parallel_campaign
from repro.sqlast.parser import Parser

from _shared import BUDGET_24H, RESULTS_DIR, _cached, emit, shape_line

DIALECT = "duckdb"
SEED = 0
JOBS = (2, 4, 8)


def _serial(cached: bool):
    label = "cached" if cached else "uncached"
    return _cached(
        f"scaling_serial_{label}_{DIALECT}_{BUDGET_24H}_{SEED}",
        lambda: run_campaign(
            DIALECT, budget=BUDGET_24H, seed=SEED, statement_cache=cached
        ),
    )


def _parallel(jobs: int):
    return _cached(
        f"scaling_jobs{jobs}_{DIALECT}_{BUDGET_24H}_{SEED}",
        lambda: run_parallel_campaign(
            DIALECT, jobs=jobs, budget=BUDGET_24H, seed=SEED
        ),
    )


def _stream_hit_rate():
    """Parse/optimize cache hit rate over the full pattern stream.

    Replays every generated statement through fetch → parse → optimize →
    insert without executing it: the cache's view of the workload when no
    crash/restart invalidation intervenes.
    """
    dialect = dialect_by_name(DIALECT)
    engine = PatternEngine(SeedCollector(dialect).collect(), rng=random.Random(SEED))
    ctx = Server(dialect).ctx
    cache = StatementCache()
    started = time.perf_counter()
    count = 0
    for case in engine.generate_all():
        sql = case.sql
        count += 1
        if cache.fetch(DIALECT, sql) is not None:
            continue
        try:
            statements = Parser(sql, tokens=cache.probe_tokens(sql)).parse_statements()
        except Exception:
            continue
        if len(statements) != 1:
            continue
        cache.insert(
            DIALECT, sql, statements[0], optimize_statement(ctx, statements[0]), ctx
        )
    elapsed = time.perf_counter() - started
    stats = cache.stats()
    stats["statements"] = count
    stats["wall_seconds"] = elapsed
    return stats


def test_parallel_scaling(benchmark):
    def run_all():
        return (
            _serial(cached=True),
            _serial(cached=False),
            {jobs: _parallel(jobs) for jobs in JOBS},
            _cached(f"scaling_stream_{DIALECT}_{SEED}", _stream_hit_rate),
        )

    serial, uncached, parallel, stream = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    cores = os.cpu_count() or 1

    payload = {
        "dialect": DIALECT,
        "budget": BUDGET_24H,
        "seed": SEED,
        "cpu_count": cores,
        "serial": {
            "wall_seconds": serial.wall_seconds,
            "qps": serial.statements_per_second,
            "cache_hit_rate": serial.cache_hit_rate,
        },
        "serial_uncached": {
            "wall_seconds": uncached.wall_seconds,
            "qps": uncached.statements_per_second,
        },
        "parallel": {
            str(jobs): {
                "wall_seconds": result.wall_seconds,
                "qps": result.statements_per_second,
                "speedup_vs_serial": (
                    serial.wall_seconds / result.wall_seconds
                    if result.wall_seconds else 0.0
                ),
                "signature_matches_serial": result.signature() == serial.signature(),
            }
            for jobs, result in parallel.items()
        },
        "pattern_stream_cache": stream,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"Parallel scaling + statement cache — {DIALECT}, "
        f"budget {BUDGET_24H}, {cores} cores"
    ]
    lines.append(shape_line(
        "serial throughput",
        "baseline", f"{serial.statements_per_second:,.0f} qps", True,
    ))
    for jobs, result in parallel.items():
        speedup = payload["parallel"][str(jobs)]["speedup_vs_serial"]
        lines.append(shape_line(
            f"jobs={jobs}: speedup / signature parity",
            "≥2x @ 4 workers (needs ≥4 cores)",
            f"{speedup:.2f}x, parity={result.signature() == serial.signature()}",
            result.signature() == serial.signature(),
        ))
    lines.append(shape_line(
        "pattern-stream cache hit rate",
        "> 50%", f"{stream['hit_rate']:.1%}", stream["hit_rate"] > 0.5,
    ))
    lines.append(shape_line(
        "campaign cache hit rate (restart-invalidated)",
        "reported", f"{serial.cache_hit_rate:.1%}", True,
    ))
    emit("parallel_scaling", "\n".join(lines))

    # hard acceptance: identical bug sets + signatures at every width
    for jobs, result in parallel.items():
        assert result.signature() == serial.signature(), f"jobs={jobs} diverged"
    # hard acceptance: the cache hits on more than half the pattern stream
    assert stream["hit_rate"] > 0.5
    # speedup needs physical parallelism; a 1-CPU container cannot show it
    if cores >= 4:
        assert payload["parallel"]["4"]["speedup_vs_serial"] >= 2.0
    else:
        print(f"(speedup assertion skipped: only {cores} CPU core(s))")
