"""Parallel-scaling + statement-cache + plan-compilation throughput benchmark.

Establishes the repo's throughput baseline (ROADMAP: "as fast as the
hardware allows").  Measures the BUDGET_24H campaign serial vs sharded
across 2/4/8 workers, cached vs uncached, **compiled vs interpreted**
(the ``--compiled/--interpreted`` A/B axis), the statement cache's hit
rate over the *entire* pattern-generated stream, the warm-stream replay
throughput both ways, the byte cost of the pickle-free shard transport,
and the predicate-family axis (the seeded table workload under the
TLP/NoREC metamorphic oracles: table-workload qps plus the
compiled-vs-fallback execution share) — persisting everything to
``benchmarks/results/BENCH_throughput.json``.

Two caveats are encoded rather than hidden:

* wall-clock speedup from sharding needs real cores — the ≥1.5× @ 4
  workers assertion only fires when ``os.cpu_count() >= 4`` (a 1-CPU
  container *slows down* under multiprocessing, deterministically so).
  On a 1-CPU box the transport guard substitutes: warm bytes/statement
  must be ≥5× below pickling the same stream;
* campaign-level cache hit rate is depressed by crash→restart
  invalidation (every discovered bug wipes the cache, by design), so the
  >50% hit-rate criterion is measured on the pure parse/optimize replay of
  the pattern stream, where no crashes intervene.
"""

import functools
import itertools
import json
import os
import random
import time

import pytest

from repro.core.campaign import run_campaign
from repro.core.collect import SeedCollector
from repro.core.config import CampaignConfig
from repro.core.patterns import PatternEngine
from repro.core.runner import Runner
from repro.dialects import dialect_by_name
from repro.engine.connection import Server
from repro.engine.optimizer import optimize_statement
from repro.perf import StatementCache
from repro.perf.parallel import ParallelCampaign
from repro.sqlast.parser import Parser

from _shared import BUDGET_24H, RESULTS_DIR, _cached, emit, shape_line

DIALECT = "duckdb"
SEED = 0
JOBS = (2, 4, 8)
WARM_STREAM_STATEMENTS = 1_000
WARM_STREAM_PASSES = 3


def _serial(cached: bool = True, compiled: bool = True):
    label = (
        f"{'cached' if cached else 'uncached'}_"
        f"{'compiled' if compiled else 'interpreted'}"
    )
    return _cached(
        f"scaling_serial_{label}_{DIALECT}_{BUDGET_24H}_{SEED}",
        lambda: run_campaign(
            DIALECT,
            config=CampaignConfig(
                dialect=DIALECT,
                budget=BUDGET_24H,
                seed=SEED,
                statement_cache=cached,
                compile=compiled,
            ),
        ),
    )


def _parallel(jobs: int):
    """One sharded run; returns (result, transport stats dict or None)."""

    def compute():
        campaign = ParallelCampaign(
            config=CampaignConfig(
                dialect=DIALECT, jobs=jobs, budget=BUDGET_24H, seed=SEED
            )
        )
        result = campaign.run()
        handoff = campaign.last_transport
        transport = None
        if handoff is not None:
            transport = {
                "statements": handoff.statements,
                "warm_bytes_per_statement": handoff.warm_per_statement,
                "cold_bytes_per_statement": handoff.cold_per_statement,
                "pickle_bytes_per_statement": handoff.pickle_per_statement,
                "warm_reduction_vs_pickle": handoff.warm_reduction,
            }
        return result, transport

    return _cached(
        f"scaling_jobs{jobs}_compiled_{DIALECT}_{BUDGET_24H}_{SEED}", compute
    )


def _predicate_serial():
    """The table-workload axis: predicate family + metamorphic oracles.

    Every statement is a ``SELECT ... FROM fuzz_t WHERE ...`` scan whose
    TLP/NoREC variants re-execute on the oracle-owned arms, so the qps
    here is the metamorphic campaign's real cost, not the bare stream's.
    The compiled-vs-fallback counters are the interesting axis: every
    predicate carries a literal fold site, so the stream is
    interpreter-bound (near-zero closure share); statements that do reach
    the compiler hit FROM/WHERE shapes it declines, counted per execution
    in ``compile_fallbacks``.
    """
    return _cached(
        f"scaling_predicate_{DIALECT}_{BUDGET_24H}_{SEED}",
        lambda: run_campaign(
            DIALECT,
            config=CampaignConfig(
                dialect=DIALECT,
                budget=BUDGET_24H,
                seed=SEED,
                oracles=("crash", "tlp", "norec"),
                statement_family="predicate",
            ),
        ),
    )


def _stream_sample():
    dialect = dialect_by_name(DIALECT)
    engine = PatternEngine(
        SeedCollector(dialect).collect(), rng=random.Random(SEED)
    )
    return [
        case.sql
        for case in itertools.islice(
            engine.generate_all(), WARM_STREAM_STATEMENTS
        )
    ]


@functools.lru_cache(maxsize=None)
def _warm_stream(compiled: bool):
    """Warm-stream replay qps: the ``--compiled/--interpreted`` A/B axis.

    One unmeasured pass fills the statement cache (and, on the compiled
    arm, compiles every reused template); the timed passes then measure
    the warm regime the ``compile=`` flag actually controls.  Crashing
    statements are filtered out first — every crash restarts the server
    and wipes the cache, so a stream containing them is never warm by
    construction.  Returns (qps, outcome keys) so the two arms can be
    parity-checked statement-for-statement.
    """
    runner = Runner(dialect_by_name(DIALECT), compile_plans=compiled)
    statements = [
        sql for sql in _stream_sample() if runner.run(sql).kind != "crash"
    ]
    outcomes = []
    for sql in statements:
        runner.run(sql)
    started = time.perf_counter()
    for _ in range(WARM_STREAM_PASSES):
        for sql in statements:
            outcome = runner.run(sql)
            outcomes.append((outcome.kind, outcome.message))
    elapsed = time.perf_counter() - started
    if compiled:
        assert runner.compiled_executions > 0
    else:
        assert runner.compiled_executions == 0
    qps = (WARM_STREAM_PASSES * len(statements)) / elapsed
    return qps, outcomes, len(statements)


@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
def test_warm_stream_throughput(benchmark, mode):
    """The A/B axis as its own benchmark entry per arm."""
    qps, _, _ = benchmark.pedantic(
        _warm_stream, args=(mode == "compiled",), rounds=1, iterations=1
    )
    assert qps > 0


def _stream_hit_rate():
    """Parse/optimize cache hit rate over the full pattern stream.

    Replays every generated statement through fetch → parse → optimize →
    insert without executing it: the cache's view of the workload when no
    crash/restart invalidation intervenes.
    """
    dialect = dialect_by_name(DIALECT)
    engine = PatternEngine(SeedCollector(dialect).collect(), rng=random.Random(SEED))
    ctx = Server(dialect).ctx
    cache = StatementCache()
    started = time.perf_counter()
    count = 0
    for case in engine.generate_all():
        sql = case.sql
        count += 1
        if cache.fetch(DIALECT, sql) is not None:
            continue
        try:
            statements = Parser(sql, tokens=cache.probe_tokens(sql)).parse_statements()
        except Exception:
            continue
        if len(statements) != 1:
            continue
        cache.insert(
            DIALECT, sql, statements[0], optimize_statement(ctx, statements[0]), ctx
        )
    elapsed = time.perf_counter() - started
    stats = cache.stats()
    stats["statements"] = count
    stats["wall_seconds"] = elapsed
    return stats


def test_parallel_scaling(benchmark):
    def run_all():
        return (
            _serial(cached=True, compiled=True),
            _serial(cached=False, compiled=True),
            _serial(cached=True, compiled=False),
            _predicate_serial(),
            {jobs: _parallel(jobs) for jobs in JOBS},
            _cached(f"scaling_stream_{DIALECT}_{SEED}", _stream_hit_rate),
            _warm_stream(True),
            _warm_stream(False),
        )

    (serial, uncached, interpreted, predicate, parallel, stream,
     warm_compiled, warm_interpreted) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    cores = os.cpu_count() or 1
    warm_compiled_qps, compiled_outcomes, warm_count = warm_compiled
    warm_interpreted_qps, interpreted_outcomes, _ = warm_interpreted

    payload = {
        "dialect": DIALECT,
        "budget": BUDGET_24H,
        "seed": SEED,
        "cpu_count": cores,
        "serial": {
            "wall_seconds": serial.wall_seconds,
            "qps": serial.statements_per_second,
            "cache_hit_rate": serial.cache_hit_rate,
            "compiled_executions": serial.compiled_executions,
            "compile_fallbacks": serial.compile_fallbacks,
        },
        "serial_uncached": {
            "wall_seconds": uncached.wall_seconds,
            "qps": uncached.statements_per_second,
        },
        "serial_interpreted": {
            "wall_seconds": interpreted.wall_seconds,
            "qps": interpreted.statements_per_second,
            "signature_matches_compiled": (
                interpreted.signature() == serial.signature()
            ),
        },
        "warm_stream": {
            "statements": warm_count,
            "passes": WARM_STREAM_PASSES,
            "compiled_qps": warm_compiled_qps,
            "interpreted_qps": warm_interpreted_qps,
            "compiled_vs_interpreted": (
                warm_compiled_qps / warm_interpreted_qps
            ),
            "compiled_vs_serial_campaign": (
                warm_compiled_qps / serial.statements_per_second
            ),
        },
        "predicate_family": {
            "wall_seconds": predicate.wall_seconds,
            "qps": predicate.statements_per_second,
            "findings": len(predicate.findings),
            "compiled_executions": predicate.compiled_executions,
            "compile_fallbacks": predicate.compile_fallbacks,
            # share of all executions that ran through a compiled closure:
            # every predicate statement carries a literal fold site, so the
            # table workload is interpreter-bound by design and the share
            # measures how little of it the closure compiler can carry
            # (counted declines land in compile_fallbacks)
            "compiled_share": (
                predicate.compiled_executions / predicate.queries_executed
                if predicate.queries_executed
                else 0.0
            ),
        },
        "parallel": {
            str(jobs): {
                "wall_seconds": result.wall_seconds,
                "qps": result.statements_per_second,
                "speedup_vs_serial": (
                    serial.wall_seconds / result.wall_seconds
                    if result.wall_seconds else 0.0
                ),
                "signature_matches_serial": result.signature() == serial.signature(),
                "compiled_executions": result.compiled_executions,
                "transport": transport,
            }
            for jobs, (result, transport) in parallel.items()
        },
        "pattern_stream_cache": stream,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    warm_vs_campaign = payload["warm_stream"]["compiled_vs_serial_campaign"]
    lines = [
        f"Parallel scaling + statement cache + compilation — {DIALECT}, "
        f"budget {BUDGET_24H}, {cores} cores"
    ]
    lines.append(shape_line(
        "serial throughput (compiled)",
        "baseline", f"{serial.statements_per_second:,.0f} qps", True,
    ))
    lines.append(shape_line(
        "serial throughput (interpreted)",
        "parity", f"{interpreted.statements_per_second:,.0f} qps, "
        f"parity={interpreted.signature() == serial.signature()}",
        interpreted.signature() == serial.signature(),
    ))
    lines.append(shape_line(
        "warm stream compiled vs serial campaign",
        "≥3x", f"{warm_vs_campaign:.1f}x "
        f"({warm_compiled_qps:,.0f} qps)", warm_vs_campaign >= 3.0,
    ))
    lines.append(shape_line(
        "warm stream compiled vs interpreted",
        "≥1x (impl-bound stream)",
        f"{payload['warm_stream']['compiled_vs_interpreted']:.2f}x",
        warm_compiled_qps >= warm_interpreted_qps,
    ))
    for jobs, (result, transport) in parallel.items():
        speedup = payload["parallel"][str(jobs)]["speedup_vs_serial"]
        lines.append(shape_line(
            f"jobs={jobs}: speedup / signature parity",
            "≥1.5x @ 4 workers (needs ≥4 cores)",
            f"{speedup:.2f}x, parity={result.signature() == serial.signature()}",
            result.signature() == serial.signature(),
        ))
        if transport is not None:
            lines.append(shape_line(
                f"jobs={jobs}: transport bytes/stmt vs pickle",
                "≥5x smaller",
                f"{transport['warm_bytes_per_statement']:.1f} B vs "
                f"{transport['pickle_bytes_per_statement']:.1f} B "
                f"({transport['warm_reduction_vs_pickle']:.1f}x)",
                transport["warm_reduction_vs_pickle"] >= 5.0,
            ))
    pred = payload["predicate_family"]
    lines.append(shape_line(
        "predicate family (table workload + TLP/NoREC)",
        "reported",
        f"{pred['qps']:,.0f} qps, {pred['findings']} findings, "
        f"compiled share {pred['compiled_share']:.1%}",
        pred["findings"] > 0,
    ))
    lines.append(shape_line(
        "pattern-stream cache hit rate",
        "> 50%", f"{stream['hit_rate']:.1%}", stream["hit_rate"] > 0.5,
    ))
    lines.append(shape_line(
        "campaign cache hit rate (restart-invalidated)",
        "reported", f"{serial.cache_hit_rate:.1%}", True,
    ))
    emit("parallel_scaling", "\n".join(lines))

    # hard acceptance: compiled and interpreted runs are indistinguishable
    assert interpreted.signature() == serial.signature(), "compile changed results"
    assert compiled_outcomes == interpreted_outcomes, "warm stream diverged"
    assert serial.compiled_executions > 0
    # hard acceptance: identical bug sets + signatures at every width
    for jobs, (result, _transport) in parallel.items():
        assert result.signature() == serial.signature(), f"jobs={jobs} diverged"
    # hard acceptance: warm-stream compiled replay ≥3× the serial campaign
    assert warm_vs_campaign >= 3.0
    # hard acceptance: the cache hits on more than half the pattern stream
    assert stream["hit_rate"] > 0.5
    # hard acceptance: the table workload actually ran, found the seeded
    # predicate flaws, and is interpreter-bound (fold sites on every
    # statement keep the closure share near zero — see DESIGN.md §5i)
    assert predicate.findings, "predicate campaign found no seeded flaws"
    assert predicate.queries_executed > 0
    assert pred["compiled_share"] < 0.5
    # speedup needs physical parallelism; a 1-CPU container cannot show it —
    # there the transport byte guard substitutes (bytes don't need cores)
    if cores >= 4:
        assert payload["parallel"]["4"]["speedup_vs_serial"] >= 1.5
    else:
        print(f"(speedup assertion skipped: only {cores} CPU core(s))")
        transports = [t for _, t in parallel.values() if t is not None]
        assert transports, "no shard run recorded transport stats"
        for transport in transports:
            assert transport["warm_reduction_vs_pickle"] >= 5.0
