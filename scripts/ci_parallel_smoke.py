#!/usr/bin/env python
"""CI smoke test: sharded campaigns and the statement cache must be
invisible to the fuzzing results, and the cache must actually pay for
itself.

1. a ``--jobs 4`` campaign reports the same deduplicated bug set *and*
   the same ``CampaignResult.signature()`` as the serial run — fault-free
   and under the default fault plan;
2. cached execution produces the same signature as uncached;
3. throughput regression guard: on a warm workload (every statement seen
   before, so the parse/plan cache serves exact hits) cached execution
   must run at >= 1.2x the uncached qps.

Usage: ``PYTHONPATH=src python scripts/ci_parallel_smoke.py``
"""

from __future__ import annotations

import itertools
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.campaign import run_campaign  # noqa: E402
from repro.core.collect import SeedCollector  # noqa: E402
from repro.core.patterns import PatternEngine  # noqa: E402
from repro.core.runner import Runner  # noqa: E402
from repro.dialects import dialect_by_name  # noqa: E402
from repro.perf import run_parallel_campaign  # noqa: E402

DIALECT = "duckdb"
BUDGET = 2_000
SEED = 3
JOBS = 4
FAULTS = "hang=0.01,slow=0.02,drop=0.01,flaky=0.01,restart_fail=0.1"
FAULT_SEED = 5
MICRO_STATEMENTS = 400
MICRO_PASSES = 3
MIN_SPEEDUP = 1.2


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def check_parity(label: str, faults, fault_seed) -> None:
    serial = run_campaign(
        DIALECT, budget=BUDGET, seed=SEED, faults=faults, fault_seed=fault_seed
    )
    parallel = run_parallel_campaign(
        DIALECT, jobs=JOBS, budget=BUDGET, seed=SEED,
        faults=faults, fault_seed=fault_seed,
    )
    if parallel.bug_keys() != serial.bug_keys():
        missing = serial.bug_keys() - parallel.bug_keys()
        extra = parallel.bug_keys() - serial.bug_keys()
        fail(f"{label}: bug-set mismatch missing={missing} extra={extra}")
    if parallel.signature() != serial.signature():
        fail(f"{label}: signature mismatch between --jobs {JOBS} and serial")
    print(f"      {label}: {serial.bug_count} bugs, signatures identical")


def micro_qps(statement_cache: bool, statements) -> float:
    """Steady-state qps: one unmeasured warm-up pass, then timed passes.

    The warm-up pass fills the cache (cached runner) and levels interpreter
    warm-up effects (both runners), so the guard compares the regimes the
    flag actually controls rather than cold-start noise.
    """
    runner = Runner(dialect_by_name(DIALECT), statement_cache=statement_cache)
    for sql in statements:
        runner.run(sql)
    started = time.perf_counter()
    for _ in range(MICRO_PASSES):
        for sql in statements:
            runner.run(sql)
    elapsed = time.perf_counter() - started
    return (MICRO_PASSES * len(statements)) / elapsed


def main() -> None:
    print(f"[1/3] parallel parity: {DIALECT}, budget {BUDGET}, "
          f"seed {SEED}, jobs {JOBS}")
    check_parity("fault-free", None, 0)
    check_parity("faulted", FAULTS, FAULT_SEED)

    print("[2/3] cached vs uncached signature parity")
    cached = run_campaign(DIALECT, budget=BUDGET, seed=SEED)
    uncached = run_campaign(
        DIALECT, budget=BUDGET, seed=SEED, statement_cache=False
    )
    if cached.signature() != uncached.signature():
        fail("statement cache changed campaign results")
    if cached.cache_hits == 0:
        fail("statement cache never hit — guard has no teeth")
    print(f"      identical signatures; campaign hit rate "
          f"{cached.cache_hit_rate:.1%}")

    print(f"[3/3] throughput guard: warm workload, "
          f"{MICRO_STATEMENTS} statements x {MICRO_PASSES} passes")
    dialect = dialect_by_name(DIALECT)
    engine = PatternEngine(
        SeedCollector(dialect).collect(), rng=random.Random(SEED)
    )
    probe = Runner(dialect_by_name(DIALECT), statement_cache=False)
    statements = []
    for case in engine.generate_all():
        # keep the workload crash-free so no restart invalidates the cache
        # mid-measurement (crash handling is measured by the campaigns above)
        if probe.run(case.sql).kind == "ok":
            statements.append(case.sql)
        if len(statements) >= MICRO_STATEMENTS:
            break
    qps_uncached = micro_qps(False, statements)
    qps_cached = micro_qps(True, statements)
    ratio = qps_cached / qps_uncached
    print(f"      uncached {qps_uncached:,.0f} qps, cached {qps_cached:,.0f} "
          f"qps ({ratio:.2f}x)")
    if ratio < MIN_SPEEDUP:
        fail(f"cached qps only {ratio:.2f}x uncached (need >= {MIN_SPEEDUP}x)")

    print(f"OK: parallel + cached campaigns identical to serial uncached; "
          f"warm cache {ratio:.2f}x faster")


if __name__ == "__main__":
    main()
