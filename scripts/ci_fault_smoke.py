#!/usr/bin/env python
"""CI smoke test: a faulted campaign must not corrupt fuzzing results.

Runs a 2k-query campaign twice — fault-free and under the default fault
plan — and fails (non-zero exit) if any resilience invariant breaks:

1. every headline fault class (hang, drop, restart failure) actually fired;
2. the faulted campaign reports the *same deduplicated bug set* as the
   fault-free campaign;
3. zero flaky (injected, non-reproducible) crash signals were promoted to
   ``DiscoveredBug``s;
4. a campaign killed at a checkpoint and resumed produces a result
   identical to the uninterrupted run.

Usage: ``PYTHONPATH=src python scripts/ci_fault_smoke.py``
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.campaign import run_campaign  # noqa: E402

DIALECT = "duckdb"
BUDGET = 2_000
SEED = 3
FAULTS = "hang=0.01,slow=0.02,drop=0.01,flaky=0.01,restart_fail=0.1"
FAULT_SEED = 5


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    print(f"[1/3] fault-free campaign: {DIALECT}, budget {BUDGET}, seed {SEED}")
    base = run_campaign(DIALECT, budget=BUDGET, seed=SEED)
    print(f"      {base.bug_count} bugs, {base.queries_executed} queries")

    print(f"[2/3] faulted campaign: --faults '{FAULTS}' --fault-seed {FAULT_SEED}")
    faulted = run_campaign(
        DIALECT, budget=BUDGET, seed=SEED, faults=FAULTS, fault_seed=FAULT_SEED
    )
    counters = faulted.fault_counters
    print(f"      fault events: {dict(sorted(counters.items()))}")
    print(f"      flaky signals triaged out: {len(faulted.flaky_signals)}")

    for kind in ("hang", "drop", "restart_fail"):
        if counters.get(kind, 0) <= 0:
            fail(f"fault class {kind!r} never fired — smoke has no teeth")

    if faulted.bug_keys() != base.bug_keys():
        missing = base.bug_keys() - faulted.bug_keys()
        extra = faulted.bug_keys() - base.bug_keys()
        fail(f"bug-set mismatch under faults: missing={missing} extra={extra}")

    if not faulted.flaky_signals:
        fail("no flaky crash signals injected — smoke has no teeth")
    flaky_as_bugs = {b.sql for b in faulted.bugs} & set(faulted.flaky_signals)
    if flaky_as_bugs:
        fail(f"flaky signals misreported as bugs: {flaky_as_bugs}")

    print("[3/3] checkpoint/resume identity")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "cp.json")
        full = run_campaign(
            DIALECT, budget=BUDGET, seed=SEED, faults=FAULTS,
            fault_seed=FAULT_SEED, checkpoint=path, checkpoint_every=700,
        )
        resumed = run_campaign(
            DIALECT, budget=BUDGET, seed=SEED, faults=FAULTS,
            fault_seed=FAULT_SEED, resume=path,
        )
    if resumed.signature() != full.signature():
        fail("resumed campaign diverged from uninterrupted run")

    print(f"OK: {faulted.bug_count} bugs under faults == {base.bug_count} "
          f"fault-free; {len(faulted.flaky_signals)} flaky signals, "
          f"0 promoted to bugs; resume identical")


if __name__ == "__main__":
    main()
