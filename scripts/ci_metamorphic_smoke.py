#!/usr/bin/env python
"""CI smoke test: the metamorphic oracles (TLP + NoREC) must find the
seeded predicate-level flaws without inventing any, and the default
expression stream must stay byte-identical.

1. recall: a 10k-statement predicate-family campaign with
   ``--oracles tlp,norec`` discovers both seeded predicate flaws
   (the IS NULL propagation defect and the NULL-comparison fold) on the
   two flaw-seeded dialects, with every finding attributed;
2. false-positive guard: the same 10k-statement campaign on a flaw-free
   dialect reports zero findings, and a hand-driven clean-arm sweep on
   duckdb (bypassing the flaw auto-install) stays quiet too;
3. determinism: the predicate-family campaign reports the same
   ``CampaignResult.signature()`` serially and with ``--jobs 4``;
4. byte-identity: when neither metamorphic oracle nor the predicate
   family is requested, the default stream's signature hash matches the
   pre-metamorphic baseline — serial and ``--jobs 4``, with and without
   fault injection.

Usage: ``PYTHONPATH=src python scripts/ci_metamorphic_smoke.py``
"""

from __future__ import annotations

import hashlib
import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.campaign import Campaign, run_campaign  # noqa: E402
from repro.core.collect import SeedCollector  # noqa: E402
from repro.core.config import CampaignConfig  # noqa: E402
from repro.core.oracles import (  # noqa: E402
    CaseInfo,
    NoRECOracle,
    OraclePipeline,
    TLPOracle,
)
from repro.core.patterns import PatternEngine  # noqa: E402
from repro.core.runner import Runner  # noqa: E402
from repro.core.tables import TABLE_SETUP  # noqa: E402
from repro.dialects import dialect_by_name  # noqa: E402
from repro.dialects.bugs import find_predicate_flaw  # noqa: E402
from repro.perf import run_parallel_campaign  # noqa: E402

BUDGET = 10_000
PARITY_BUDGET = 2_000
CLEAN_ARM_STATEMENTS = 2_000
SEED = 3
JOBS = 4
ORACLES = ("crash", "tlp", "norec")
FLAWED_DIALECTS = ("mysql", "duckdb")
CLEAN_DIALECT = "postgresql"

# the default expression stream, hashed before this oracle layer existed:
# any drift here means the metamorphic machinery leaked into the path it
# must not touch
BASELINE_HASH = "198b38a360cf68c9"
BASELINE_FAULT_HASH = "afd36bd8f278ef1a"
BASELINE_BUDGET = 2_000
FAULT_SPEC = "hang=0.01,slow=0.02,drop=0.01,flaky=0.01,restart_fail=0.1"
FAULT_SEED = 5


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def predicate_config(dialect: str, budget: int, **overrides) -> CampaignConfig:
    return CampaignConfig(
        dialect=dialect, budget=budget, seed=SEED, oracles=ORACLES,
        statement_family="predicate", **overrides,
    )


def signature_hash(result) -> str:
    return hashlib.sha256(repr(result.signature()).encode()).hexdigest()[:16]


def main() -> None:
    print(f"[1/4] predicate-flaw recall: {', '.join(FLAWED_DIALECTS)}, "
          f"budget {BUDGET}, oracles {','.join(ORACLES)}")
    for dbms in FLAWED_DIALECTS:
        expected = {
            find_predicate_flaw(dbms, kind).flaw_id
            for kind in ("tlp", "norec")
        }
        if len(expected) != 2:
            fail(f"{dbms}: expected two seeded predicate flaws")
        result = run_campaign(config=predicate_config(dbms, BUDGET))
        found = {f.attribution.flaw_id for f in result.findings
                 if f.attribution is not None}
        missed = expected - found
        if missed:
            fail(f"{dbms}: seeded predicate flaws not discovered: "
                 f"{sorted(missed)}")
        unattributed = [f for f in result.findings if f.attribution is None]
        if unattributed:
            fail(f"{dbms}: {len(unattributed)} findings match no seeded "
                 f"flaw (first: {unattributed[0].one_liner()})")
        print(f"      {dbms}: 2/2 predicate flaws found "
              f"({len(result.findings)} findings, all attributed)")

    print(f"[2/4] false-positive guard: {CLEAN_DIALECT} campaign "
          f"(budget {BUDGET}) + duckdb clean-arm sweep "
          f"({CLEAN_ARM_STATEMENTS} statements)")
    clean = run_campaign(config=predicate_config(CLEAN_DIALECT, BUDGET))
    if clean.findings:
        fail(f"{CLEAN_DIALECT}: {len(clean.findings)} spurious findings "
             f"(first: {clean.findings[0].one_liner()})")
    # duckdb seeds flaws whenever the metamorphic oracles are requested,
    # so its clean arm must be driven by hand: a flaw-free dialect
    # instance, the same predicate stream, the same oracles
    dialect = dialect_by_name("duckdb")
    pipeline = OraclePipeline([TLPOracle(dialect), NoRECOracle(dialect)])
    engine = PatternEngine(
        SeedCollector(dialect).collect(),
        rng=random.Random(SEED),
        statement_family="predicate",
    )
    runner = Runner(dialect, bootstrap_sql=TABLE_SETUP)
    compared = 0
    for index, case in enumerate(engine.generate_all()):
        if index >= CLEAN_ARM_STATEMENTS:
            break
        outcome = runner.run(case.sql)
        info = CaseInfo(case.pattern, case.seed_function, case.seed_family)
        findings = pipeline.observe(outcome, info, index)
        if findings:
            fail(f"duckdb clean arm: spurious finding "
                 f"{findings[0].one_liner()}")
    for oracle in pipeline.oracles:
        compared += oracle.compared
    if not compared:
        fail("duckdb clean arm: the oracles compared nothing — no teeth")
    print(f"      zero findings ({CLEAN_DIALECT} campaign; duckdb clean arm "
          f"compared {compared} laws)")

    print(f"[3/4] predicate-family parity: duckdb serial vs --jobs {JOBS}, "
          f"budget {PARITY_BUDGET}")
    serial = run_campaign(
        config=predicate_config("duckdb", PARITY_BUDGET)
    )
    sharded = run_parallel_campaign(
        config=predicate_config("duckdb", PARITY_BUDGET, jobs=JOBS)
    )
    if serial.signature() != sharded.signature():
        fail(f"predicate-family signature differs under --jobs {JOBS}")
    if not serial.findings:
        fail("parity campaign found nothing — parity check has no teeth")
    print(f"      signatures identical ({len(serial.findings)} findings)")

    print(f"[4/4] default-stream byte-identity: duckdb budget "
          f"{BASELINE_BUDGET}, serial and --jobs {JOBS}, +/- faults")
    plain = run_campaign("duckdb", budget=BASELINE_BUDGET, seed=SEED)
    plain_jobs = run_parallel_campaign("duckdb", jobs=JOBS,
                                       budget=BASELINE_BUDGET, seed=SEED)
    for label, result in (("serial", plain), (f"--jobs {JOBS}", plain_jobs)):
        got = signature_hash(result)
        if got != BASELINE_HASH:
            fail(f"default stream drifted ({label}): {got} != "
                 f"{BASELINE_HASH}")
    faulty = run_campaign("duckdb", budget=BASELINE_BUDGET, seed=SEED,
                          faults=FAULT_SPEC, fault_seed=FAULT_SEED)
    faulty_jobs = run_parallel_campaign(
        "duckdb", jobs=JOBS, budget=BASELINE_BUDGET, seed=SEED,
        faults=FAULT_SPEC, fault_seed=FAULT_SEED,
    )
    for label, result in (("serial", faulty),
                          (f"--jobs {JOBS}", faulty_jobs)):
        got = signature_hash(result)
        if got != BASELINE_FAULT_HASH:
            fail(f"default stream drifted under faults ({label}): {got} != "
                 f"{BASELINE_FAULT_HASH}")
    print("      all four signature hashes match the pre-metamorphic "
          "baseline")

    print("OK: both predicate flaws recalled on both dialects, zero false "
          "positives, shard parity holds, default stream byte-identical")


if __name__ == "__main__":
    main()
