#!/usr/bin/env python
"""CI smoke test: the storage chaos harness, end to end.

1. **Crash-point sweep.**  For every named storage crash point, a child
   process runs the full service workload (campaign, replay, triage)
   with ``REPRO_CHAOS_CRASH=<point>`` and must die with ``os._exit(137)``
   exactly at that point — a SIGKILL-equivalent mid-write.  A recovery
   child (no chaos variables) then finishes the workload over the same
   data dir.  After every sweep: the :class:`ServiceAuditor` must pass
   and the campaign signature must equal an uninterrupted control.
2. **ENOSPC round trip.**  Arm ENOSPC on the journal under a live
   server: mutations turn 503, reads keep answering, ``/health`` shows
   the degraded subsystem and counts the lost write; disarm, and the
   next mutation re-probes storage and recovers to 200/ok.
3. **Corruption quarantine/rebuild.**  Restart the server on a bug
   repository whose integrity check fails: boot must quarantine the
   file to ``bugs.sqlite.corrupt-1``, rebuild, and salvage every record.
4. **Preemption parity.**  A high-priority job preempts a running
   low-priority campaign; the victim burns no retry, resumes from its
   checkpoint, and both jobs finish with signatures identical to
   uninterrupted controls.
5. **``repro audit`` CLI** exits 0 on the surviving data dir.

Usage: ``PYTHONPATH=src python scripts/ci_chaos_smoke.py``
(``--child DATA_DIR`` is the internal subprocess entry point.)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import CampaignConfig  # noqa: E402
from repro.robustness.chaos import StorageFaultInjector  # noqa: E402
from repro.service import (  # noqa: E402
    BugRepository,
    BugService,
    JobJournal,
    JobStore,
    SchedulerPool,
    ServiceAuditor,
    TERMINAL_STATES,
    crash_points,
    run_scheduled,
    signature_digest,
)

DIALECT = "virtuoso"
#: the smallest workload that exercises every crash point: budget 500
#: finds 3 bugs, so the bugrepo ingest/replay/triage writes all happen
BUDGET = 500
CHILD_TIMEOUT = 240.0
POLL_DEADLINE = 120.0


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


# ---------------------------------------------------------------------------
# the child workload: one service-process incarnation over a data dir
# ---------------------------------------------------------------------------
def _await_terminal(job) -> None:
    end = time.monotonic() + POLL_DEADLINE
    while time.monotonic() < end:
        if job.state in TERMINAL_STATES:
            return
        time.sleep(0.02)
    raise AssertionError(f"job {job.job_id} stuck in {job.state!r}")


def run_child(data_dir: str) -> int:
    """Campaign + replay + triage, idempotently, over *data_dir*.

    Chaos comes from the ``REPRO_CHAOS*`` environment; an armed crash
    point kills this process with ``os._exit(137)`` mid-write, so the
    code below only describes the happy path.
    """
    chaos = StorageFaultInjector.from_env()
    journal = JobJournal(os.path.join(data_dir, "jobs.sqlite"), chaos=chaos)
    store = JobStore(
        journal=journal,
        checkpoint_dir=os.path.join(data_dir, "checkpoints"),
        backoff_base=0.0,
    )
    store.recover()
    repo = BugRepository(
        os.path.join(data_dir, "bugs.sqlite"), minimize=False, chaos=chaos
    )
    pool = SchedulerPool(store, repo, workers=1).start()
    campaign = next((j for j in store.list() if j.kind == "campaign"), None)
    if campaign is None:
        campaign = store.submit(
            "campaign", config=CampaignConfig(dialect=DIALECT, budget=BUDGET)
        )
    _await_terminal(campaign)
    if campaign.state != "done":
        print(f"campaign ended {campaign.state}: {campaign.error}")
        return 2
    replay = next((j for j in store.list() if j.kind == "replay"), None)
    if replay is None:
        replay = store.submit("replay", params={"dialect": DIALECT})
    _await_terminal(replay)
    if replay.state != "done":
        print(f"replay ended {replay.state}: {replay.error}")
        return 2
    records = repo.list()
    if not records:
        print("campaign found no bugs to triage")
        return 2
    if records[0].triage == "new":
        repo.set_triage(records[0].record_id, "confirmed")
    pool.stop(drain=False)
    journal.close()
    print(f"DIGEST {campaign.summary['signature_digest']}")
    return 0


def _spawn_child(data_dir: str, crash_at: str = "") -> "subprocess.CompletedProcess":
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    for var in ("REPRO_CHAOS", "REPRO_CHAOS_CRASH", "REPRO_CHAOS_EXIT"):
        env.pop(var, None)
    if crash_at:
        env["REPRO_CHAOS_CRASH"] = crash_at  # exit-137 mode is the default
    return subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", data_dir],
        env=env,
        capture_output=True,
        text=True,
        timeout=CHILD_TIMEOUT,
    )


# ---------------------------------------------------------------------------
# HTTP plumbing for the in-process server phases
# ---------------------------------------------------------------------------
def request(svc, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        svc.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_http(svc, job_id):
    end = time.monotonic() + POLL_DEADLINE
    while time.monotonic() < end:
        _, job = request(svc, "GET", f"/jobs/{job_id}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.05)
    fail(f"job {job_id} did not finish over HTTP")


# ---------------------------------------------------------------------------
# phases
# ---------------------------------------------------------------------------
def sweep_crash_points(control_digest: str) -> str:
    points = crash_points()
    print(f"[2/6] crash-point sweep: {len(points)} points, kill + recover each")
    last_dir = ""
    for point in points:
        data_dir = tempfile.mkdtemp(prefix=f"repro-chaos-{point.replace('.', '-')}-")
        killed = _spawn_child(data_dir, crash_at=point)
        if killed.returncode != 137:
            fail(f"{point}: armed child exited {killed.returncode}, "
                 f"expected 137\n{killed.stdout}{killed.stderr}")
        recovered = _spawn_child(data_dir)
        if recovered.returncode != 0:
            fail(f"{point}: recovery child exited {recovered.returncode}\n"
                 f"{recovered.stdout}{recovered.stderr}")
        digest = ""
        for line in recovered.stdout.splitlines():
            if line.startswith("DIGEST "):
                digest = line.split(" ", 1)[1].strip()
        if digest != control_digest:
            fail(f"{point}: recovered digest {digest!r} != control "
                 f"{control_digest!r} — the torn write changed the campaign")
        report = ServiceAuditor(data_dir=data_dir).run(repair=True)
        if not report.ok:
            fail(f"{point}: auditor rejects the survivors: {report.to_dict()}")
        print(f"      {point}: killed at 137, recovered, audited, "
              f"digest matches")
        last_dir = data_dir
    return last_dir


def enospc_round_trip(data_dir: str) -> None:
    print("[3/6] ENOSPC: degraded read-only mode, then recovery")
    chaos = StorageFaultInjector()
    svc = BugService(
        data_dir, minimize=False, workers=1, chaos=chaos
    ).start()
    try:
        status, first = request(
            svc, "POST", "/jobs", {"kind": "replay", "dialect": DIALECT}
        )
        if status != 200:
            fail(f"baseline submit rejected: {status} {first}")
        wait_http(svc, first["id"])  # quiesce: no in-flight journal writes
        chaos.arm_enospc("journal")
        # the first mutation passes the gate (health was still ok) and its
        # journal write is swallowed + counted as lost
        status, lost = request(
            svc, "POST", "/jobs", {"kind": "replay", "dialect": DIALECT}
        )
        if status != 200:
            fail(f"first post-fault submit should be admitted: {status}")
        status, refused = request(
            svc, "POST", "/jobs", {"kind": "replay", "dialect": DIALECT}
        )
        if status != 503:
            fail(f"degraded journal must 503 mutations: {status} {refused}")
        status, listing = request(svc, "GET", "/jobs")
        if status != 200:
            fail(f"reads must keep serving while degraded: {status}")
        status, health = request(svc, "GET", "/health")
        journal_health = health["storage"]["journal"]
        if health["status"] != "degraded" or journal_health["lost_writes"] < 1:
            fail(f"health must show the degraded journal: {health}")
        chaos.disarm_enospc()
        status, again = request(
            svc, "POST", "/jobs", {"kind": "replay", "dialect": DIALECT}
        )
        if status != 200:
            fail(f"mutations must recover after the fault clears: {status}")
        wait_http(svc, again["id"])
        status, health = request(svc, "GET", "/health")
        if health["storage"]["journal"]["state"] != "ok":
            fail(f"journal health did not recover: {health}")
        print(f"      503 while degraded, reads served, "
              f"{journal_health['lost_writes']} lost write(s) counted, "
              f"recovered to ok")
    finally:
        svc.stop()


def corruption_rebuild(data_dir: str) -> None:
    print("[4/6] corruption: quarantine + rebuild at boot")
    svc = BugService(data_dir, minimize=False, workers=1).start()
    try:
        config = CampaignConfig(dialect=DIALECT, budget=BUDGET).to_dict()
        status, job = request(
            svc, "POST", "/jobs", {"kind": "campaign", "config": config}
        )
        final = wait_http(svc, job["id"])
        expected = final["summary"]["bug_count"]
        if expected < 1:
            fail("the corruption phase needs at least one stored record")
    finally:
        svc.stop()
    chaos = StorageFaultInjector()
    chaos.arm_corruption("bugrepo")
    svc = BugService(data_dir, minimize=False, workers=1, chaos=chaos).start()
    try:
        status, health = request(svc, "GET", "/health")
        rebuilt = (health.get("rebuilds") or {}).get("bugrepo")
        if not rebuilt or rebuilt["salvaged"] != expected:
            fail(f"boot rebuild salvaged {rebuilt}, expected {expected} records")
        status, listing = request(svc, "GET", "/bugs")
        if status != 200 or len(listing["bugs"]) != expected:
            fail(f"rebuilt repository lost records: {status} {listing}")
        quarantined = os.path.join(data_dir, "bugs.sqlite.corrupt-1")
        if not os.path.exists(quarantined):
            fail(f"no quarantined copy at {quarantined}")
    finally:
        svc.stop()
    report = ServiceAuditor(data_dir=data_dir).run(repair=True)
    if not report.ok:
        fail(f"auditor rejects the rebuilt repository: {report.to_dict()}")
    print(f"      quarantined to bugs.sqlite.corrupt-1, "
          f"salvaged {expected}/{expected} records, audit passed")


def preemption_parity(data_dir: str) -> None:
    print("[5/6] preemption: checkpoint-and-requeue, signature parity")
    low_config = CampaignConfig(
        dialect=DIALECT, budget=4000, checkpoint_every=200
    )
    high_config = CampaignConfig(dialect=DIALECT, budget=BUDGET)
    journal = JobJournal(os.path.join(data_dir, "jobs.sqlite"))
    store = JobStore(
        journal=journal,
        checkpoint_dir=os.path.join(data_dir, "checkpoints"),
        backoff_base=0.0,
    )
    repo = BugRepository(os.path.join(data_dir, "bugs.sqlite"), minimize=False)
    pool = SchedulerPool(store, repo, workers=1).start()
    try:
        low = store.submit("campaign", config=low_config, priority=0)
        end = time.monotonic() + POLL_DEADLINE
        while time.monotonic() < end:
            if low.progress.get("position", 0) >= 400:
                break
            time.sleep(0.01)
        else:
            fail("low-priority campaign never reached position 400")
        high = store.submit("campaign", config=high_config, priority=5)
        _await_terminal(high)
        _await_terminal(low)
        if high.state != "done" or low.state != "done":
            fail(f"states after preemption: high={high.state} low={low.state}")
        if store.preemption_count < 1:
            fail("the high-priority job never preempted the running one")
        if low.retries != 0:
            fail(f"preemption burned {low.retries} retries; it must burn none")
        details = [
            t.get("detail", "") for t in journal.transitions(low.job_id)
        ]
        if not any("preempted by higher-priority job" in d for d in details):
            fail(f"no preemption transition journaled: {details}")
        if low.summary["signature_digest"] != signature_digest(
            run_scheduled(low_config)
        ):
            fail("preempted job's resumed signature differs from control")
        if high.summary["signature_digest"] != signature_digest(
            run_scheduled(high_config)
        ):
            fail("preemptor's signature differs from control")
        print(f"      preempted after >=400 statements, resumed, "
              f"both signatures match controls")
    finally:
        pool.stop(drain=False)
        journal.close()


def main() -> None:
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        sys.exit(run_child(sys.argv[2]))

    print("[1/6] control run: uninterrupted in-process campaign")
    control = run_scheduled(CampaignConfig(dialect=DIALECT, budget=BUDGET))
    control_digest = signature_digest(control)
    print(f"      {len(control.bugs)} bugs, digest {control_digest[:16]}…")

    swept_dir = sweep_crash_points(control_digest)
    enospc_round_trip(tempfile.mkdtemp(prefix="repro-chaos-enospc-"))
    corruption_rebuild(tempfile.mkdtemp(prefix="repro-chaos-corrupt-"))
    preemption_parity(tempfile.mkdtemp(prefix="repro-chaos-preempt-"))

    print("[6/6] `repro audit` CLI on the last swept data dir")
    audit = subprocess.run(
        [sys.executable, "-m", "repro.cli", "audit", "--data-dir", swept_dir],
        env={**os.environ, "PYTHONPATH": os.path.join(
            os.path.dirname(__file__), "..", "src"
        ) + os.pathsep + os.environ.get("PYTHONPATH", "")},
        capture_output=True,
        text=True,
        timeout=60,
    )
    if audit.returncode != 0:
        fail(f"`repro audit` exited {audit.returncode}:\n"
             f"{audit.stdout}{audit.stderr}")
    print(f"      {audit.stdout.strip().splitlines()[-1]}")

    print(f"OK: {len(crash_points())} crash points survived kill+recover, "
          f"ENOSPC degraded/recovered, corruption rebuilt, "
          f"preemption signature-identical")


if __name__ == "__main__":
    main()
