#!/usr/bin/env python
"""CI smoke test: plan->closure compilation and the shard transport must
be invisible to the fuzzing results and actually pay for themselves.

1. compiled-vs-interpreted signature parity: a default (compiled) serial
   campaign, a ``--no-compile`` serial campaign, and a compiled
   ``--jobs 2`` campaign all report the same
   ``CampaignResult.signature()``;
2. the ``--jobs 2`` run round-trips the byte-level shard transport (warm
   corpus in, packed reports out) and merges nonzero compile counters;
3. throughput guard: on a warm dispatch-bound workload (cheap scalar
   functions, every template already cached and compiled) compiled
   execution must run at >= 2x the interpreted qps;
4. transport guard: shipping the generated stream through the stateful
   statement transport must cost >= 5x fewer bytes per statement than
   pickling it once the dictionary is warm.

Usage: ``PYTHONPATH=src python scripts/ci_compile_smoke.py``
"""

from __future__ import annotations

import itertools
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.campaign import run_campaign  # noqa: E402
from repro.core.collect import SeedCollector  # noqa: E402
from repro.core.config import CampaignConfig  # noqa: E402
from repro.core.patterns import PatternEngine  # noqa: E402
from repro.dialects import dialect_by_name  # noqa: E402
from repro.perf.parallel import ParallelCampaign  # noqa: E402
from repro.perf.transport import transport_stats  # noqa: E402

DIALECT = "duckdb"
BUDGET = 2_000
SEED = 3
JOBS = 2
MICRO_STATEMENTS = 400
MICRO_PASSES = 6
MIN_COMPILE_SPEEDUP = 2.0
MIN_TRANSPORT_REDUCTION = 5.0
#: dispatch-bound scalar functions for the throughput probe — cheap
#: bodies, so the measured delta is the dispatch overhead the compiler
#: exists to remove (heavier statements are impl-bound on both paths and
#: are covered by the campaign parity checks instead)
MICRO_FUNCS = ("ABS", "SQRT", "SIN", "COS", "TAN", "SIGN",
               "LOG", "FLOOR", "CEIL", "ROUND")


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def micro_qps(compile_plans: bool, statements) -> float:
    """Steady-state engine-layer qps: one unmeasured warm-up pass, then
    timed passes straight through ``Connection.execute``.

    The warm-up pass fills the statement cache and (for the compiled
    connection) compiles every template, so the guard compares the warm
    regimes the flag actually controls — closure dispatch vs the tree
    interpreter — rather than cold-start noise or campaign-harness
    overhead (which the campaign parity checks above already cover).
    """
    server = dialect_by_name(DIALECT).create_server()
    if not compile_plans:
        server.stmt_cache.compile_enabled = False
    conn = server.connect()
    for sql in statements:
        conn.execute(sql)
    started = time.perf_counter()
    for _ in range(MICRO_PASSES):
        for sql in statements:
            conn.execute(sql)
    elapsed = time.perf_counter() - started
    if compile_plans and server.stmt_cache.compiled_executions == 0:
        fail("compiled throughput probe never executed a compiled plan")
    return (MICRO_PASSES * len(statements)) / elapsed


def main() -> None:
    print(f"[1/3] compiled/interpreted/--jobs {JOBS} signature parity: "
          f"{DIALECT}, budget {BUDGET}, seed {SEED}")
    compiled = run_campaign(DIALECT, budget=BUDGET, seed=SEED)
    interpreted = run_campaign(
        DIALECT, config=CampaignConfig(budget=BUDGET, seed=SEED, compile=False)
    )
    if compiled.signature() != interpreted.signature():
        fail("plan compilation changed campaign results")
    if compiled.compiled_executions == 0:
        fail("compiled campaign never executed a compiled plan")
    if interpreted.compiled_executions != 0:
        fail("--no-compile campaign still executed compiled plans")
    parallel_campaign = ParallelCampaign(
        config=CampaignConfig(dialect=DIALECT, budget=BUDGET, seed=SEED, jobs=JOBS)
    )
    parallel = parallel_campaign.run()
    if parallel.signature() != compiled.signature():
        fail(f"--jobs {JOBS} signature differs from serial")
    print(f"      identical signatures; serial compiled "
          f"{compiled.compiled_executions:,} plans, "
          f"--jobs {JOBS} compiled {parallel.compiled_executions:,}")

    print(f"[2/3] shard transport round trip (--jobs {JOBS})")
    if parallel.compiled_executions == 0:
        fail("parallel run merged zero compiled executions")
    handoff = parallel_campaign.last_transport
    if handoff is None or handoff.statements == 0:
        fail("parallel run shipped no warm corpus through the transport")
    print(f"      warm corpus: {handoff.statements} statements in "
          f"{handoff.cold_bytes:,} packed bytes "
          f"(pickle baseline {handoff.pickle_bytes:,})")

    print(f"[3/3] throughput + transport guards: warm dispatch-bound "
          f"workload, {MICRO_STATEMENTS} statements x {MICRO_PASSES} passes")
    rng = random.Random(SEED)
    statements = [
        f"SELECT {MICRO_FUNCS[i % len(MICRO_FUNCS)]}({rng.randint(0, 10**6)});"
        for i in range(MICRO_STATEMENTS)
    ]
    qps_interpreted = micro_qps(False, statements)
    qps_compiled = micro_qps(True, statements)
    ratio = qps_compiled / qps_interpreted
    print(f"      interpreted {qps_interpreted:,.0f} qps, compiled "
          f"{qps_compiled:,.0f} qps ({ratio:.2f}x)")
    if ratio < MIN_COMPILE_SPEEDUP:
        fail(f"compiled qps only {ratio:.2f}x interpreted "
             f"(need >= {MIN_COMPILE_SPEEDUP}x)")

    dialect = dialect_by_name(DIALECT)
    engine = PatternEngine(
        SeedCollector(dialect).collect(), rng=random.Random(SEED)
    )
    stream = [
        case.sql for case in itertools.islice(engine.generate_all(), 800)
    ]
    stats = transport_stats(stream)
    print(f"      transport: warm {stats.warm_per_statement:.1f} B/stmt vs "
          f"pickle {stats.pickle_per_statement:.1f} B/stmt "
          f"({stats.warm_reduction:.1f}x)")
    if stats.warm_reduction < MIN_TRANSPORT_REDUCTION:
        fail(f"transport only {stats.warm_reduction:.1f}x below pickle "
             f"(need >= {MIN_TRANSPORT_REDUCTION}x)")

    print(f"OK: compiled execution invisible to results; {ratio:.2f}x faster "
          f"warm, transport {stats.warm_reduction:.1f}x smaller than pickle")


if __name__ == "__main__":
    main()
