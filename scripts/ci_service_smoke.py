#!/usr/bin/env python
"""CI smoke test: campaign-as-a-service end to end over real HTTP.

1. boot a :class:`repro.service.BugService` on an ephemeral port and
   verify ``/health`` reports a live scheduler worker;
2. submit a 500-statement campaign job over the JSON API and poll the
   streamed-findings cursor while the campaign runs — every finding must
   arrive through the stream before the job reports done;
3. assert the persistent repository deduplicated the findings (one
   record per minimized statement), and that resubmitting the identical
   campaign creates zero new records;
4. run one replay job: every stored trigger must still fire against the
   seeded ground truth, with zero status flips;
5. exercise triage over HTTP, then shut the service down cleanly (the
   worker thread must exit).

Usage: ``PYTHONPATH=src python scripts/ci_service_smoke.py``
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import CampaignConfig  # noqa: E402
from repro.service import BugService  # noqa: E402

DIALECT = "virtuoso"
BUDGET = 500
POLL_DEADLINE = 180.0


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def request(service, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        service.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_for(service, job_id):
    deadline = time.monotonic() + POLL_DEADLINE
    job = None
    while time.monotonic() < deadline:
        _, job = request(service, "GET", f"/jobs/{job_id}")
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.1)
    fail(f"job {job_id} did not finish in {POLL_DEADLINE}s: {job}")


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-service-smoke-")
    service = BugService(data_dir).start()
    print(f"[1/5] service booted at {service.url}")
    status, health = request(service, "GET", "/health")
    if status != 200 or not health["worker_alive"]:
        fail(f"unhealthy service: {status} {health}")

    print(f"[2/5] submit {BUDGET}-statement {DIALECT} campaign, poll the stream")
    config = CampaignConfig(dialect=DIALECT, budget=BUDGET).to_dict()
    status, job = request(
        service, "POST", "/jobs", {"kind": "campaign", "config": config}
    )
    if status != 200:
        fail(f"submit rejected: {status} {job}")
    job_id = job["id"]
    streamed = []
    cursor = 0
    deadline = time.monotonic() + POLL_DEADLINE
    while time.monotonic() < deadline:
        status, chunk = request(
            service, "GET", f"/jobs/{job_id}/findings?since={cursor}"
        )
        if status != 200:
            fail(f"findings poll failed: {status} {chunk}")
        streamed.extend(chunk["findings"])
        cursor = chunk["next"]
        if chunk["state"] in ("done", "failed"):
            break
        time.sleep(0.1)
    final = wait_for(service, job_id)
    if final["state"] != "done":
        fail(f"campaign job failed: {final.get('error')}")
    bug_count = final["summary"]["bug_count"]
    if bug_count == 0:
        fail(f"{DIALECT} at budget {BUDGET} should find bugs")
    if len(streamed) != bug_count:
        fail(f"stream carried {len(streamed)} findings, result has {bug_count}")
    for finding in streamed:
        print(f"      streamed: [{finding['label']}] {finding['function']}: "
              f"{finding['sql']}")

    print("[3/5] repository dedup: one record per minimized statement")
    if final["ingest"]["new_records"] != bug_count:
        fail(f"expected {bug_count} new records, got {final['ingest']}")
    status, listing = request(service, "GET", "/bugs")
    if len(listing["bugs"]) != bug_count:
        fail(f"repository holds {len(listing['bugs'])} records, "
             f"expected {bug_count}")
    status, rerun = request(
        service, "POST", "/jobs", {"kind": "campaign", "config": config}
    )
    rerun_final = wait_for(service, rerun["id"])
    if rerun_final["ingest"]["new_records"] != 0:
        fail(f"identical campaign must fully dedup: {rerun_final['ingest']}")
    if rerun_final["ingest"]["duplicates"] != bug_count:
        fail(f"expected {bug_count} duplicates: {rerun_final['ingest']}")

    print("[4/5] replay job: every stored trigger still fires")
    status, replay = request(
        service, "POST", "/jobs", {"kind": "replay", "dialect": DIALECT}
    )
    replay_final = wait_for(service, replay["id"])
    if replay_final["state"] != "done":
        fail(f"replay job failed: {replay_final.get('error')}")
    summary = replay_final["summary"]
    if summary["replayed"] != bug_count or summary["still_firing"] != bug_count:
        fail(f"replay mismatch: {summary}")
    if summary["flipped"] != 0:
        fail(f"no record should flip on a fresh repository: {summary}")

    print("[5/5] triage + clean shutdown")
    record_id = listing["bugs"][0]["id"]
    status, updated = request(
        service, "POST", f"/bugs/{record_id}/triage", {"status": "confirmed"}
    )
    if status != 200 or updated["triage"] != "confirmed":
        fail(f"triage failed: {status} {updated}")
    service.stop()
    if service.pool.alive:
        fail("scheduler workers still alive after stop()")

    print(f"OK: streamed {len(streamed)} findings, {bug_count} deduplicated "
          f"records, replay clean, shutdown clean")


if __name__ == "__main__":
    main()
