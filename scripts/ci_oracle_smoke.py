#!/usr/bin/env python
"""CI smoke test: the pluggable oracle pipeline must find the seeded
logic flaws without inventing any.

1. a 2k-statement campaign with all three oracles (crash, differential,
   conformance) discovers *every* seeded ``logic_flaw`` on two flaw-seeded
   dialects (mysql, duckdb);
2. the same campaign on a flaw-free dialect reports zero logic findings —
   no differential or conformance false positives;
3. the default crash-only pipeline stays byte-identical: the campaign's
   ``CampaignResult.signature()`` matches a pipeline-free baseline run
   both serially and with ``--jobs 4``.

Usage: ``PYTHONPATH=src python scripts/ci_oracle_smoke.py``
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.campaign import run_campaign  # noqa: E402
from repro.dialects.bugs import logic_flaws_for  # noqa: E402
from repro.perf import run_parallel_campaign  # noqa: E402

BUDGET = 2_000
SEED = 3
JOBS = 4
ORACLES = "crash,differential,conformance"
FLAWED_DIALECTS = ("mysql", "duckdb")
CLEAN_DIALECT = "postgresql"


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    print(f"[1/3] flaw recall: {', '.join(FLAWED_DIALECTS)}, "
          f"budget {BUDGET}, oracles {ORACLES}")
    for dbms in FLAWED_DIALECTS:
        # function-level flaws only: predicate-level kinds (tlp/norec) are
        # ci_metamorphic_smoke.py's ground truth
        expected = {flaw.flaw_id for flaw in logic_flaws_for(dbms)
                    if flaw.kind in ("wrong", "strict")}
        if not expected:
            fail(f"{dbms}: no logic flaws seeded — smoke has no teeth")
        result = run_campaign(dbms, budget=BUDGET, seed=SEED, oracles=ORACLES)
        found = {f.attribution.flaw_id for f in result.findings
                 if f.attribution is not None}
        missed = expected - found
        if missed:
            fail(f"{dbms}: seeded flaws not discovered: {sorted(missed)}")
        unattributed = [f for f in result.findings if f.attribution is None]
        if unattributed:
            fail(f"{dbms}: {len(unattributed)} findings match no seeded "
                 f"flaw (first: {unattributed[0].one_liner()})")
        print(f"      {dbms}: {len(expected)}/{len(expected)} flaws found "
              f"({len(result.findings)} findings, all attributed)")

    print(f"[2/3] false-positive guard: {CLEAN_DIALECT} (no seeded flaws)")
    clean = run_campaign(CLEAN_DIALECT, budget=BUDGET, seed=SEED,
                         oracles=ORACLES)
    if clean.findings:
        fail(f"{CLEAN_DIALECT}: {len(clean.findings)} spurious findings "
             f"(first: {clean.findings[0].one_liner()})")
    print(f"      {CLEAN_DIALECT}: zero logic findings")

    print(f"[3/3] crash-only default parity: duckdb serial and --jobs {JOBS}")
    baseline = run_campaign("duckdb", budget=BUDGET, seed=SEED)
    explicit = run_campaign("duckdb", budget=BUDGET, seed=SEED,
                            oracles="crash")
    if explicit.signature() != baseline.signature():
        fail("--oracles crash changed the serial campaign signature")
    sharded = run_parallel_campaign("duckdb", jobs=JOBS, budget=BUDGET,
                                    seed=SEED, oracles="crash")
    if sharded.signature() != baseline.signature():
        fail(f"--oracles crash changed the --jobs {JOBS} signature")
    print("      signatures identical")

    print("OK: all seeded logic flaws found, zero false positives, "
          "crash-only default unchanged")


if __name__ == "__main__":
    main()
