#!/usr/bin/env python
"""CI smoke test: the execution sandbox must contain pathological
statements without losing the campaign.

1. resource containment: the injected MariaDB ``MEDIAN`` stack-overflow
   PoC crashes an unguarded server but surfaces as ``resource_exhausted``
   under a depth budget — in-process and sandboxed alike;
2. harness-crash containment: a SIGKILLed sandbox worker records exactly
   one ``harness_crash`` outcome, is respawned, and the runner keeps
   executing;
3. a 500-statement sandboxed campaign under tight budgets with a
   quarantined seed statement completes with the expected
   ``resource_exhausted``/``skipped`` accounting, zero ``harness_crash``
   outcomes, and zero harness tracebacks (this script finishing *is* the
   zero-traceback assertion);
4. the same campaign sharded with ``--jobs 4`` reproduces the serial
   signature, and ``--resume`` from a mid-campaign checkpoint replays to
   the same signature;
5. default-config parity: with sandbox and budgets off, the campaign
   signature is identical to a plain run, and the sandboxed campaign
   finds the same bugs as the in-process one.

Usage: ``PYTHONPATH=src python scripts/ci_sandbox_smoke.py``
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import tempfile  # noqa: E402

from repro.core.campaign import Campaign, run_campaign  # noqa: E402
from repro.core.collect import SeedCollector  # noqa: E402
from repro.core.runner import Runner  # noqa: E402
from repro.dialects import dialect_by_name  # noqa: E402
from repro.perf import run_parallel_campaign  # noqa: E402
from repro.robustness import SandboxConfig  # noqa: E402

DIALECT = "mariadb"
BUDGET = 500
SEED = 0
JOBS = 4
TIGHT_BUDGETS = "depth=2"
SO_POC = "SELECT MEDIAN(999999999999999);"


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def check_resource_containment() -> None:
    print("[1/5] resource containment: MEDIAN stack overflow vs depth budget")
    bare = Runner(dialect_by_name(DIALECT))
    outcome = bare.run(SO_POC)
    if outcome.kind != "crash":
        fail(f"unguarded MEDIAN PoC should crash, got {outcome.kind!r}")
    governed = Runner(dialect_by_name(DIALECT), budgets="depth=64")
    outcome = governed.run(SO_POC)
    if outcome.kind != "resource_exhausted":
        fail(f"governed MEDIAN PoC should exhaust, got {outcome.kind!r}")
    if governed.fault_counters.get("governor.depth") != 1:
        fail(f"expected one governor.depth event, got "
             f"{governed.fault_counters}")
    boxed = Runner(dialect_by_name(DIALECT), budgets="depth=64", sandbox=True)
    try:
        outcome = boxed.run(SO_POC)
        if outcome.kind != "resource_exhausted":
            fail(f"sandboxed+governed PoC should exhaust, got {outcome.kind!r}")
        if boxed.run("SELECT 1;").kind != "ok":
            fail("worker did not keep serving after the contained statement")
    finally:
        boxed.close()
    print("      crash -> resource_exhausted, server survived (both modes)")


def check_harness_crash_containment() -> None:
    print("[2/5] harness-crash containment: SIGKILLed worker")
    runner = Runner(dialect_by_name(DIALECT), sandbox=True)
    try:
        if runner.run("SELECT 1;").kind != "ok":
            fail("sandboxed runner failed a trivial statement")
        runner.sandbox.kill_worker()
        outcome = runner.run("SELECT 2;")
        if outcome.kind != "harness_crash":
            fail(f"killed worker should yield harness_crash, got "
                 f"{outcome.kind!r}")
        expected = {"sandbox.worker_deaths": 1, "sandbox.respawns": 1}
        got = {k: v for k, v in runner.fault_counters.items()
               if k.startswith("sandbox.")}
        if got != expected:
            fail(f"supervisor counters {got} != {expected}")
        if runner.run("SELECT 3;").kind != "ok":
            fail("respawned worker did not recover")
    finally:
        runner.close()
    print("      1 harness_crash, 1 respawn, campaign kept going")


def pathological_campaign(**overrides):
    seed0 = SeedCollector(dialect_by_name(DIALECT)).collect()[0]
    config = SandboxConfig(quarantine=(f"SELECT {seed0.sql};",))
    kwargs = dict(budget=BUDGET, seed=SEED, budgets=TIGHT_BUDGETS,
                  sandbox=config)
    kwargs.update(overrides)
    return kwargs


def check_pathological_campaign():
    print(f"[3/5] {BUDGET}-statement sandboxed campaign, budgets "
          f"{TIGHT_BUDGETS!r}, one quarantined seed")
    result = run_campaign(DIALECT, **pathological_campaign())
    outcomes = dict(result.outcomes)
    # fault.* entries mirror fault_counters for the report; they are
    # bookkeeping rows, not stream outcomes
    processed = sum(v for k, v in outcomes.items()
                    if not k.startswith("fault."))
    if processed != BUDGET:
        fail(f"processed {processed} != budget {BUDGET}")
    exhausted = outcomes.get("resource_exhausted", 0)
    if exhausted == 0:
        fail("tight budgets tripped zero times — smoke has no teeth")
    if exhausted != result.fault_counters.get("governor.depth"):
        fail(f"resource_exhausted {exhausted} != governor.depth counter "
             f"{result.fault_counters.get('governor.depth')}")
    if outcomes.get("harness_crash", 0) != 0:
        fail(f"clean campaign reported {outcomes['harness_crash']} "
             "spurious harness crashes")
    if outcomes.get("skipped", 0) < 1 or result.quarantined_statements < 1:
        fail(f"quarantined seed was not skipped: {outcomes}")
    if result.skipped_statements != outcomes["skipped"]:
        fail("skipped accounting mismatch between outcomes and result")
    again = run_campaign(DIALECT, **pathological_campaign())
    if again.signature() != result.signature():
        fail("pathological campaign is not deterministic")
    print(f"      completed: {exhausted} resource_exhausted, "
          f"{outcomes['skipped']} skipped, 0 harness crashes")
    return result


def check_parallel_and_resume(serial) -> None:
    print(f"[4/5] --jobs {JOBS} parity and --resume identity")
    parallel = run_parallel_campaign(DIALECT, jobs=JOBS,
                                     **pathological_campaign())
    if parallel.signature() != serial.signature():
        fail(f"--jobs {JOBS} signature diverged from serial")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "sandbox.ckpt")
        full = run_campaign(DIALECT, checkpoint=path, checkpoint_every=150,
                            **pathological_campaign())
        resumed = run_campaign(DIALECT, resume=path,
                               **pathological_campaign())
        if resumed.signature() != full.signature():
            fail("--resume signature diverged from the uninterrupted run")
    print("      sharded and resumed runs replay the serial signature")


def check_default_parity() -> None:
    print("[5/5] default-config parity: sandbox/budgets off is byte-identical")
    base = run_campaign(DIALECT, budget=BUDGET, seed=SEED)
    explicit = run_campaign(DIALECT, budget=BUDGET, seed=SEED,
                            budgets=None, sandbox=False)
    if explicit.signature() != base.signature():
        fail("passing budgets=None/sandbox=False changed the signature")
    if explicit.sandbox_active:
        fail("sandbox_active leaked into a default campaign")
    boxed = run_campaign(DIALECT, budget=BUDGET, seed=SEED, sandbox=True)
    if [b.sql for b in boxed.bugs] != [b.sql for b in base.bugs]:
        fail("sandboxed campaign found a different bug set")
    if dict(boxed.outcomes) != dict(base.outcomes):
        fail("sandboxed campaign changed the outcome distribution")
    print("      signatures identical; sandbox is semantically invisible")


def main() -> None:
    check_resource_containment()
    check_harness_crash_containment()
    serial = check_pathological_campaign()
    check_parallel_and_resume(serial)
    check_default_parity()
    print("OK: sandbox smoke passed")


if __name__ == "__main__":
    main()
