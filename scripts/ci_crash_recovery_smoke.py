#!/usr/bin/env python
"""CI smoke test: the service survives a SIGKILL and resumes from its journal.

1. start ``repro serve`` as a real subprocess with a durable data dir and
   submit a checkpointed campaign job over the JSON API;
2. SIGKILL the server mid-campaign, after at least one checkpoint has
   been written but long before the budget is exhausted;
3. restart the server on the same data dir: startup recovery must find
   the orphaned ``running`` job in the journal and re-enqueue it with
   ``resume=<checkpoint>``;
4. the recovered job must finish ``done``, with a campaign signature
   identical to an uninterrupted in-process control run of the same
   config — resume replays the pre-crash prefix instead of re-fuzzing it;
5. the bug repository must hold exactly one record per control-run bug
   (occurrences == 1): recovery never double-ingests findings.

Usage: ``PYTHONPATH=src python scripts/ci_crash_recovery_smoke.py``
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import CampaignConfig  # noqa: E402
from repro.service.jobs import signature_digest  # noqa: E402
from repro.service.scheduler import run_scheduled  # noqa: E402

DIALECT = "virtuoso"
BUDGET = 20_000
CHECKPOINT_EVERY = 500
KILL_AFTER_POSITION = 2 * CHECKPOINT_EVERY
POLL_DEADLINE = 240.0


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(port, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def start_server(data_dir: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--data-dir", data_dir,
            "--port", str(port),
            "--workers", "2",
            "--no-minimize",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"server exited early with code {proc.returncode}")
        try:
            status, health = request(port, "GET", "/health")
            if status == 200:
                return proc
        except (urllib.error.URLError, OSError, ValueError):
            pass
        time.sleep(0.1)
    fail("server did not come up within 30s")


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-crash-smoke-")
    config = CampaignConfig(
        dialect=DIALECT, budget=BUDGET, checkpoint_every=CHECKPOINT_EVERY
    )

    print("[1/5] control run: uninterrupted in-process campaign")
    control = run_scheduled(config)
    control_digest = signature_digest(control)
    print(f"      {len(control.bugs)} bugs, digest {control_digest[:16]}…")

    print("[2/5] boot `repro serve`, submit the checkpointed campaign")
    port = free_port()
    proc = start_server(data_dir, port)
    status, job = request(
        port, "POST", "/jobs", {"kind": "campaign", "config": config.to_dict()}
    )
    if status != 200:
        fail(f"submit rejected: {status} {job}")
    job_id = job["id"]

    print(f"[3/5] SIGKILL the server past position {KILL_AFTER_POSITION}")
    deadline = time.monotonic() + POLL_DEADLINE
    position = 0
    while time.monotonic() < deadline:
        status, shown = request(port, "GET", f"/jobs/{job_id}")
        if shown["state"] in ("done", "failed", "cancelled"):
            fail(f"job finished before the kill ({shown['state']}) — "
                 f"raise BUDGET so the crash lands mid-campaign")
        position = (shown.get("progress") or {}).get("position", 0)
        if shown["state"] == "running" and position >= KILL_AFTER_POSITION:
            break
        time.sleep(0.05)
    else:
        fail(f"job never reached position {KILL_AFTER_POSITION}: {position}")
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    checkpoint = os.path.join(data_dir, "checkpoints", f"{job_id}.ckpt")
    if not os.path.exists(checkpoint):
        fail(f"no checkpoint sidecar at {checkpoint} after the kill")
    print(f"      killed at position ~{position}, checkpoint on disk")

    print("[4/5] restart on the same data dir: recovery must resume the job")
    port = free_port()
    proc = start_server(data_dir, port)
    try:
        status, health = request(port, "GET", "/health")
        requeued = (health.get("recovered") or {}).get("requeued", [])
        if job_id not in requeued:
            fail(f"recovery did not requeue {job_id}: {health.get('recovered')}")
        deadline = time.monotonic() + POLL_DEADLINE
        final = None
        while time.monotonic() < deadline:
            status, final = request(port, "GET", f"/jobs/{job_id}")
            if final["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.2)
        if final is None or final["state"] != "done":
            fail(f"recovered job did not complete: {final}")
        if final["retries"] < 1:
            fail(f"recovered job should count the orphaning as a retry: "
                 f"{final['retries']}")
        digest = final["summary"].get("signature_digest")
        if digest != control_digest:
            fail(f"recovered signature {digest} != control {control_digest} — "
                 f"resume did not replay the pre-crash prefix faithfully")
        print(f"      job {job_id} done after resume, digest matches control")

        print("[5/5] repository: exactly one record per bug, no double ingest")
        ingest = final["ingest"]
        if ingest["new_records"] != len(control.bugs) or ingest["duplicates"]:
            fail(f"recovery double-ingested findings: {ingest}")
        status, listing = request(port, "GET", "/bugs")
        if len(listing["bugs"]) != len(control.bugs):
            fail(f"repository holds {len(listing['bugs'])} records, "
                 f"expected {len(control.bugs)}")
        doubled = [r["id"] for r in listing["bugs"] if r["occurrences"] != 1]
        if doubled:
            fail(f"records ingested more than once: {doubled}")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()

    print(f"OK: SIGKILL at position ~{position}, resumed from checkpoint, "
          f"{len(control.bugs)} records, signatures identical")


if __name__ == "__main__":
    main()
