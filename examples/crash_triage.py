#!/usr/bin/env python3
"""Crash triage walkthrough: reproduce the paper's §7.4 case studies.

Executes the six headline proof-of-concept statements (Listings 1 and
6-11) against their simulated DBMSs, shows the server dying and being
restarted (the Docker-container workflow), and prints the triage line the
paper reports for each.

    python examples/crash_triage.py
"""

from repro import dialect_by_name
from repro.engine import ServerCrashed

CASES = [
    ("clickhouse", "SELECT toDecimalString('110'::Decimal256(45), *);",
     "Listing 1 — the bug the ClickHouse CTO ordered fixed immediately"),
    ("mysql",
     "SELECT AVG(1.29999999999999999999999999999999999999999999);",
     "Case 1 (Listing 6) — global buffer overflow via a boundary literal"),
    ("virtuoso", "SELECT CONTAINS('x', 'x', *);",
     "Case 2 (Listing 7) — segmentation violation on the '*' argument"),
    ("postgresql", "SELECT JSONB_OBJECT_AGG('a', '$[0]');",
     "Case 3 (Listing 8) — heap overflow via boundary type casting "
     "(CVE-2023-5868 analogue)"),
    ("duckdb", "SELECT ARRAY_SORT((SELECT [1] UNION SELECT [2]));",
     "Case 4 (Listing 9) — stack overflow via UNION-unified nesting"),
    ("mariadb", "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]');",
     "Case 5 (Listing 10) — global overflow via a nested REPEAT result"),
    ("mariadb", "SELECT ST_ASTEXT(INET6_ATON('255.255.255.255'));",
     "Case 6 (Listing 11) — segmentation violation via nested functions"),
]


def main() -> int:
    servers = {}
    for dialect_name, sql, headline in CASES:
        server = servers.get(dialect_name)
        if server is None or not server.alive:
            server = dialect_by_name(dialect_name).create_server()
            servers[dialect_name] = server
        connection = server.connect()
        print(f"\n{headline}")
        print(f"  {dialect_name}> {sql}")
        try:
            connection.execute(sql)
            print("  !! no crash — unexpected")
        except ServerCrashed as crashed:
            crash = crashed.crash
            print(f"  ** server process died: {crash.describe()}")
            print(f"     stage={crash.stage}  class={crash.code}")
            if crash.backtrace:
                innermost = " <- ".join(reversed(crash.backtrace[-3:]))
                print(f"     backtrace (innermost first): {innermost}")
            server.restart()
            probe = server.connect().execute("SELECT 1;")
            print(f"     restarted container, probe SELECT 1 -> "
                  f"{probe.rows[0][0].render()}")
    print("\nAll case-study crashes reproduced.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
