#!/usr/bin/env python3
"""Plug your own DBMS into SOFT.

SOFT only needs three things from a target: a function inventory with
documentation, a regression test suite, and a way to execute SQL and
observe crashes.  This example defines **TinyDB** — a fresh dialect with
two deliberately flawed functions — and lets SOFT find both bugs.

This is the integration path a downstream user would take to point the
harness at a real system (by implementing a Dialect whose connection layer
speaks to a live server instead of the in-process engine).

    python examples/custom_dialect.py
"""

from repro.core import Campaign, CampaignConfig, render_bug_report
from repro.dialects.base import Dialect
from repro.dialects.flaws import install_flaw, trig_empty_string, trig_wide_number
from repro.engine.functions import FunctionRegistry
from repro.engine.functions.helpers import need_int, need_string, out_string


class TinyDBDialect(Dialect):
    """A small bespoke engine with two injected boundary-condition bugs."""

    name = "tinydb"
    version = "0.1"

    def customize_registry(self, registry: FunctionRegistry) -> None:
        define = registry.define

        @define("shout", "string", min_args=1, max_args=1,
                signature="SHOUT(str)", doc="Upper-case with an exclamation.",
                examples=["SHOUT('hi')"])
        def fn_shout(ctx, args):
            if args[0].is_null:
                from repro.engine.values import NULL

                return NULL
            return out_string(need_string(args[0], "shout").upper() + "!", "shout")

        @define("clamp", "math", min_args=3, max_args=3,
                signature="CLAMP(x, lo, hi)", doc="Clamp x into [lo, hi].",
                examples=["CLAMP(5, 1, 3)"])
        def fn_clamp(ctx, args):
            from repro.engine.values import NULL, SQLInteger

            if any(a.is_null for a in args):
                return NULL
            x = need_int(args[0], "clamp")
            lo = need_int(args[1], "clamp")
            hi = need_int(args[2], "clamp")
            return SQLInteger(min(max(x, lo), hi))

    def inject_bugs(self, registry: FunctionRegistry) -> None:
        # SHOUT mishandles the empty string (a P1.2-class flaw) ...
        install_flaw(registry, "shout", trig_empty_string(0), "NPD")
        # ... and CLAMP walks a digit table out of bounds for wide numbers
        install_flaw(registry, "clamp", trig_wide_number(18, 0), "SEGV")


def main() -> int:
    dialect = TinyDBDialect()
    print(f"TinyDB exposes {len(dialect.registry)} functions "
          f"({len(dialect.test_suite())} regression queries).")

    print("Fuzzing TinyDB with SOFT (15k statements)...")
    result = Campaign(
        dialect, config=CampaignConfig(dialect=dialect.name, budget=15_000)).run()

    print(f"\nSOFT triggered {len(result.triggered_functions)} functions and "
          f"found {len(result.bugs)} unique crashes:")
    for bug in result.bugs:
        print(f"  {bug.crash_code:<5} {bug.function:<8} via {bug.pattern}: {bug.sql}")

    wanted = {("shout", "NPD"), ("clamp", "SEGV")}
    found = {(b.function, b.crash_code) for b in result.bugs}
    assert wanted <= found, f"missed: {wanted - found}"
    print("\nBoth injected TinyDB bugs were found.")

    print("\nReport for the SHOUT bug:")
    shout_bug = next(b for b in result.bugs if b.function == "shout")
    print(render_bug_report(shout_bug, version=dialect.version))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
