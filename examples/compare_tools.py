#!/usr/bin/env python3
"""Mini Tables 5/6: SOFT vs SQUIRREL / SQLancer / SQLsmith.

Runs the four tools against the commonly supported simulated DBMSs under a
shared query budget and prints triggered-function counts, branch coverage
of the SQL-function components, and unique bugs found.

    python examples/compare_tools.py [budget]
"""

import sys

from repro.analysis import run_comparison


def main() -> int:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 3_000
    print(f"Running 4 tools x 5 DBMSs at {budget} statements each "
          "(coverage-instrumented; this takes a couple of minutes)...\n")
    table = run_comparison(budget=budget, enable_coverage=True)

    print(table.format("triggered_functions",
                       "== Table 5: built-in SQL functions triggered =="))
    print()
    print(table.format("branch_coverage",
                       "== Table 6: branches covered in SQL function components =="))
    print()
    print(table.format("bugs_found",
                       "== unique SQL function bugs found =="))
    print()
    for baseline in ("squirrel", "sqlancer", "sqlsmith"):
        inc_fn = table.increment_over(baseline, "triggered_functions")
        inc_br = table.increment_over(baseline, "branch_coverage")
        print(f"SOFT's increment over {baseline:<9}: "
              f"+{inc_fn} functions, +{inc_br} branches "
              "(on commonly supported DBMSs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
