#!/usr/bin/env python3
"""Triage pipeline: fuzz → minimise → verify logic soundness.

1. Run a short SOFT campaign against MariaDB.
2. Delta-debug every discovered PoC to its minimal form (the shape the
   paper's listings have).
3. Run the §8 correctness oracles (NoREC + TLP) to confirm the simulated
   engine has no *logic* bugs on top of its crash bugs — and demonstrate
   the oracles catching an injected "UNKNOWN is TRUE" planner defect.

    python examples/minimize_and_verify.py
"""

from repro.core import Campaign, CampaignConfig, LogicOracle, minimize_poc
from repro.dialects import dialect_by_name
from repro.dialects.base import Dialect


def main() -> int:
    dialect = dialect_by_name("mariadb")
    print("Step 1 — fuzzing mariadb (12k statements)...")
    result = Campaign(
        dialect, config=CampaignConfig(dialect="mariadb", budget=12_000)).run()
    print(f"  {len(result.bugs)} unique crashes found\n")

    print("Step 2 — minimising every PoC:")
    for bug in result.bugs[:8]:
        minimized = minimize_poc(dialect, bug.sql, max_attempts=400)
        print(f"  [{bug.crash_code}] {bug.function}")
        print(f"     before ({len(minimized.original):>3} chars): {minimized.original}")
        print(f"     after  ({len(minimized.minimized):>3} chars): {minimized.minimized}")

    print("\nStep 3 — correctness oracles (NoREC + TLP):")
    clean = LogicOracle(dialect).run(
        predicates=["c0 > 0", "c1 IS NULL", "c2 BETWEEN -1 AND 1",
                    "c0 IN (1, NULL)"]
    )
    print(f"  mariadb: {clean.checks} checks, "
          f"{len(clean.violations)} violations (expected 0)")

    class FaultyDialect(Dialect):
        name = "faulty-demo"

        def make_config(self):
            config = super().make_config()
            config["faulty_where_null_as_true"] = "1"
            return config

    buggy = LogicOracle(FaultyDialect()).run(
        predicates=["c0 > 0", "c0 IN (1, NULL)"]
    )
    print(f"  faulty-demo: {len(buggy.violations)} violations (injected "
          "'UNKNOWN treated as TRUE' planner defect)")
    for violation in buggy.violations[:3]:
        print(f"     {violation}")
    assert clean.ok and not buggy.ok
    print("\nPipeline complete.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
