#!/usr/bin/env python3
"""Quickstart: fuzz a simulated DBMS with SOFT and triage what it finds.

Runs a small boundary-argument campaign against the simulated DuckDB
dialect (21 injected bugs), prints each discovered bug, and renders one
disclosure-ready report.

    python examples/quickstart.py [dialect] [budget]
"""

import sys

from repro import render_bug_report, run_campaign


def main() -> int:
    dialect = sys.argv[1] if len(sys.argv) > 1 else "duckdb"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    print(f"Fuzzing {dialect} with a budget of {budget} statements...")
    result = run_campaign(dialect, budget=budget)

    print(f"\n  seeds collected:      {result.seeds_collected}")
    print(f"  statements executed:  {result.queries_executed}")
    print(f"  functions triggered:  {len(result.triggered_functions)}")
    print(f"  outcomes:             {result.outcomes}")
    print(f"  unique bugs found:    {len(result.bugs)}")
    print(f"  false positives:      {len(result.false_positives)}")

    print("\nDiscovered bugs (deduplicated by function x crash class):")
    for bug in result.bugs:
        status = ""
        if bug.injected is not None:
            status = " [fixed]" if bug.injected.fixed else " [confirmed]"
        print(f"  {bug.crash_code:<5} {bug.function:<18} via {bug.pattern:<5}"
              f"{status}  {bug.sql}")

    if result.bugs:
        print("\n" + "=" * 70)
        print("Example disclosure report for the first discovery:")
        print("=" * 70)
        print(render_bug_report(result.bugs[0]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
