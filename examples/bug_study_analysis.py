#!/usr/bin/env python3
"""Reproduce the paper's bug study (§3-§5) from the 318-record corpus.

Recomputes Table 1, Finding 1, Figure 1, Table 2/Finding 3, Finding 4, and
the root-cause split from the raw records — parsing PoCs and classifying
backtraces rather than echoing stored numbers — then prints them in the
paper's phrasing.

    python examples/bug_study_analysis.py
"""

from repro.corpus import load_corpus, summarize
from repro.corpus.study import share_with_at_most_two


def main() -> int:
    corpus = load_corpus()
    summary = summarize(corpus)

    print("== Table 1: studied bugs ==")
    for dbms, count in sorted(summary.by_dbms.items(), key=lambda kv: -kv[1]):
        print(f"  {dbms:<12} {count}")
    print(f"  {'total':<12} {summary.total}")

    stage_total = sum(summary.stages.values())
    print("\n== Finding 1: occurrence stages "
          f"({summary.with_backtrace} bugs with identifiable backtraces) ==")
    for stage in ("execute", "optimize", "parse"):
        count = summary.stages[stage]
        print(f"  {stage:<10} {count:>4}  ({count / stage_total:.1%})")

    print("\n== Figure 1: function types in bug-inducing statements ==")
    print(f"  {'type':<12} {'occurrences':>12} {'distinct functions':>20}")
    for row in summary.type_histogram:
        print(f"  {row.family:<12} {row.occurrences:>12} {row.unique_functions:>20}")
    top_two = summary.type_histogram[0], summary.type_histogram[1]
    share = (top_two[0].occurrences + top_two[1].occurrences) / 508
    print(f"  -> {top_two[0].family} + {top_two[1].family} account for "
          f"{share:.1%} of all occurrences (paper: 'over 40%')")

    print("\n== Table 2 / Finding 3: function expressions per statement ==")
    for count in sorted(summary.expression_counts):
        label = f"{count}" if count < 5 else ">=5"
        print(f"  {label:<4} {summary.expression_counts[count]}")
    print(f"  -> {share_with_at_most_two(corpus):.1%} contain at most two "
          "(paper: 87.5%)")

    print("\n== Finding 4: prerequisite statements ==")
    for kind, count in sorted(summary.prerequisites.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:<16} {count:>4}  ({count / 318:.1%})")

    print("\n== Section 5: root causes ==")
    for cause, count in sorted(summary.root_causes.items(), key=lambda kv: -kv[1]):
        print(f"  {cause:<20} {count:>4}")
    print(f"  -> boundary-value share: {summary.boundary_share:.1%} "
          "(the paper's 87.4% headline)")

    print("\nSample studied-bug record:")
    sample = next(b for b in corpus if b.root_cause == "boundary_nested")
    print(f"  {sample.bug_id}: {sample.title}")
    for statement in sample.poc:
        print(f"    {statement}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
